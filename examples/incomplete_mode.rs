//! Incomplete-mode verification: when a specification or property falls
//! outside the input-bounded fragment, wave still runs — soundly but
//! without the completeness guarantee — exactly as the paper describes
//! for software-verification practice. Budgets turn it into a bounded
//! checker.
//!
//! Run with `cargo run --release -p wave --example incomplete_mode`.

use std::time::Duration;
use wave::{parse_spec, Verdict, Verifier, VerifyOptions};

fn main() {
    // the target condition quantifies over a *database* relation — not
    // input-bounded (the verifier reports it and drops the completeness
    // claim)
    let spec = parse_spec(
        r#"
        spec outside_fragment {
          database { stock(item); }
          state { seen(item); }
          inputs { pick(x); }
          home P;
          page P {
            inputs { pick }
            options pick(x) <- stock(x);
            insert seen(x) <- pick(x);
            target Q <- forall i: seen(i) -> stock(i);
          }
          page Q { target P <- true; }
        }
    "#,
    )
    .expect("parses");

    let options = VerifyOptions {
        max_steps: Some(50_000),
        time_limit: Some(Duration::from_secs(10)),
        ..Default::default()
    };
    let verifier = Verifier::with_options(spec, options).expect("compiles");

    let v = verifier.check_str("G (@Q -> X @P)").expect("runs");
    println!("complete verification available: {}", v.complete);
    match &v.verdict {
        Verdict::Holds => println!(
            "no counterexample found within the budget \
             (sound 'holds', not a completeness proof)"
        ),
        Verdict::Violated(_) => println!("counterexample found — conclusive either way"),
        Verdict::Unknown(b) => println!("budget exhausted first: {b:?}"),
    }
    assert!(!v.complete, "the spec is outside the input-bounded fragment");
}
