//! Quickstart: specify a two-page web application inline, verify three
//! temporal properties, and print a counterexample for one that fails.
//!
//! Run with `cargo run --release -p wave --example quickstart`.

use wave::{parse_spec, Verdict, Verifier};

fn main() {
    // A miniature site: the home page lets a user log in (checked against
    // the `user` database table); the account page lets them log out.
    let spec = parse_spec(
        r#"
        spec quickstart {
          database { user(name, passwd); }
          state { loggedin(); }
          inputs { button(x); constant uname; constant passwd; }
          home HP;

          page HP {
            inputs { button, uname, passwd }
            options button(x) <- x = "login";
            insert loggedin() <-
                (exists u: uname(u) & (exists p: passwd(p) & user(u, p)))
                & button("login");
            target ACC <- (exists u: uname(u) & (exists p: passwd(p) & user(u, p)))
                          & button("login");
          }

          page ACC {
            inputs { button }
            options button(x) <- x = "logout";
            delete loggedin() <- loggedin() & button("logout");
            target HP <- button("logout");
          }
        }
    "#,
    )
    .expect("spec parses and validates");

    let verifier = Verifier::new(spec).expect("spec compiles");

    // 1. a soundness property that holds: the account page implies login
    let v = verifier.check_str("G (@ACC -> loggedin())").expect("verification runs");
    println!("G (@ACC -> loggedin())        => holds: {}", v.verdict.holds());
    assert!(v.verdict.holds());
    assert!(v.complete, "spec and property are input-bounded: verdict is conclusive");

    // 2. a liveness property that fails: not every run logs in
    let v = verifier.check_str("F @ACC").expect("verification runs");
    println!("F @ACC                        => holds: {}", v.verdict.holds());

    // 3. print the counterexample pseudorun the verifier found
    if let Verdict::Violated(ce) = &v.verdict {
        println!("\ncounterexample (a run that never logs in):");
        print!("{}", verifier.render_counterexample(ce));
    }

    // 4. statistics, as the paper's experiments report them
    println!(
        "\nstats: {:?} elapsed, max run length {}, max trie size {}",
        v.stats.elapsed, v.stats.max_run_len, v.stats.max_trie
    );
}
