//! Audit the E1 computer-shopping application (the paper's running
//! example): check the paper's payment-before-confirmation property (P5)
//! and a deliberately wrong business rule, showing the counterexample.
//!
//! Run with `cargo run --release -p wave --example shop_audit`.

use wave::apps::e1;
use wave::{Verdict, Verifier};

fn main() {
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).expect("E1 compiles");

    // The paper's Property (1): any confirmed product was paid for, in the
    // right amount, from the cart (type T1, holds).
    let p5 = suite.properties.iter().find(|p| p.name == "P5").unwrap();
    println!("checking {}: {}", p5.name, p5.comment);
    let v = verifier.check_str(&p5.text).expect("verification runs");
    println!(
        "  => holds: {} ({:?}, {} configurations explored)\n",
        v.verdict.holds(),
        v.stats.elapsed,
        v.stats.configs
    );

    // A wrong claim: "products are only confirmed for logged-in sessions
    // that registered this session" — the verifier refutes it with a run.
    let wrong = "forall pid, price: registered() B paid(pid, price)";
    println!("checking a wrong claim: {wrong}");
    let v = verifier.check_str(wrong).expect("verification runs");
    match &v.verdict {
        Verdict::Violated(ce) => {
            println!("  => refuted, counterexample with {} steps:", ce.steps.len());
            // print only the last few steps; the prefix is long
            let text = verifier.render_counterexample(ce);
            for line in text.lines().rev().take(6).collect::<Vec<_>>().iter().rev() {
                println!("  {line}");
            }
        }
        other => println!("  => unexpected verdict {other:?}"),
    }
}
