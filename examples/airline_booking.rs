//! Verify booking-flow properties of the E3 airline-reservation
//! application: a flight can only be booked after it was selected, and
//! payment implies a matching flight pick — data-aware checks beyond
//! propositional abstraction.
//!
//! Run with `cargo run --release -p wave --example airline_booking`.

use wave::apps::e3;
use wave::Verifier;

fn main() {
    let suite = e3::suite();
    let verifier = Verifier::new(suite.spec.clone()).expect("E3 compiles");

    for name in ["R2", "R8", "R9"] {
        let case = suite.properties.iter().find(|p| p.name == name).unwrap();
        println!("{name} ({}): {}", case.ptype.name(), case.comment);
        let v = verifier.check_str(&case.text).expect("verification runs");
        println!(
            "  => holds: {} (expected {}), {:?}, trie {}\n",
            v.verdict.holds(),
            case.holds,
            v.stats.elapsed,
            v.stats.max_trie
        );
        assert_eq!(v.verdict.holds(), case.holds, "verdict must match the suite");
    }
}
