//! `wave-naive`: the "first cut" explicit-state verifier of Section 3.
//!
//! The paper's first decidable-but-impractical algorithm: enumerate every
//! database over a bounded domain, and for each one model-check the
//! *genuine* runs with a nested depth-first search — essentially what one
//! gets by encoding the problem for SPIN, whose Promela model the paper
//! reports timing out "even for the simplest properties".
//!
//! This crate exists for two purposes:
//!
//! * the **SPIN-comparison experiment**: demonstrating the doubly
//!   exponential explosion that the pseudorun search plus heuristics avoid
//!   (`wave-bench --naive`),
//! * a **test oracle**: on miniature specifications with a small explicit
//!   domain, its verdicts cross-validate the wave verifier's.

use std::time::{Duration, Instant};
use wave_fol::{answers, eval, Bindings, EvalCtx, Formula, SchemaResolver};
use wave_ltl::{extract, nnf, parse_property, Buchi, Property};
use wave_relalg::{Instance, RelKind, Tuple, Value};
use wave_spec::{CompiledSpec, PageId, Spec};

/// Options for the explicit-state search.
#[derive(Clone, Debug)]
pub struct NaiveOptions {
    /// Number of fresh domain values (beyond the spec/property constants)
    /// the databases are built over.
    pub fresh_values: usize,
    /// Per-relation cap on enumerated tuples: relations whose tuple
    /// universe exceeds this abort the run (the explosion the paper
    /// describes).
    pub max_tuples_per_relation: usize,
    /// Stop after this many explored configurations.
    pub max_steps: Option<u64>,
    /// Wall-clock budget.
    pub time_limit: Option<Duration>,
}

impl Default for NaiveOptions {
    fn default() -> Self {
        NaiveOptions {
            fresh_values: 2,
            max_tuples_per_relation: 16,
            max_steps: Some(1_000_000),
            time_limit: Some(Duration::from_secs(30)),
        }
    }
}

/// Outcome of the explicit-state search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NaiveVerdict {
    /// No violating run over any database within the bounded domain.
    HoldsBounded,
    /// A violating genuine run was found.
    Violated,
    /// The budget was exhausted (the common case — that is the point).
    Exhausted,
    /// The tuple universe itself was too large to enumerate.
    Explosion { relation: String, tuples: u64 },
}

/// Search statistics.
#[derive(Clone, Debug, Default)]
pub struct NaiveStats {
    pub elapsed: Duration,
    pub databases: u64,
    pub configs: u64,
}

/// Errors before the search can even start.
#[derive(Debug)]
pub enum NaiveError {
    Spec(wave_spec::CompileSpecError),
    Property(wave_fol::ParseError),
    Eval(wave_fol::EvalError),
}

impl std::fmt::Display for NaiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaiveError::Spec(e) => write!(f, "{e}"),
            NaiveError::Property(e) => write!(f, "property: {e}"),
            NaiveError::Eval(e) => write!(f, "evaluation: {e}"),
        }
    }
}

impl std::error::Error for NaiveError {}

/// A genuine-run configuration: everything but the (fixed) database.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Config {
    page: PageId,
    input: Vec<(wave_relalg::RelId, Tuple)>,
    prev: Vec<(wave_relalg::RelId, Tuple)>,
    state: Vec<(wave_relalg::RelId, Tuple)>,
    actions: Vec<(wave_relalg::RelId, Tuple)>,
}

/// The explicit-state verifier.
pub struct NaiveVerifier {
    spec: CompiledSpec,
    options: NaiveOptions,
}

struct Search<'a> {
    spec: &'a CompiledSpec,
    symbols: &'a wave_relalg::SymbolTable,
    buchi: &'a Buchi,
    components: &'a [Formula],
    db: &'a Instance,
    domain: &'a [Value],
    visited: std::collections::HashSet<(usize, Config, bool)>,
    stats: &'a mut NaiveStats,
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    exhausted: bool,
    found: bool,
}

impl NaiveVerifier {
    /// Compile the spec for explicit-state checking.
    pub fn new(spec: Spec, options: NaiveOptions) -> Result<NaiveVerifier, NaiveError> {
        Ok(NaiveVerifier { spec: CompiledSpec::compile(spec).map_err(NaiveError::Spec)?, options })
    }

    /// Check a property over all databases within the bounded domain.
    pub fn check_str(&self, property: &str) -> Result<(NaiveVerdict, NaiveStats), NaiveError> {
        let prop = parse_property(property).map_err(NaiveError::Property)?;
        self.check(&prop)
    }

    /// Check a parsed property. The search runs on a dedicated thread with
    /// a large stack: the nested DFS recurses once per run step.
    pub fn check(&self, property: &Property) -> Result<(NaiveVerdict, NaiveStats), NaiveError> {
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("wave-naive-search".into())
                .stack_size(512 << 20)
                .spawn_scoped(scope, || self.check_inner(property))
                .expect("spawn search thread")
                .join()
                .expect("search thread panicked")
        })
    }

    fn check_inner(&self, property: &Property) -> Result<(NaiveVerdict, NaiveStats), NaiveError> {
        let start = Instant::now();
        let deadline = self.options.time_limit.map(|d| start + d);
        let spec = &self.spec;
        let mut stats = NaiveStats::default();

        let body = property.body.group_fo();
        let extraction = extract(&body);
        let negated = nnf(&extraction.aux, true);
        let buchi = Buchi::from_nnf(&negated, extraction.components.len());

        // domain: all constants (spec + property) plus fresh values,
        // interned as named constants so substitution round-trips
        let mut symbols = spec.symbols.clone();
        let mut domain: Vec<Value> = spec.constants.clone();
        for f in &extraction.components {
            for c in wave_fol::constants(f) {
                let v = symbols.constant(&c);
                if !domain.contains(&v) {
                    domain.push(v);
                }
            }
        }
        for i in 0..self.options.fresh_values {
            domain.push(symbols.constant(&format!("$fresh{i}")));
        }

        // brute-force assignments for the property's universal variables
        let mut assignment_sets: Vec<Vec<(String, Value)>> = vec![vec![]];
        for var in &property.univ_vars {
            assignment_sets = assignment_sets
                .into_iter()
                .flat_map(|a| {
                    domain.iter().map(move |&v| {
                        let mut b = a.clone();
                        b.push((var.clone(), v));
                        b
                    })
                })
                .collect::<Vec<_>>();
        }

        // the database tuple universe: domain^arity per database relation
        let db_rels: Vec<_> = spec
            .schema
            .rels()
            .filter(|&r| {
                spec.schema.kind(r) == RelKind::Database
                    && !spec.schema.name(r).starts_with("page$")
            })
            .collect();
        let mut universe: Vec<(wave_relalg::RelId, Tuple)> = Vec::new();
        for &rel in &db_rels {
            let arity = spec.schema.arity(rel) as u32;
            let count = (domain.len() as u64).saturating_pow(arity);
            if count > self.options.max_tuples_per_relation as u64 {
                stats.elapsed = start.elapsed();
                return Ok((
                    NaiveVerdict::Explosion {
                        relation: spec.schema.name(rel).to_owned(),
                        tuples: count,
                    },
                    stats,
                ));
            }
            let mut idx = vec![0usize; arity as usize];
            loop {
                universe
                    .push((rel, Tuple::from(idx.iter().map(|&i| domain[i]).collect::<Vec<_>>())));
                let mut pos = arity as usize;
                let mut done = true;
                while pos > 0 {
                    pos -= 1;
                    idx[pos] += 1;
                    if idx[pos] < domain.len() {
                        done = false;
                        break;
                    }
                    idx[pos] = 0;
                }
                if done {
                    break;
                }
            }
        }

        // enumerate all databases (bitmap counter over the tuple universe)
        let bits = universe.len();
        if bits > 24 {
            stats.elapsed = start.elapsed();
            return Ok((
                NaiveVerdict::Explosion {
                    relation: "(all database relations)".into(),
                    tuples: 1u64 << bits.min(63),
                },
                stats,
            ));
        }
        for asg in &assignment_sets {
            let subst: std::collections::HashMap<String, wave_fol::Term> = asg
                .iter()
                .map(|(var, val)| {
                    let name = match symbols.kind(*val) {
                        wave_relalg::ValueKind::Constant(c) => c.clone(),
                        other => other.display(),
                    };
                    (var.clone(), wave_fol::Term::Const(name))
                })
                .collect();
            let components: Vec<Formula> =
                extraction.components.iter().map(|f| f.substitute(&subst)).collect();
            for bitmap in 0u64..(1u64 << bits) {
                stats.databases += 1;
                let mut db = Instance::empty(std::sync::Arc::clone(&spec.schema));
                for (i, (rel, t)) in universe.iter().enumerate() {
                    if bitmap >> i & 1 == 1 {
                        db.insert(*rel, t.clone());
                    }
                }
                let mut search = Search {
                    spec,
                    symbols: &symbols,
                    buchi: &buchi,
                    components: &components,
                    db: &db,
                    domain: &domain,
                    visited: std::collections::HashSet::new(),
                    stats: &mut stats,
                    deadline,
                    max_steps: self.options.max_steps,
                    exhausted: false,
                    found: false,
                };
                let violated = search.run().map_err(NaiveError::Eval)?;
                let exhausted = search.exhausted;
                if violated {
                    stats.elapsed = start.elapsed();
                    return Ok((NaiveVerdict::Violated, stats));
                }
                if exhausted {
                    stats.elapsed = start.elapsed();
                    return Ok((NaiveVerdict::Exhausted, stats));
                }
            }
        }
        stats.elapsed = start.elapsed();
        Ok((NaiveVerdict::HoldsBounded, stats))
    }
}

impl Search<'_> {
    fn run(&mut self) -> Result<bool, wave_fol::EvalError> {
        let starts = self.expand_page(self.spec.home, Vec::new(), Vec::new())?;
        self.stats.configs += starts.len() as u64;
        for c0 in starts {
            if !self.visited.insert((self.buchi.initial, c0.clone(), false)) {
                continue;
            }
            self.stick(self.buchi.initial, &c0, None)?;
            if self.found || self.exhausted {
                break;
            }
        }
        Ok(self.found)
    }

    fn out_of_budget(&mut self) -> bool {
        if let Some(max) = self.max_steps {
            if self.stats.configs > max {
                self.exhausted = true;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if self.stats.configs.is_multiple_of(512) && Instant::now() > deadline {
                self.exhausted = true;
                return true;
            }
        }
        false
    }

    /// One procedure serves as both `stick` (base = None) and `candy`.
    fn stick(
        &mut self,
        s: usize,
        cfg: &Config,
        base: Option<&(usize, Config)>,
    ) -> Result<(), wave_fol::EvalError> {
        if self.out_of_budget() || self.found {
            return Ok(());
        }
        let assign = self.assignment(cfg)?;
        let succs = self.successors(cfg)?;
        self.stats.configs += succs.len() as u64;
        let targets: Vec<usize> = self.buchi.successors(s, assign).collect();
        for t in targets {
            for ct in &succs {
                if self.found || self.exhausted {
                    return Ok(());
                }
                match base {
                    None => {
                        if self.visited.insert((t, ct.clone(), false)) {
                            self.stick(t, ct, None)?;
                        }
                        if self.buchi.accepting[t] && self.visited.insert((t, ct.clone(), true)) {
                            let b = (t, ct.clone());
                            self.stick(t, ct, Some(&b))?;
                        }
                    }
                    Some(b) => {
                        if (t, ct) == (b.0, &b.1) {
                            self.found = true;
                            return Ok(());
                        }
                        if self.visited.insert((t, ct.clone(), true)) {
                            self.stick(t, ct, Some(b))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn materialize(&self, cfg: &Config) -> Instance {
        let mut inst = self.db.clone();
        for (rel, t) in cfg.input.iter().chain(&cfg.prev).chain(&cfg.state).chain(&cfg.actions) {
            inst.insert(*rel, t.clone());
        }
        inst.insert(self.spec.page(cfg.page).marker, Tuple::from([]));
        inst
    }

    fn assignment(&self, cfg: &Config) -> Result<u64, wave_fol::EvalError> {
        let inst = self.materialize(cfg);
        let page_name = &self.spec.page(cfg.page).name;
        let ctx = EvalCtx {
            instance: &inst,
            symbols: self.symbols,
            current_page: Some(page_name),
            domain: self.domain,
        };
        let resolver = SchemaResolver(&self.spec.schema);
        let mut assign = 0u64;
        for (i, f) in self.components.iter().enumerate() {
            if eval(f, &ctx, &resolver, &mut Bindings::new())? {
                assign |= 1 << i;
            }
        }
        Ok(assign)
    }

    fn successors(&self, cfg: &Config) -> Result<Vec<Config>, wave_fol::EvalError> {
        let inst = self.materialize(cfg);
        let page = self.spec.page(cfg.page);
        let page_name = &page.name;
        let ctx = EvalCtx {
            instance: &inst,
            symbols: self.symbols,
            current_page: Some(page_name),
            domain: self.domain,
        };
        let resolver = SchemaResolver(&self.spec.schema);

        // target page
        let mut fired = Vec::new();
        for t in &page.target_rules {
            if eval(&t.condition, &ctx, &resolver, &mut Bindings::new())? {
                fired.push(t.target);
            }
        }
        fired.dedup();
        let vt = match fired.as_slice() {
            [one] => *one,
            _ => cfg.page,
        };

        // state update (genuine runs keep every tuple — no C-filtering)
        let mut state: std::collections::BTreeSet<(wave_relalg::RelId, Tuple)> =
            cfg.state.iter().cloned().collect();
        let mut inserts = std::collections::BTreeSet::new();
        let mut deletes = std::collections::BTreeSet::new();
        for rule in &page.state_rules {
            let rows = answers(&rule.body, &rule.head_vars, &ctx, &resolver)?;
            let sink = if rule.insert { &mut inserts } else { &mut deletes };
            for row in rows {
                sink.insert((rule.head, Tuple::from(row)));
            }
        }
        for f in &inserts {
            if !deletes.contains(f) {
                state.insert(f.clone());
            }
        }
        for f in &deletes {
            if !inserts.contains(f) {
                state.remove(f);
            }
        }

        let prev: Vec<(wave_relalg::RelId, Tuple)> = cfg
            .input
            .iter()
            .map(|(rel, t)| {
                let shadow = self
                    .spec
                    .schema
                    .lookup(&wave_fol::prev_shadow_name(self.spec.schema.name(*rel)))
                    .expect("shadow declared");
                (shadow, t.clone())
            })
            .collect();
        self.expand_page(vt, prev, state.into_iter().collect())
    }

    fn expand_page(
        &self,
        page_id: PageId,
        prev: Vec<(wave_relalg::RelId, Tuple)>,
        state: Vec<(wave_relalg::RelId, Tuple)>,
    ) -> Result<Vec<Config>, wave_fol::EvalError> {
        let page = self.spec.page(page_id);
        let shell = Config { page: page_id, input: Vec::new(), prev, state, actions: Vec::new() };
        let inst = self.materialize(&shell);
        let page_name = &page.name;
        let ctx = EvalCtx {
            instance: &inst,
            symbols: self.symbols,
            current_page: Some(page_name),
            domain: self.domain,
        };
        let resolver = SchemaResolver(&self.spec.schema);

        // options per input
        let mut choice_lists: Vec<Vec<Option<(wave_relalg::RelId, Tuple)>>> = Vec::new();
        for &input in &page.inputs {
            let mut choices: Vec<Option<(wave_relalg::RelId, Tuple)>> = vec![None];
            match self.spec.schema.kind(input) {
                RelKind::Input => {
                    let mut seen = std::collections::BTreeSet::new();
                    for rule in &page.option_rules {
                        if rule.head != input {
                            continue;
                        }
                        for row in answers(&rule.body, &rule.head_vars, &ctx, &resolver)? {
                            let t = Tuple::from(row);
                            if seen.insert(t.clone()) {
                                choices.push(Some((input, t)));
                            }
                        }
                    }
                }
                RelKind::InputConstant => {
                    // text input: any domain value
                    for &v in self.domain {
                        choices.push(Some((input, Tuple::from([v]))));
                    }
                }
                _ => unreachable!("page inputs are input relations"),
            }
            choice_lists.push(choices);
        }

        // cartesian product over input choices
        let mut result = Vec::new();
        let mut idx = vec![0usize; choice_lists.len()];
        loop {
            let mut cfg = shell.clone();
            cfg.input =
                choice_lists.iter().zip(&idx).filter_map(|(cs, &i)| cs[i].clone()).collect();
            cfg.input.sort_unstable();
            // actions under this choice
            let inst2 = self.materialize(&cfg);
            let ctx2 = EvalCtx {
                instance: &inst2,
                symbols: self.symbols,
                current_page: Some(page_name),
                domain: self.domain,
            };
            let mut actions = std::collections::BTreeSet::new();
            for rule in &page.action_rules {
                for row in answers(&rule.body, &rule.head_vars, &ctx2, &resolver)? {
                    actions.insert((rule.head, Tuple::from(row)));
                }
            }
            cfg.actions = actions.into_iter().collect();
            result.push(cfg);

            let mut pos = choice_lists.len();
            let mut done = true;
            while pos > 0 {
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < choice_lists[pos].len() {
                    done = false;
                    break;
                }
                idx[pos] = 0;
            }
            if done {
                break;
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_spec::parse_spec;

    fn pingpong() -> Spec {
        parse_spec(
            r#"
            spec pingpong {
              inputs { button(x); }
              home A;
              page A {
                inputs { button }
                options button(x) <- x = "go";
                target B <- button("go");
              }
              page B { target A <- true; }
            }
        "#,
        )
        .unwrap()
    }

    fn opts() -> NaiveOptions {
        NaiveOptions { fresh_values: 1, ..Default::default() }
    }

    #[test]
    fn holds_on_pingpong_invariant() {
        let v = NaiveVerifier::new(pingpong(), opts()).unwrap();
        let (verdict, _) = v.check_str("G (@A -> X (@A | @B))").unwrap();
        assert_eq!(verdict, NaiveVerdict::HoldsBounded);
    }

    #[test]
    fn finds_violation_of_forced_progress() {
        let v = NaiveVerifier::new(pingpong(), opts()).unwrap();
        let (verdict, _) = v.check_str("F @B").unwrap();
        assert_eq!(verdict, NaiveVerdict::Violated);
    }

    #[test]
    fn detects_reachability() {
        let v = NaiveVerifier::new(pingpong(), opts()).unwrap();
        let (verdict, _) = v.check_str("G !@B").unwrap();
        assert_eq!(verdict, NaiveVerdict::Violated);
    }

    #[test]
    fn explodes_on_wide_relations() {
        let spec = parse_spec(
            r#"
            spec wide {
              database { big(a, b, c, d, e); }
              inputs { go(); }
              home P;
              page P {
                inputs { go }
                options go() <- true;
                target P <- true;
              }
            }
        "#,
        )
        .unwrap();
        let v = NaiveVerifier::new(spec, NaiveOptions::default()).unwrap();
        let (verdict, _) = v.check_str("G @P").unwrap();
        assert!(matches!(verdict, NaiveVerdict::Explosion { .. }), "{verdict:?}");
    }

    #[test]
    fn data_aware_verdicts_match_wave_on_login() {
        let src = r#"
            spec login {
              database { user(n, p); }
              state { logged(u); }
              inputs { button(x); constant uname; constant pass; }
              home HP;
              page HP {
                inputs { button, uname, pass }
                options button(x) <- x = "login";
                insert logged(u) <- uname(u) & (exists q: pass(q) & user(u, q))
                                    & button("login");
                target CP <- exists u: uname(u) & (exists q: pass(q) & user(u, q))
                             & button("login");
              }
              page CP {
                inputs { button }
                options button(x) <- x = "logout";
                target HP <- button("logout");
              }
            }
        "#;
        let spec = parse_spec(src).unwrap();
        let v = NaiveVerifier::new(
            spec,
            NaiveOptions {
                fresh_values: 1,
                max_tuples_per_relation: 16,
                max_steps: Some(2_000_000),
                time_limit: Some(Duration::from_secs(60)),
            },
        )
        .unwrap();
        // CP is reachable (requires synthesizing a matching user tuple)
        let (verdict, stats) = v.check_str("G !@CP").unwrap();
        assert_eq!(verdict, NaiveVerdict::Violated, "{stats:?}");
    }
}
