//! Pass 4: insert/delete conflict detection.
//!
//! The paper's update semantics (Section 2.1) makes a simultaneous insert
//! and delete of the same tuple a *no-op* — the state is left unchanged.
//! Rules of one page fire in the same step, so an insert rule and a
//! delete rule for the same state relation *on the same page* whose
//! bodies can hold together may silently cancel: almost always a spec
//! bug. [`crate::diag::W0401`] reports each such pair unless the bodies
//! are provably disjoint.
//!
//! The disjointness argument is deliberately cheap and sound: an input
//! relation holds at most one tuple per step (the user picks one option;
//! a constant holds one value), so two bodies that each *require* a
//! ground atom over the same input relation with different tuples can
//! never hold in the same step. `button("add")` vs `button("remove")` is
//! the idiomatic case.

use std::collections::HashMap;

use crate::diag::{Diagnostic, W0401};
use crate::simplify::{truth, Tri};
use wave_fol::{Formula, Term};
use wave_spec::{Spec, StateRule};

pub fn run(spec: &Spec, out: &mut Vec<Diagnostic>) {
    for p in &spec.pages {
        let inserts: Vec<&StateRule> = p.state_rules.iter().filter(|r| r.insert).collect();
        let deletes: Vec<&StateRule> = p.state_rules.iter().filter(|r| !r.insert).collect();
        for ins in &inserts {
            for del in &deletes {
                if ins.state != del.state {
                    continue;
                }
                if truth(&ins.body) == Tri::False || truth(&del.body) == Tri::False {
                    continue; // dead rules are W0304's business
                }
                if provably_disjoint(spec, &ins.body, &del.body) {
                    continue;
                }
                out.push(
                    Diagnostic::new(
                        W0401,
                        format!(
                            "state relation {} is both inserted and deleted on page {} \
                             under conditions that may hold together",
                            ins.state, p.name
                        ),
                    )
                    .with_span(del.span)
                    .note(
                        "a simultaneous insert and delete of the same tuple is a no-op \
                         under the paper's update semantics; if the cancellation is \
                         intended, guard the two rules with distinct input choices",
                    ),
                );
            }
        }
    }
}

/// True when the two bodies can never hold in the same step, argued via
/// required ground input atoms.
fn provably_disjoint(spec: &Spec, a: &Formula, b: &Formula) -> bool {
    let ra = required_ground_inputs(spec, a);
    let rb = required_ground_inputs(spec, b);
    for (key, ta) in &ra {
        if let Some(tb) = rb.get(key) {
            if ta != tb {
                return true;
            }
        }
    }
    false
}

/// Ground input atoms every model of `f` must satisfy: positive all-constant
/// atoms over input relations appearing as top-level conjuncts. Keyed by
/// `(relation, prev)`; an input relation holds at most one tuple per step,
/// so one required tuple per key is enough for the disjointness argument.
fn required_ground_inputs<'f>(spec: &Spec, f: &'f Formula) -> HashMap<(String, bool), &'f [Term]> {
    let mut out = HashMap::new();
    let mut stack = vec![f];
    while let Some(g) = stack.pop() {
        match g {
            Formula::And(xs) => stack.extend(xs.iter()),
            Formula::Atom(a)
                if spec.input(&a.rel).is_some()
                    && a.terms.iter().all(|t| matches!(t, Term::Const(_))) =>
            {
                out.insert((a.rel.clone(), a.prev), a.terms.as_slice());
            }
            _ => {}
        }
    }
    out
}
