//! The lint pass pipeline.
//!
//! Each pass inspects a *validated* [`wave_spec::Spec`] (and, where
//! relevant, the parsed LTL-FO properties) and appends [`Diagnostic`]s.
//! Passes are independent; [`run_all`] runs them in a fixed order and the
//! caller sorts the combined output by source position.

use crate::diag::Diagnostic;
use wave_ltl::{Ltl, Property};
use wave_spec::Spec;

pub mod bounded;
pub mod conflict;
pub mod dead;
pub mod flow;
pub mod property;
pub mod reach;

/// A property that survived parsing, tagged with its index in the lint
/// request (diagnostics use the index as their [`crate::diag::Origin`]).
pub struct ParsedProperty {
    pub index: usize,
    pub property: Property,
}

/// Run every semantic pass over a validated spec.
pub fn run_all(spec: &Spec, props: &[ParsedProperty], out: &mut Vec<Diagnostic>) {
    bounded::run(spec, out);
    reach::run(spec, out);
    dead::run(spec, props, out);
    conflict::run(spec, out);
    property::run(spec, props, out);
    flow::run(spec, props, out);
}

/// The maximal FO components of a property body (the paper's `frFO(φ)`).
pub fn fo_components(p: &Property) -> Vec<&wave_fol::Formula> {
    let mut out = Vec::new();
    collect_fo(&p.body, &mut out);
    out
}

fn collect_fo<'a>(l: &'a Ltl, out: &mut Vec<&'a wave_fol::Formula>) {
    match l {
        Ltl::Fo(f) => out.push(f),
        Ltl::Not(x) | Ltl::X(x) | Ltl::F(x) | Ltl::G(x) => collect_fo(x, out),
        Ltl::And(a, b)
        | Ltl::Or(a, b)
        | Ltl::Implies(a, b)
        | Ltl::U(a, b)
        | Ltl::R(a, b)
        | Ltl::B(a, b) => {
            collect_fo(a, out);
            collect_fo(b, out);
        }
    }
}
