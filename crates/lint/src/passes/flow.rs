//! Pass 6: fixpoint dataflow findings (the wave-flow analyses).
//!
//! Runs [`wave_flow::analyze`] — the same least-fixpoint abstract
//! interpretation the verifier's slice is built from — and reports what
//! the purely syntactic passes cannot see:
//!
//! * a rule whose guard is *statically unsatisfiable* given relation
//!   emptiness and option value sets ([`crate::diag::W0601`]), with the
//!   provenance chain as notes;
//! * a relation that has writers, all of which are refuted, so it can
//!   never hold a tuple ([`crate::diag::W0602`]);
//! * a page all of whose incoming target edges are refuted, making it
//!   unreachable even though the syntactic page graph connects it
//!   ([`crate::diag::W0603`]);
//! * a state relation that only ever grows ([`crate::diag::N0604`], an
//!   informational note — the verifier exploits monotonicity
//!   automatically).
//!
//! Findings already covered by a syntactic pass are suppressed here:
//! trivially false bodies are W0304/W0202, syntactically unreachable
//! pages are W0201, and rules on such pages are implied dead by them.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::diag::{Diagnostic, N0604, W0601, W0602, W0603};
use crate::simplify::{truth, Tri};
use wave_flow::{RuleKind, RuleRef};
use wave_spec::Spec;

use super::ParsedProperty;

pub fn run(spec: &Spec, props: &[ParsedProperty], out: &mut Vec<Diagnostic>) {
    let report = wave_flow::analyze(spec);
    let syntactic = syntactic_reachable(spec);

    for dead in &report.dead {
        let page = &spec.pages[dead.rule.page];
        // already reported: W0304/W0202 (trivially false body) and
        // W0201 ("its rules can never fire" on unreachable pages)
        if truth(rule_body(spec, &dead.rule)) == Tri::False
            || !syntactic.contains(page.name.as_str())
        {
            continue;
        }
        let (what, span) = describe(spec, &dead.rule);
        let mut d = Diagnostic::new(
            W0601,
            format!("{what} can never fire: its guard is statically unsatisfiable"),
        )
        .with_span(span);
        for note in &dead.notes {
            d = d.note(note.clone());
        }
        out.push(d);
    }

    for empty in &report.always_empty {
        let writers = if empty.writers == 1 { "its only writer is" } else { "all its writers are" };
        let mut d = Diagnostic::new(
            W0602,
            format!("relation {} can never hold a tuple: {writers} dead", empty.rel),
        )
        .note(empty.note.clone());
        if let Some(span) = spec.decl_span(&empty.rel) {
            d = d.with_span(span);
        }
        out.push(d);
    }

    for &pi in &report.unreachable_pages {
        let page = &spec.pages[pi];
        // syntactically unreachable pages are already W0201
        if !syntactic.contains(page.name.as_str()) {
            continue;
        }
        out.push(
            Diagnostic::new(
                W0603,
                format!(
                    "page {} is unreachable: every target edge leading to it \
                     is statically refuted",
                    page.name
                ),
            )
            .with_span(page.span)
            .note("the syntactic page graph connects it, but no connecting rule can ever fire"),
        );
    }

    // monotonicity is a hint about verification behavior, so like the
    // whole-problem dead-code findings it only fires when the linter
    // sees the full problem (spec + properties)
    if props.is_empty() {
        return;
    }
    for rel in &report.monotone {
        let mut d = Diagnostic::new(
            N0604,
            format!("state relation {rel} is monotone: inserted but never deleted"),
        )
        .note(
            "the verifier skips insert/delete conflict handling on pages \
             without live delete rules",
        );
        if let Some(span) = spec.decl_span(rel) {
            d = d.with_span(span);
        }
        out.push(d);
    }
}

/// The pages reachable in the *syntactic* page graph (edges whose
/// condition is not trivially false) — the same graph pass 2 walks, so
/// suppression of already-reported findings agrees with it.
fn syntactic_reachable(spec: &Spec) -> HashSet<&str> {
    let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
    for p in &spec.pages {
        let succs = edges.entry(p.name.as_str()).or_default();
        for r in &p.target_rules {
            if truth(&r.condition) != Tri::False {
                succs.push(r.target.as_str());
            }
        }
    }
    let mut reached: HashSet<&str> = HashSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    if spec.page(&spec.home).is_some() {
        reached.insert(spec.home.as_str());
        queue.push_back(spec.home.as_str());
    }
    while let Some(page) = queue.pop_front() {
        for succ in edges.get(page).into_iter().flatten() {
            if reached.insert(succ) {
                queue.push_back(succ);
            }
        }
    }
    reached
}

fn rule_body<'s>(spec: &'s Spec, r: &RuleRef) -> &'s wave_fol::Formula {
    let page = &spec.pages[r.page];
    match r.kind {
        RuleKind::Option => &page.option_rules[r.index].body,
        RuleKind::State => &page.state_rules[r.index].body,
        RuleKind::Action => &page.action_rules[r.index].body,
        RuleKind::Target => &page.target_rules[r.index].condition,
    }
}

fn describe(spec: &Spec, r: &RuleRef) -> (String, wave_fol::Span) {
    let page = &spec.pages[r.page];
    match r.kind {
        RuleKind::Option => {
            let rule = &page.option_rules[r.index];
            (format!("option rule for input {} on page {}", rule.input, page.name), rule.span)
        }
        RuleKind::State => {
            let rule = &page.state_rules[r.index];
            let verb = if rule.insert { "insert" } else { "delete" };
            (format!("{verb} rule for state {} on page {}", rule.state, page.name), rule.span)
        }
        RuleKind::Action => {
            let rule = &page.action_rules[r.index];
            (format!("action rule for {} on page {}", rule.action, page.name), rule.span)
        }
        RuleKind::Target => {
            let rule = &page.target_rules[r.index];
            (format!("target rule to {} on page {}", rule.target, page.name), rule.span)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint, LintRequest, PropertySource};

    /// A spec whose defects only the dataflow fixpoint can see: every
    /// guard is syntactically satisfiable, the page graph connects
    /// everything, yet `ghost` can never hold a tuple, the rules that
    /// depend on it are dead, and `Ghost` is never displayed.
    const DIRTY: &str = r#"
        spec dirty {
          state { log(entry); ghost(x); }
          inputs { pick(choice); }
          home A;
          page A {
            inputs { pick }
            options pick(c) <- c = "go" | c = "stay";
            insert log(c) <- pick(c);
            insert ghost(c) <- pick(c) & c = "teleport";
            target B <- pick("go");
            target Ghost <- ghost("x");
          }
          page B {
            inputs { pick }
            options pick(c) <- c = "go";
            target A <- pick("go");
          }
          page Ghost {
            inputs { pick }
            options pick(c) <- c = "go";
            target A <- pick("go");
          }
        }
    "#;

    #[test]
    fn dataflow_findings_fire_with_provenance() {
        let req = LintRequest::spec_only("dirty.wave", DIRTY);
        let diags = lint(&req);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"W0601"), "{diags:?}"); // ghost insert + ghost target
        assert!(codes.contains(&"W0602"), "{diags:?}"); // ghost always empty
        assert!(codes.contains(&"W0603"), "{diags:?}"); // Ghost page
                                                        // none of the syntactic passes see any of this
        assert!(!codes.contains(&"W0304"), "{diags:?}");
        assert!(!codes.contains(&"W0202"), "{diags:?}");
        assert!(!codes.contains(&"W0201"), "{diags:?}");

        let dead_insert = diags
            .iter()
            .find(|d| d.code == "W0601" && d.message.contains("insert rule for state ghost"))
            .expect("dead ghost insert");
        assert!(!dead_insert.notes.is_empty(), "provenance notes expected: {dead_insert:?}");
        assert!(dead_insert.span.is_some());
    }

    #[test]
    fn monotone_note_needs_properties_and_stays_note_severity() {
        let req = LintRequest::spec_only("dirty.wave", DIRTY);
        let diags = lint(&req);
        assert!(diags.iter().all(|d| d.code != "N0604"), "{diags:?}");

        let mut req = req;
        req.properties
            .push(PropertySource { label: "p".into(), text: "G (log(\"go\") -> F @B)".into() });
        let diags = lint(&req);
        let note = diags.iter().find(|d| d.code == "N0604").expect("monotone note");
        assert_eq!(note.severity, crate::Severity::Note);
        assert!(note.message.contains("log"), "{note:?}");

        // --deny warnings never promotes notes
        let denied = crate::LintConfig { deny_warnings: true, ..Default::default() }.apply(diags);
        let note = denied.iter().find(|d| d.code == "N0604").expect("still present");
        assert_eq!(note.severity, crate::Severity::Note);
        // but --allow can drop them
        let cfg = crate::LintConfig {
            allow: std::iter::once("N0604".to_string()).collect(),
            ..Default::default()
        };
        assert!(cfg.apply(denied).iter().all(|d| d.code != "N0604"));
    }

    #[test]
    fn trivially_false_bodies_stay_w0304_not_w0601() {
        let src = DIRTY.replace(
            "insert ghost(c) <- pick(c) & c = \"teleport\";",
            "insert ghost(c) <- pick(c) & \"a\" = \"b\";",
        );
        let req = LintRequest::spec_only("dirty.wave", src);
        let diags = lint(&req);
        assert!(
            !diags
                .iter()
                .any(|d| d.code == "W0601" && d.message.contains("insert rule for state ghost")),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.code == "W0304"), "{diags:?}");
    }
}
