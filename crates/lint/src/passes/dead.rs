//! Pass 3: dead-code analysis.
//!
//! Splits into two families:
//!
//! * **Spec-internal** findings that hold regardless of the properties to
//!   be verified: a state relation that is read but has no insert rule is
//!   always empty ([`crate::diag::W0302`]); an action relation with no
//!   emitting rule is always empty ([`crate::diag::W0305`]); a rule body
//!   refuted by the constant analysis never fires
//!   ([`crate::diag::W0304`]).
//!
//! * **Whole-problem** findings that need the property set: state and
//!   action relations are exactly the observables LTL-FO properties read,
//!   so "written but never read" ([`crate::diag::W0301`]), "input never
//!   referenced" ([`crate::diag::W0303`]) and "relation never used"
//!   ([`crate::diag::W0306`]) are only decidable once the linter sees the
//!   properties. These fire only when at least one property is supplied;
//!   their read-set is rule bodies plus property FO components.

use std::collections::HashSet;

use crate::diag::{Diagnostic, W0301, W0302, W0303, W0304, W0305, W0306};
use crate::simplify::{truth, Tri};
use wave_spec::Spec;

use super::{fo_components, ParsedProperty};

pub fn run(spec: &Spec, props: &[ParsedProperty], out: &mut Vec<Diagnostic>) {
    // Relations read by any rule body or target condition.
    let mut rule_reads: HashSet<&str> = HashSet::new();
    for p in &spec.pages {
        for r in &p.option_rules {
            collect_reads(&r.body, spec, &mut rule_reads);
        }
        for r in &p.state_rules {
            collect_reads(&r.body, spec, &mut rule_reads);
        }
        for r in &p.action_rules {
            collect_reads(&r.body, spec, &mut rule_reads);
        }
        for r in &p.target_rules {
            collect_reads(&r.condition, spec, &mut rule_reads);
        }
    }

    // Relations read by property FO components (by name; properties may
    // reference relations the spec does not declare — pass 5 reports
    // those, here they simply match nothing).
    let mut prop_reads: HashSet<String> = HashSet::new();
    for pp in props {
        for comp in fo_components(&pp.property) {
            comp.visit_atoms(&mut |a| {
                prop_reads.insert(a.rel.clone());
            });
        }
    }

    let read = |name: &str| rule_reads.contains(name) || prop_reads.contains(name);

    // Rule heads.
    let mut inserted: HashSet<&str> = HashSet::new();
    let mut deleted: HashSet<&str> = HashSet::new();
    let mut emitted: HashSet<&str> = HashSet::new();
    for p in &spec.pages {
        for r in &p.state_rules {
            if r.insert { &mut inserted } else { &mut deleted }.insert(r.state.as_str());
        }
        for r in &p.action_rules {
            emitted.insert(r.action.as_str());
        }
    }

    // -- spec-internal findings ------------------------------------------

    for (name, _) in &spec.states {
        if read(name) && !inserted.contains(name.as_str()) {
            let mut d = Diagnostic::new(
                W0302,
                format!("state relation {name} is read but no rule inserts into it"),
            )
            .note("the relation is empty in every run; reads of it never hold");
            if deleted.contains(name.as_str()) {
                d = d.note("it has delete rules, but deleting from an empty relation is a no-op");
            }
            if let Some(span) = spec.decl_span(name) {
                d = d.with_span(span);
            }
            out.push(d);
        }
    }

    for (name, _) in &spec.actions {
        if !emitted.contains(name.as_str()) {
            let mut d = Diagnostic::new(
                W0305,
                format!("action relation {name} is never emitted by any rule"),
            )
            .note("the relation is empty in every run");
            if let Some(span) = spec.decl_span(name) {
                d = d.with_span(span);
            }
            out.push(d);
        }
    }

    for p in &spec.pages {
        for r in &p.option_rules {
            if truth(&r.body) == Tri::False {
                out.push(
                    Diagnostic::new(
                        W0304,
                        format!(
                            "option rule for input {:?} on page {} has a trivially \
                             false body: it never generates options",
                            r.input, p.name
                        ),
                    )
                    .with_span(r.span),
                );
            }
        }
        for r in &p.state_rules {
            if truth(&r.body) == Tri::False {
                let verb = if r.insert { "insert" } else { "delete" };
                out.push(
                    Diagnostic::new(
                        W0304,
                        format!(
                            "{verb} rule for state {} on page {} has a trivially \
                             false body: it never fires",
                            r.state, p.name
                        ),
                    )
                    .with_span(r.span),
                );
            }
        }
        for r in &p.action_rules {
            if truth(&r.body) == Tri::False {
                out.push(
                    Diagnostic::new(
                        W0304,
                        format!(
                            "action rule for {} on page {} has a trivially \
                             false body: it never fires",
                            r.action, p.name
                        ),
                    )
                    .with_span(r.span),
                );
            }
        }
        // trivially false target conditions are W0202 (reachability pass)
    }

    // -- whole-problem findings (need the property set) ------------------

    if props.is_empty() {
        return;
    }

    for (name, _) in &spec.states {
        let written = inserted.contains(name.as_str()) || deleted.contains(name.as_str());
        if written && !read(name) {
            let mut d = Diagnostic::new(
                W0301,
                format!(
                    "state relation {name} is written but never read by any \
                     rule or property"
                ),
            )
            .note("its contents cannot influence any run or verdict");
            if let Some(span) = spec.decl_span(name) {
                d = d.with_span(span);
            }
            out.push(d);
        }
        if !written && !read(name) {
            let mut d =
                Diagnostic::new(W0306, format!("state relation {name} is declared but never used"));
            if let Some(span) = spec.decl_span(name) {
                d = d.with_span(span);
            }
            out.push(d);
        }
    }

    for (name, _) in &spec.database {
        if !read(name) {
            let mut d = Diagnostic::new(
                W0306,
                format!("database relation {name} is declared but never used"),
            );
            if let Some(span) = spec.decl_span(name) {
                d = d.with_span(span);
            }
            out.push(d);
        }
    }

    for (name, _) in &spec.actions {
        // an un-emitted action already got W0305 above
        if emitted.contains(name.as_str()) && !read(name) {
            let mut d = Diagnostic::new(
                W0301,
                format!(
                    "action relation {name} is emitted but never read by any \
                     rule or property"
                ),
            )
            .note("its contents cannot influence any run or verdict");
            if let Some(span) = spec.decl_span(name) {
                d = d.with_span(span);
            }
            out.push(d);
        }
    }

    for i in &spec.inputs {
        if !read(&i.name) {
            let kind = if i.constant { "input constant" } else { "input relation" };
            let mut d = Diagnostic::new(
                W0303,
                format!(
                    "{kind} {} is declared but never referenced by any rule \
                     or property",
                    i.name
                ),
            );
            if let Some(span) = spec.decl_span(&i.name) {
                d = d.with_span(span);
            }
            out.push(d);
        }
    }
}

fn collect_reads<'s>(f: &wave_fol::Formula, spec: &'s Spec, out: &mut HashSet<&'s str>) {
    f.visit_atoms(&mut |a| {
        // intern via the spec's declaration tables so the set borrows from
        // the spec, not from the formula being visited
        if let Some(n) = decl_name(spec, &a.rel) {
            out.insert(n);
        }
    });
}

fn decl_name<'s>(spec: &'s Spec, rel: &str) -> Option<&'s str> {
    spec.database
        .iter()
        .chain(spec.states.iter())
        .chain(spec.actions.iter())
        .map(|(n, _)| n.as_str())
        .chain(spec.inputs.iter().map(|i| i.name.as_str()))
        .find(|n| *n == rel)
}
