//! Pass 2: page-graph reachability.
//!
//! Builds the page graph (one node per page, one edge per target rule
//! whose condition is not trivially false) and walks it from the home
//! page. Pages no run can ever display get [`crate::diag::W0201`];
//! target rules whose condition the constant analysis refutes get
//! [`crate::diag::W0202`] — such an edge also does not count for
//! reachability, so a page only linked through it is reported too.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::diag::{Diagnostic, W0201, W0202};
use crate::simplify::{truth, Tri};
use wave_spec::Spec;

pub fn run(spec: &Spec, out: &mut Vec<Diagnostic>) {
    let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
    for p in &spec.pages {
        let succs = edges.entry(p.name.as_str()).or_default();
        for r in &p.target_rules {
            if truth(&r.condition) == Tri::False {
                out.push(
                    Diagnostic::new(
                        W0202,
                        format!(
                            "target rule to {} on page {} can never fire: \
                             its condition is trivially false",
                            r.target, p.name
                        ),
                    )
                    .with_span(r.span),
                );
            } else {
                succs.push(r.target.as_str());
            }
        }
    }

    let mut reached: HashSet<&str> = HashSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    if spec.page(&spec.home).is_some() {
        reached.insert(spec.home.as_str());
        queue.push_back(spec.home.as_str());
    }
    while let Some(page) = queue.pop_front() {
        for succ in edges.get(page).into_iter().flatten() {
            if reached.insert(succ) {
                queue.push_back(succ);
            }
        }
    }

    for p in &spec.pages {
        if !reached.contains(p.name.as_str()) {
            out.push(
                Diagnostic::new(
                    W0201,
                    format!("page {} is unreachable from the home page {}", p.name, spec.home),
                )
                .with_span(p.span)
                .note(
                    "no sequence of target-rule transitions leads here; \
                       its rules can never fire",
                ),
            );
        }
    }
}
