//! Pass 5: spec ↔ property cross-checks.
//!
//! LTL-FO properties are parsed and verified against a specific spec, but
//! nothing in the property language itself ties the two together — a typo
//! in a relation name silently produces a property about an always-empty
//! relation. This pass checks every FO component of every property against
//! the spec's declarations: unknown relations ([`crate::diag::E0501`]),
//! arity mismatches ([`crate::diag::E0502`]), unknown `@page` references
//! ([`crate::diag::E0503`]), and components outside the input-bounded
//! fragment ([`crate::diag::W0504`] — the paper's completeness theorem
//! needs the *property* to be input-bounded too, not just the spec).

use std::collections::HashSet;

use crate::diag::{Diagnostic, E0501, E0502, E0503, W0504};
use wave_fol::Formula;
use wave_spec::{spec_kinds, Spec};

use super::{fo_components, ParsedProperty};

pub fn run(spec: &Spec, props: &[ParsedProperty], out: &mut Vec<Diagnostic>) {
    let kinds = spec_kinds(spec);
    for pp in props {
        // report each unknown name once per property, not once per occurrence
        let mut reported: HashSet<String> = HashSet::new();
        for comp in fo_components(&pp.property) {
            comp.visit_atoms(&mut |a| match spec.arity_of(&a.rel) {
                None => {
                    if reported.insert(a.rel.clone()) {
                        out.push(
                            Diagnostic::new(
                                E0501,
                                format!("property references undeclared relation {}", a.rel),
                            )
                            .in_property(pp.index)
                            .note("the atom can never hold; the verdict would be vacuous"),
                        );
                    }
                }
                Some(arity) if arity != a.terms.len() => {
                    if reported.insert(format!("{}/{}", a.rel, a.terms.len())) {
                        out.push(
                            Diagnostic::new(
                                E0502,
                                format!(
                                    "property uses {} with arity {}, declared {}",
                                    a.rel,
                                    a.terms.len(),
                                    arity
                                ),
                            )
                            .in_property(pp.index),
                        );
                    }
                }
                Some(_) => {}
            });
            check_page_refs(spec, comp, pp.index, &mut reported, out);
            if let Err(v) = wave_fol::check_input_bounded(comp, &kinds) {
                out.push(
                    Diagnostic::new(
                        W0504,
                        format!("property component `{comp}` is not input-bounded: {v}"),
                    )
                    .in_property(pp.index)
                    .note(
                        "the paper's completeness theorem requires input-bounded \
                         properties; verification stays sound but may not terminate \
                         with a conclusive PASS",
                    ),
                );
            }
        }
    }
}

fn check_page_refs(
    spec: &Spec,
    f: &Formula,
    index: usize,
    reported: &mut HashSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    match f {
        Formula::Page(p) if spec.page(p).is_none() && reported.insert(format!("@{p}")) => {
            out.push(
                Diagnostic::new(E0503, format!("property references unknown page {p}"))
                    .in_property(index),
            );
        }
        Formula::Page(_) => {}
        Formula::Not(x) | Formula::Exists(_, x) | Formula::Forall(_, x) => {
            check_page_refs(spec, x, index, reported, out);
        }
        Formula::And(xs) | Formula::Or(xs) => {
            for x in xs {
                check_page_refs(spec, x, index, reported, out);
            }
        }
        Formula::Implies(a, b) => {
            check_page_refs(spec, a, index, reported, out);
            check_page_refs(spec, b, index, reported, out);
        }
        _ => {}
    }
}
