//! Pass 1: decidable-fragment checks.
//!
//! Re-runs the paper's Section 2.1 input-boundedness restriction
//! ([`wave_fol::check_input_bounded`]) and the input-option-rule
//! restriction ([`wave_fol::check_option_rule`]) over every rule, but —
//! unlike [`wave_spec::CompiledSpec::compile`], which records the same
//! facts in its `ib_report` — anchors each finding to the offending rule's
//! source span. Outside the fragment the verifier still runs, but it is
//! sound-and-incomplete, so these are warnings rather than errors.

use crate::diag::{Diagnostic, W0101, W0102};
use wave_fol::{check_input_bounded, check_option_rule};
use wave_spec::{spec_kinds, Spec};

const INCOMPLETE_NOTE: &str =
    "outside the input-bounded fragment verification is sound but incomplete \
     (counterexamples are real; PASS verdicts are not conclusive)";

pub fn run(spec: &Spec, out: &mut Vec<Diagnostic>) {
    let kinds = spec_kinds(spec);
    for p in &spec.pages {
        for r in &p.option_rules {
            if let Err(v) = check_option_rule(&r.body, &kinds) {
                out.push(
                    Diagnostic::new(
                        W0102,
                        format!(
                            "option rule for input {:?} on page {} is outside the \
                             option-rule fragment: {v}",
                            r.input, p.name
                        ),
                    )
                    .with_span(r.span)
                    .note(INCOMPLETE_NOTE),
                );
            }
        }
        for r in &p.state_rules {
            if let Err(v) = check_input_bounded(&r.body, &kinds) {
                let verb = if r.insert { "insert" } else { "delete" };
                out.push(
                    Diagnostic::new(
                        W0101,
                        format!(
                            "{verb} rule for state {} on page {} is not input-bounded: {v}",
                            r.state, p.name
                        ),
                    )
                    .with_span(r.span)
                    .note(INCOMPLETE_NOTE),
                );
            }
        }
        for r in &p.action_rules {
            if let Err(v) = check_input_bounded(&r.body, &kinds) {
                out.push(
                    Diagnostic::new(
                        W0101,
                        format!(
                            "action rule for {} on page {} is not input-bounded: {v}",
                            r.action, p.name
                        ),
                    )
                    .with_span(r.span)
                    .note(INCOMPLETE_NOTE),
                );
            }
        }
        for r in &p.target_rules {
            if let Err(v) = check_input_bounded(&r.condition, &kinds) {
                out.push(
                    Diagnostic::new(
                        W0101,
                        format!(
                            "target rule to {} on page {} is not input-bounded: {v}",
                            r.target, p.name
                        ),
                    )
                    .with_span(r.span)
                    .note(INCOMPLETE_NOTE),
                );
            }
        }
    }
}
