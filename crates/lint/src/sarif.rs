//! SARIF 2.1.0 output for CI ingestion (GitHub code scanning and
//! compatible tools).
//!
//! One run, one driver (`wave-lint`), the full stable rule table from
//! [`crate::diag::CODES`], and one result per diagnostic with a physical
//! location when the finding has a span. Notes are folded into the
//! message text (SARIF has related locations, but the notes here are
//! prose, not positions).
//!
//! Every result carries a `partialFingerprints` entry
//! (`waveLintFingerprint/v1`) hashing the rule id, artifact name, and
//! the *content* of the finding's source line — not its line number —
//! so CI result matching survives unrelated edits that shift the
//! finding up or down the file.

use crate::diag::{Diagnostic, Severity, CODES};
use crate::render::{json_string, SourceSet};
use crate::LintRequest;

const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Render diagnostics as a SARIF 2.1.0 log.
pub fn render_sarif(req: &LintRequest, diags: &[Diagnostic]) -> String {
    let sources = SourceSet::new(req);
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!("\"$schema\":{},", json_string(SARIF_SCHEMA)));
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{");
    out.push_str("\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"wave-lint\",");
    out.push_str(&format!("\"version\":{},", json_string(env!("CARGO_PKG_VERSION"))));
    out.push_str("\"informationUri\":\"https://doi.org/10.1145/1265530.1265562\",");
    out.push_str("\"rules\":[");
    for (i, (code, severity, desc)) in CODES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":{}}}}}",
            json_string(code),
            json_string(desc),
            json_string(level(*severity)),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_result(&sources, d, &mut out);
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

fn render_result(sources: &SourceSet<'_>, d: &Diagnostic, out: &mut String) {
    let mut message = d.message.clone();
    for note in &d.notes {
        message.push_str("\nnote: ");
        message.push_str(note);
    }
    out.push('{');
    out.push_str(&format!("\"ruleId\":{},", json_string(d.code)));
    out.push_str(&format!("\"level\":{},", json_string(level(d.severity))));
    out.push_str(&format!("\"message\":{{\"text\":{}}},", json_string(&message)));
    out.push_str(&format!(
        "\"partialFingerprints\":{{\"waveLintFingerprint/v1\":{}}}",
        json_string(&fingerprint(sources, d)),
    ));
    if let Some(loc) = sources.resolve(d) {
        out.push_str(&format!(
            ",\"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{},\
             \"endLine\":{},\"endColumn\":{}}}}}}}]",
            json_string(loc.file),
            loc.start.line,
            loc.start.col,
            loc.end.line,
            loc.end.col,
        ));
    } else {
        out.push_str(&format!(
            ",\"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}}}}}}]",
            json_string(sources.file(d.origin)),
        ));
    }
    out.push('}');
}

fn level(s: Severity) -> &'static str {
    match s {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Stable fingerprint for CI result matching: 64 bits of FNV-1a over the
/// rule id, the artifact name, and the *text* of the line the finding
/// starts on (the message for span-less findings). Keyed on line content
/// rather than line number, so edits elsewhere in the file that shift
/// the finding do not break the match; NUL separators keep the
/// components from running together.
fn fingerprint(sources: &SourceSet<'_>, d: &Diagnostic) -> String {
    let line_text = sources
        .resolve(d)
        .and_then(|loc| sources.source(d.origin).lines().nth(loc.start.line.saturating_sub(1)));
    let mut h: u64 = 0xcbf29ce484222325;
    for part in [d.code, sources.file(d.origin), line_text.unwrap_or(&d.message)] {
        for &b in part.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint;

    #[test]
    fn sarif_log_has_schema_rules_and_located_results() {
        let req = LintRequest::spec_only(
            "bad.wave",
            r#"spec t {
  inputs { b(x); }
  home HP;
  page HP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
  page EP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
}"#,
        );
        let diags = lint(&req);
        let sarif = render_sarif(&req, &diags);
        assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"id\":\"W0201\""), "{sarif}");
        assert!(sarif.contains("\"ruleId\":\"W0201\""), "{sarif}");
        assert!(sarif.contains("\"uri\":\"bad.wave\""), "{sarif}");
        assert!(sarif.contains("\"startLine\":9"), "{sarif}");
        // every registered code appears in the rule table
        for (code, _, _) in CODES {
            assert!(sarif.contains(&format!("\"id\":\"{code}\"")), "{code}");
        }
    }

    #[test]
    fn fingerprints_are_stable_under_line_shifts() {
        let body = r#"spec t {
  inputs { b(x); }
  home HP;
  page HP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
  page EP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
}"#;
        let req = LintRequest::spec_only("bad.wave", body);
        let diags = lint(&req);
        let fp = |req: &LintRequest, diags: &[Diagnostic]| {
            let sources = SourceSet::new(req);
            fingerprint(&sources, &diags[0])
        };
        let original = fp(&req, &diags);
        assert_eq!(original.len(), 16);
        let sarif = render_sarif(&req, &diags);
        assert!(sarif.contains(&format!("\"waveLintFingerprint/v1\":\"{original}\"")), "{sarif}");

        // shifting the finding down by a comment line keeps the fingerprint
        let shifted = LintRequest::spec_only("bad.wave", format!("# preamble\n{body}"));
        let shifted_diags = lint(&shifted);
        assert_eq!(shifted_diags[0].code, diags[0].code);
        assert_eq!(fp(&shifted, &shifted_diags), original);

        // a different artifact name changes it
        let renamed = LintRequest::spec_only("other.wave", body);
        let renamed_diags = lint(&renamed);
        assert_ne!(fp(&renamed, &renamed_diags), original);
    }

    #[test]
    fn sarif_with_no_findings_is_still_a_valid_run() {
        let req = LintRequest::spec_only("ok.wave", "spec x { inputs { b(x); } home P; page P { inputs { b } options b(x) <- x = \"a\"; target P <- b(\"a\"); } }");
        let diags = lint(&req);
        let sarif = render_sarif(&req, &diags);
        assert!(sarif.contains("\"results\":[]"), "{sarif}");
    }
}
