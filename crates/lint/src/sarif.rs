//! SARIF 2.1.0 output for CI ingestion (GitHub code scanning and
//! compatible tools).
//!
//! One run, one driver (`wave-lint`), the full stable rule table from
//! [`crate::diag::CODES`], and one result per diagnostic with a physical
//! location when the finding has a span. Notes are folded into the
//! message text (SARIF has related locations, but the notes here are
//! prose, not positions).

use crate::diag::{Diagnostic, Severity, CODES};
use crate::render::{json_string, SourceSet};
use crate::LintRequest;

const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Render diagnostics as a SARIF 2.1.0 log.
pub fn render_sarif(req: &LintRequest, diags: &[Diagnostic]) -> String {
    let sources = SourceSet::new(req);
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!("\"$schema\":{},", json_string(SARIF_SCHEMA)));
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{");
    out.push_str("\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"wave-lint\",");
    out.push_str(&format!("\"version\":{},", json_string(env!("CARGO_PKG_VERSION"))));
    out.push_str("\"informationUri\":\"https://doi.org/10.1145/1265530.1265562\",");
    out.push_str("\"rules\":[");
    for (i, (code, severity, desc)) in CODES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":{}}}}}",
            json_string(code),
            json_string(desc),
            json_string(level(*severity)),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_result(&sources, d, &mut out);
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

fn render_result(sources: &SourceSet<'_>, d: &Diagnostic, out: &mut String) {
    let mut message = d.message.clone();
    for note in &d.notes {
        message.push_str("\nnote: ");
        message.push_str(note);
    }
    out.push('{');
    out.push_str(&format!("\"ruleId\":{},", json_string(d.code)));
    out.push_str(&format!("\"level\":{},", json_string(level(d.severity))));
    out.push_str(&format!("\"message\":{{\"text\":{}}}", json_string(&message)));
    if let Some(loc) = sources.resolve(d) {
        out.push_str(&format!(
            ",\"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{},\
             \"endLine\":{},\"endColumn\":{}}}}}}}]",
            json_string(loc.file),
            loc.start.line,
            loc.start.col,
            loc.end.line,
            loc.end.col,
        ));
    } else {
        out.push_str(&format!(
            ",\"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":{}}}}}}}]",
            json_string(sources.file(d.origin)),
        ));
    }
    out.push('}');
}

fn level(s: Severity) -> &'static str {
    match s {
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint;

    #[test]
    fn sarif_log_has_schema_rules_and_located_results() {
        let req = LintRequest::spec_only(
            "bad.wave",
            r#"spec t {
  inputs { b(x); }
  home HP;
  page HP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
  page EP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
}"#,
        );
        let diags = lint(&req);
        let sarif = render_sarif(&req, &diags);
        assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"id\":\"W0201\""), "{sarif}");
        assert!(sarif.contains("\"ruleId\":\"W0201\""), "{sarif}");
        assert!(sarif.contains("\"uri\":\"bad.wave\""), "{sarif}");
        assert!(sarif.contains("\"startLine\":9"), "{sarif}");
        // every registered code appears in the rule table
        for (code, _, _) in CODES {
            assert!(sarif.contains(&format!("\"id\":\"{code}\"")), "{code}");
        }
    }

    #[test]
    fn sarif_with_no_findings_is_still_a_valid_run() {
        let req = LintRequest::spec_only("ok.wave", "spec x { inputs { b(x); } home P; page P { inputs { b } options b(x) <- x = \"a\"; target P <- b(\"a\"); } }");
        let diags = lint(&req);
        let sarif = render_sarif(&req, &diags);
        assert!(sarif.contains("\"results\":[]"), "{sarif}");
    }
}
