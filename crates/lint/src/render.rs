//! Diagnostic rendering: shared span resolution, human-readable text with
//! caret underlines, and machine-readable JSON.

use crate::diag::{Diagnostic, Origin, Severity};
use crate::LintRequest;
use wave_fol::{LineCol, LineMap};

/// Line maps for every artifact of a request, built once and shared by all
/// renderers (and by the verification service when it embeds diagnostics).
pub struct SourceSet<'a> {
    req: &'a LintRequest,
    spec_map: LineMap,
    prop_maps: Vec<LineMap>,
}

/// A diagnostic's span resolved to file/line/column (1-based, inclusive
/// start, exclusive end).
#[derive(Clone, Debug)]
pub struct ResolvedLoc<'a> {
    pub file: &'a str,
    pub start: LineCol,
    pub end: LineCol,
}

impl<'a> SourceSet<'a> {
    pub fn new(req: &'a LintRequest) -> SourceSet<'a> {
        SourceSet {
            req,
            spec_map: LineMap::new(&req.spec_src),
            prop_maps: req.properties.iter().map(|p| LineMap::new(&p.text)).collect(),
        }
    }

    /// Display name of an artifact.
    pub fn file(&self, origin: Origin) -> &'a str {
        match origin {
            Origin::Spec => &self.req.spec_path,
            Origin::Property(i) => &self.req.properties[i].label,
        }
    }

    /// Source text of an artifact.
    pub fn source(&self, origin: Origin) -> &'a str {
        match origin {
            Origin::Spec => &self.req.spec_src,
            Origin::Property(i) => &self.req.properties[i].text,
        }
    }

    fn map(&self, origin: Origin) -> &LineMap {
        match origin {
            Origin::Spec => &self.spec_map,
            Origin::Property(i) => &self.prop_maps[i],
        }
    }

    /// Resolve a diagnostic's span, if it has one.
    pub fn resolve(&self, d: &Diagnostic) -> Option<ResolvedLoc<'a>> {
        let span = d.span?;
        let map = self.map(d.origin);
        Some(ResolvedLoc {
            file: self.file(d.origin),
            start: map.resolve(span.start),
            end: map.resolve(span.end),
        })
    }
}

/// Render diagnostics as human-readable text with source excerpts:
///
/// ```text
/// warning[W0201]: page EP is unreachable from the home page HP
///   --> shop.wave:12:3
///    |
/// 12 |   page EP {
///    |   ^^^^^^^
///    = note: no sequence of target-rule transitions leads here
/// ```
pub fn render_text(req: &LintRequest, diags: &[Diagnostic]) -> String {
    let sources = SourceSet::new(req);
    let mut out = String::new();
    for d in diags {
        render_one(&sources, d, &mut out);
    }
    out
}

fn render_one(sources: &SourceSet<'_>, d: &Diagnostic, out: &mut String) {
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    if let Some(loc) = sources.resolve(d) {
        out.push_str(&format!("  --> {}:{}:{}\n", loc.file, loc.start.line, loc.start.col));
        let src = sources.source(d.origin);
        let map = sources.map(d.origin);
        {
            let text = map.line_text(src, loc.start.line);
            let gutter = loc.start.line.to_string();
            let pad = " ".repeat(gutter.len());
            let text = text.trim_end();
            // caret run: to the span end on this line, or to the line end
            // for multi-line spans; always at least one caret
            let end_col = if loc.end.line == loc.start.line {
                loc.end.col.max(loc.start.col + 1)
            } else {
                text.chars().count() + 1
            };
            let width = end_col.saturating_sub(loc.start.col).max(1);
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {text}\n"));
            out.push_str(&format!(
                "{pad} | {}{}\n",
                " ".repeat(loc.start.col.saturating_sub(1)),
                "^".repeat(width)
            ));
        }
    } else {
        out.push_str(&format!("  --> {}\n", sources.file(d.origin)));
    }
    for note in &d.notes {
        out.push_str(&format!("  = note: {note}\n"));
    }
}

/// One-line human summary (`"2 errors, 3 warnings, 1 note"`), empty
/// string when there are no diagnostics.
pub fn summary(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let notes = diags.iter().filter(|d| d.severity == Severity::Note).count();
    let warnings = diags.len() - errors - notes;
    let part = |n: usize, what: &str| format!("{n} {what}{}", if n == 1 { "" } else { "s" });
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(part(errors, "error"));
    }
    if warnings > 0 {
        parts.push(part(warnings, "warning"));
    }
    if notes > 0 {
        parts.push(part(notes, "note"));
    }
    parts.join(", ")
}

/// Render diagnostics as a JSON array, one finding per element. Positions
/// are 1-based; span-less findings omit the position fields.
pub fn render_json(req: &LintRequest, diags: &[Diagnostic]) -> String {
    let sources = SourceSet::new(req);
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&json_object(&sources, d));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_object(sources: &SourceSet<'_>, d: &Diagnostic) -> String {
    let mut fields = vec![
        format!("\"code\":{}", json_string(d.code)),
        format!("\"severity\":{}", json_string(&d.severity.to_string())),
        format!("\"message\":{}", json_string(&d.message)),
        format!("\"file\":{}", json_string(sources.file(d.origin))),
    ];
    if let Some(loc) = sources.resolve(d) {
        fields.push(format!("\"line\":{}", loc.start.line));
        fields.push(format!("\"col\":{}", loc.start.col));
        fields.push(format!("\"end_line\":{}", loc.end.line));
        fields.push(format!("\"end_col\":{}", loc.end.col));
    }
    if !d.notes.is_empty() {
        let notes: Vec<String> = d.notes.iter().map(|n| json_string(n)).collect();
        fields.push(format!("\"notes\":[{}]", notes.join(",")));
    }
    format!("{{{}}}", fields.join(","))
}

/// Escape a string for JSON output.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint;

    fn unreachable_req() -> LintRequest {
        LintRequest::spec_only(
            "t.wave",
            r#"spec t {
  inputs { b(x); }
  home HP;
  page HP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
  page EP {
    inputs { b }
    options b(x) <- x = "go";
    target HP <- b("go");
  }
}"#,
        )
    }

    #[test]
    fn text_rendering_shows_location_and_caret() {
        let req = unreachable_req();
        let diags = lint(&req);
        assert_eq!(diags.len(), 1);
        let text = render_text(&req, &diags);
        assert!(text.contains("warning[W0201]"), "{text}");
        assert!(text.contains("--> t.wave:9:8"), "{text}");
        assert!(text.contains("^^"), "{text}");
        assert!(text.contains("= note:"), "{text}");
    }

    #[test]
    fn json_rendering_carries_positions() {
        let req = unreachable_req();
        let diags = lint(&req);
        let json = render_json(&req, &diags);
        assert!(json.contains("\"code\":\"W0201\""), "{json}");
        assert!(json.contains("\"line\":9"), "{json}");
        assert!(json.contains("\"file\":\"t.wave\""), "{json}");
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        let req = LintRequest::spec_only("x", "spec x { inputs { b(x); } home P; page P { inputs { b } options b(x) <- x = \"a\"; target P <- b(\"a\"); } }");
        let diags = lint(&req);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(render_json(&req, &diags), "[]\n");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn summary_counts() {
        assert_eq!(summary(&[]), "");
        let req = unreachable_req();
        let diags = lint(&req);
        assert_eq!(summary(&diags), "1 warning");
        let denied = crate::LintConfig { deny_warnings: true, ..Default::default() }.apply(diags);
        assert_eq!(summary(&denied), "1 error");
    }
}
