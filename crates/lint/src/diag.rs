//! The diagnostic model: stable codes, severities, and resolved records.
//!
//! Every finding the linter produces is a [`Diagnostic`] carrying a stable
//! code (`E####` for errors, `W####` for warnings), a severity, a message,
//! an optional source [`Span`] into the artifact it was found in, and
//! free-form notes. Codes are stable across releases so CI configurations
//! (`--allow CODE`, SARIF rule ids) do not rot.

use std::fmt;
use wave_fol::Span;

/// Diagnostic severity. `Error` findings make `wave lint` exit non-zero;
/// `Warning` findings do so only under `--deny warnings`. `Note`
/// findings are informational hints (e.g. [`N0604`]) — they never fail
/// a lint run and `--deny warnings` does not promote them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which artifact a diagnostic points into: the spec source or the `i`-th
/// property text handed to the linter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    Spec,
    Property(usize),
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code, e.g. `"W0201"`. Always one of [`CODES`].
    pub code: &'static str,
    /// Default severity (may be promoted by `--deny warnings`).
    pub severity: Severity,
    pub message: String,
    pub origin: Origin,
    /// Byte extent into the origin's source text, when known.
    pub span: Option<Span>,
    /// Secondary remarks rendered under the primary message.
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(code: &'static str, message: impl Into<String>) -> Diagnostic {
        let severity = code_severity(code).expect("diagnostic code must be registered");
        Diagnostic {
            code,
            severity,
            message: message.into(),
            origin: Origin::Spec,
            span: None,
            notes: Vec::new(),
        }
    }

    pub fn with_span(mut self, span: Span) -> Diagnostic {
        if !span.is_dummy() {
            self.span = Some(span);
        }
        self
    }

    pub fn in_property(mut self, index: usize) -> Diagnostic {
        self.origin = Origin::Property(index);
        self
    }

    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

// Stable diagnostic codes, grouped by pass family:
//   E00xx  syntax / structural validity
//   W01xx  decidable-fragment (input-boundedness) findings
//   W02xx  page-graph reachability
//   W03xx  dead code
//   W04xx  rule conflicts
//   E/W05xx  spec ↔ property cross-checks
//   W/N06xx  fixpoint dataflow (wave-flow) findings

pub const E0001: &str = "E0001"; // syntax error
pub const E0002: &str = "E0002"; // invalid specification structure
pub const W0101: &str = "W0101"; // rule body not input-bounded
pub const W0102: &str = "W0102"; // option rule outside the option-rule fragment
pub const W0201: &str = "W0201"; // page unreachable from home
pub const W0202: &str = "W0202"; // target rule condition can never hold
pub const W0301: &str = "W0301"; // state relation written but never read
pub const W0302: &str = "W0302"; // state relation read but never written
pub const W0303: &str = "W0303"; // input declared but never used
pub const W0304: &str = "W0304"; // rule body trivially false
pub const W0305: &str = "W0305"; // action relation never emitted
pub const W0306: &str = "W0306"; // relation declared but never used
pub const W0401: &str = "W0401"; // insert/delete conflict on a state relation
pub const E0501: &str = "E0501"; // property references undeclared relation
pub const E0502: &str = "E0502"; // relation arity mismatch in property
pub const E0503: &str = "E0503"; // property references unknown page
pub const W0504: &str = "W0504"; // property component not input-bounded
pub const W0601: &str = "W0601"; // rule guard statically unsatisfiable (dataflow)
pub const W0602: &str = "W0602"; // relation has writers but is provably always empty
pub const W0603: &str = "W0603"; // page only reachable through refuted target edges
pub const N0604: &str = "N0604"; // state relation is monotone (inserted, never deleted)

/// The full code registry: `(code, default severity, short description)`.
/// Drives `--allow` validation, the SARIF rule table, and the docs.
pub const CODES: &[(&str, Severity, &str)] = &[
    (E0001, Severity::Error, "syntax error"),
    (E0002, Severity::Error, "invalid specification structure"),
    (W0101, Severity::Warning, "rule body is not input-bounded"),
    (W0102, Severity::Warning, "option rule outside the option-rule fragment"),
    (W0201, Severity::Warning, "page is unreachable from the home page"),
    (W0202, Severity::Warning, "target rule condition can never hold"),
    (W0301, Severity::Warning, "state relation is written but never read"),
    (W0302, Severity::Warning, "state relation is read but never written"),
    (W0303, Severity::Warning, "input is declared but never used"),
    (W0304, Severity::Warning, "rule body is trivially false"),
    (W0305, Severity::Warning, "action relation is never emitted by any rule"),
    (W0306, Severity::Warning, "relation is declared but never used"),
    (
        W0401,
        Severity::Warning,
        "state relation is inserted and deleted under overlapping conditions",
    ),
    (E0501, Severity::Error, "property references an undeclared relation"),
    (E0502, Severity::Error, "relation arity mismatch in property"),
    (E0503, Severity::Error, "property references an unknown page"),
    (W0504, Severity::Warning, "property component is not input-bounded"),
    (W0601, Severity::Warning, "rule guard is statically unsatisfiable"),
    (W0602, Severity::Warning, "relation has writers but can never hold a tuple"),
    (W0603, Severity::Warning, "page is only reachable through refuted target edges"),
    (N0604, Severity::Note, "state relation is monotone (inserted but never deleted)"),
];

/// Default severity of a registered code.
pub fn code_severity(code: &str) -> Option<Severity> {
    CODES.iter().find(|(c, _, _)| *c == code).map(|&(_, s, _)| s)
}

/// Short human description of a registered code.
pub fn code_description(code: &str) -> Option<&'static str> {
    CODES.iter().find(|(c, _, _)| *c == code).map(|&(_, _, d)| d)
}

/// Long-form explanations for `wave lint --explain CODE`: what the
/// finding means, why it matters, and how to address it. Every code in
/// [`CODES`] has an entry (enforced by test).
pub const EXPLANATIONS: &[(&str, &str)] = &[
    (
        E0001,
        "The spec or property text could not be parsed. The message carries the \
         parser's position and expectation; nothing else can be checked until the \
         syntax error is fixed.",
    ),
    (
        E0002,
        "The spec parsed but violates a structural rule: a duplicate relation or \
         page, a missing home page, a rule referencing an undeclared relation, an \
         arity mismatch, or an unbound head variable. Semantic passes only run on \
         structurally valid specs, so fix these first.",
    ),
    (
        W0101,
        "The rule body quantifies over variables that are not bounded by input \
         atoms, so the check falls outside the input-bounded fragment the paper's \
         decidability results (Theorems 3.3/3.8) cover. The verifier still runs \
         but reports the check as incomplete: a clean search is evidence, not \
         proof. Rewrite the body so every quantified variable appears in a \
         positive input atom, or accept the incomplete verdict. Note the spec is \
         not input-bounded as written — a future `--mode recency=K` bounded-recency \
         search could still explore this spec exhaustively up to depth K.",
    ),
    (
        W0102,
        "Option rules must draw their tuples from the database under the \
         option-rule fragment (§3.2): this body reads state, action, or input \
         relations in a way that breaks the fragment's pruning argument. Move the \
         dependency into the guard of the rule that consumes the option.",
    ),
    (
        W0201,
        "No chain of target-rule transitions from the home page ever displays \
         this page, so its rules can never fire. Either add a target edge leading \
         here or delete the page.",
    ),
    (
        W0202,
        "The target rule's condition simplifies to false (contradictory \
         comparisons), so the transition can never be taken. The page graph \
         ignores the edge; if the page it points to has no other incoming edge it \
         is reported unreachable too.",
    ),
    (
        W0301,
        "The relation is written by rules, but no rule body or supplied property \
         reads it, so its contents cannot influence any run or verdict. Delete \
         the write rules or the declaration — or add the property that was meant \
         to observe it. Only reported when properties are supplied (without them \
         any state or action relation is a potential observable).",
    ),
    (
        W0302,
        "The relation is read by rule bodies but has no insert rule, so it is \
         empty in every run and every read of it is vacuous. Add the missing \
         insert rule or drop the reads.",
    ),
    (
        W0303,
        "The input is declared but no rule or property references it. Dead \
         inputs still enlarge the verifier's search space (each must be \
         enumerated per configuration), so deleting it speeds up verification.",
    ),
    (
        W0304,
        "The rule body simplifies to false by constant comparison alone \
         (e.g. `x = \"a\" & x = \"b\"`), so the rule never fires. Delete it or fix \
         the contradictory guard.",
    ),
    (
        W0305,
        "The action relation is declared but no action rule emits it, so \
         properties observing it test an always-empty relation. Add the emitting \
         rule or drop the declaration.",
    ),
    (
        W0306,
        "The relation is declared but nothing reads or writes it. It is inert \
         clutter — delete the declaration. Only reported when properties are \
         supplied.",
    ),
    (
        W0401,
        "An insert rule and a delete rule target the same state relation on the \
         same page under guards that are not provably disjoint. When both fire on \
         the same tuple in the same step, the paper's semantics makes the net \
         effect a no-op, which is rarely what was meant. Make the guards disjoint \
         (e.g. key them on different button values) or merge the rules.",
    ),
    (
        E0501,
        "The property references a relation the spec does not declare. \
         Properties can only observe the spec's database, state, action, and \
         input relations.",
    ),
    (
        E0502,
        "The property uses a declared relation with the wrong number of \
         arguments. Match the declaration's arity.",
    ),
    (E0503, "The property's `@Page` atom names a page the spec does not define."),
    (
        W0504,
        "One of the property's FO components is not input-bounded, so the \
         combined check leaves the decidable fragment and the verifier reports \
         it as incomplete. Bound every quantified variable by a positive input \
         atom inside the component.",
    ),
    (
        W0601,
        "The fixpoint dataflow analysis proved the rule's guard unsatisfiable: \
         on every reachable configuration of every run, some conjunct is false. \
         Unlike W0304 this is not visible in the rule body alone — the notes \
         carry the provenance chain (which relation stays empty, or which \
         option rule pins the value set that refutes a comparison). The \
         verifier's slice skips such rules; fix the guard or delete the rule.",
    ),
    (
        W0602,
        "The relation has insert (or emit) rules, but the dataflow fixpoint \
         proved every one of them dead or unreachable, so the relation can \
         never hold a tuple. Reads of it never hold and negated reads always \
         hold. The note names the refuted writers; revive one of them or drop \
         the relation. (A relation with no writers at all is W0302/W0305.)",
    ),
    (
        W0603,
        "Every target edge into this page is statically refuted by the dataflow \
         analysis, so no run ever displays it — even though the syntactic page \
         graph (W0201) considers it reachable. The notes explain why each \
         incoming edge cannot fire.",
    ),
    (
        N0604,
        "The state relation is inserted but never deleted (no delete rule, or \
         only statically dead ones), so it grows monotonically along every run. \
         The verifier exploits this automatically: pages without live delete \
         rules skip the insert/delete conflict machinery, and memo epochs over \
         the relation stabilize. This note is informational — monotone state is \
         often exactly what was intended (e.g. an audit log).",
    ),
];

/// Long-form explanation of a registered code (`wave lint --explain`).
pub fn code_explanation(code: &str) -> Option<&'static str> {
    EXPLANATIONS.iter().find(|(c, _)| *c == code).map(|&(_, e)| e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        for (i, (c, sev, desc)) in CODES.iter().enumerate() {
            assert_eq!(c.len(), 5, "{c}");
            let class = c.as_bytes()[0];
            assert!(class == b'E' || class == b'W' || class == b'N', "{c}");
            // the letter agrees with the default severity
            let expect = match class {
                b'E' => Severity::Error,
                b'W' => Severity::Warning,
                _ => Severity::Note,
            };
            assert_eq!(*sev, expect, "{c}");
            assert!(!desc.is_empty());
            assert!(!CODES[..i].iter().any(|(d, _, _)| d == c), "duplicate {c}");
        }
    }

    #[test]
    fn every_code_has_an_explanation() {
        for (c, _, _) in CODES {
            let e = code_explanation(c).unwrap_or_else(|| panic!("no explanation for {c}"));
            assert!(e.len() > 40, "{c}: explanation too short");
        }
        // and no orphan explanations for unregistered codes
        for (c, _) in EXPLANATIONS {
            assert!(code_severity(c).is_some(), "explanation for unregistered {c}");
        }
        assert_eq!(code_explanation("X9999"), None);
    }

    #[test]
    fn severity_lookup() {
        assert_eq!(code_severity("W0201"), Some(Severity::Warning));
        assert_eq!(code_severity("E0001"), Some(Severity::Error));
        assert_eq!(code_severity("X9999"), None);
    }

    #[test]
    fn builder_attaches_metadata() {
        let d = Diagnostic::new(W0201, "page is unreachable")
            .with_span(Span::new(3, 9))
            .in_property(2)
            .note("declared here");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.origin, Origin::Property(2));
        let s = d.span.unwrap();
        assert_eq!((s.start, s.end), (3, 9));
        assert_eq!(d.notes.len(), 1);
    }

    #[test]
    fn dummy_spans_are_dropped() {
        let d = Diagnostic::new(W0301, "m").with_span(Span::DUMMY);
        assert!(d.span.is_none());
    }
}
