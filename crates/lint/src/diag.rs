//! The diagnostic model: stable codes, severities, and resolved records.
//!
//! Every finding the linter produces is a [`Diagnostic`] carrying a stable
//! code (`E####` for errors, `W####` for warnings), a severity, a message,
//! an optional source [`Span`] into the artifact it was found in, and
//! free-form notes. Codes are stable across releases so CI configurations
//! (`--allow CODE`, SARIF rule ids) do not rot.

use std::fmt;
use wave_fol::Span;

/// Diagnostic severity. `Error` findings make `wave lint` exit non-zero;
/// `Warning` findings do so only under `--deny warnings`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which artifact a diagnostic points into: the spec source or the `i`-th
/// property text handed to the linter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    Spec,
    Property(usize),
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code, e.g. `"W0201"`. Always one of [`CODES`].
    pub code: &'static str,
    /// Default severity (may be promoted by `--deny warnings`).
    pub severity: Severity,
    pub message: String,
    pub origin: Origin,
    /// Byte extent into the origin's source text, when known.
    pub span: Option<Span>,
    /// Secondary remarks rendered under the primary message.
    pub notes: Vec<String>,
}

impl Diagnostic {
    pub fn new(code: &'static str, message: impl Into<String>) -> Diagnostic {
        let severity = code_severity(code).expect("diagnostic code must be registered");
        Diagnostic {
            code,
            severity,
            message: message.into(),
            origin: Origin::Spec,
            span: None,
            notes: Vec::new(),
        }
    }

    pub fn with_span(mut self, span: Span) -> Diagnostic {
        if !span.is_dummy() {
            self.span = Some(span);
        }
        self
    }

    pub fn in_property(mut self, index: usize) -> Diagnostic {
        self.origin = Origin::Property(index);
        self
    }

    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

// Stable diagnostic codes, grouped by pass family:
//   E00xx  syntax / structural validity
//   W01xx  decidable-fragment (input-boundedness) findings
//   W02xx  page-graph reachability
//   W03xx  dead code
//   W04xx  rule conflicts
//   E/W05xx  spec ↔ property cross-checks

pub const E0001: &str = "E0001"; // syntax error
pub const E0002: &str = "E0002"; // invalid specification structure
pub const W0101: &str = "W0101"; // rule body not input-bounded
pub const W0102: &str = "W0102"; // option rule outside the option-rule fragment
pub const W0201: &str = "W0201"; // page unreachable from home
pub const W0202: &str = "W0202"; // target rule condition can never hold
pub const W0301: &str = "W0301"; // state relation written but never read
pub const W0302: &str = "W0302"; // state relation read but never written
pub const W0303: &str = "W0303"; // input declared but never used
pub const W0304: &str = "W0304"; // rule body trivially false
pub const W0305: &str = "W0305"; // action relation never emitted
pub const W0306: &str = "W0306"; // relation declared but never used
pub const W0401: &str = "W0401"; // insert/delete conflict on a state relation
pub const E0501: &str = "E0501"; // property references undeclared relation
pub const E0502: &str = "E0502"; // relation arity mismatch in property
pub const E0503: &str = "E0503"; // property references unknown page
pub const W0504: &str = "W0504"; // property component not input-bounded

/// The full code registry: `(code, default severity, short description)`.
/// Drives `--allow` validation, the SARIF rule table, and the docs.
pub const CODES: &[(&str, Severity, &str)] = &[
    (E0001, Severity::Error, "syntax error"),
    (E0002, Severity::Error, "invalid specification structure"),
    (W0101, Severity::Warning, "rule body is not input-bounded"),
    (W0102, Severity::Warning, "option rule outside the option-rule fragment"),
    (W0201, Severity::Warning, "page is unreachable from the home page"),
    (W0202, Severity::Warning, "target rule condition can never hold"),
    (W0301, Severity::Warning, "state relation is written but never read"),
    (W0302, Severity::Warning, "state relation is read but never written"),
    (W0303, Severity::Warning, "input is declared but never used"),
    (W0304, Severity::Warning, "rule body is trivially false"),
    (W0305, Severity::Warning, "action relation is never emitted by any rule"),
    (W0306, Severity::Warning, "relation is declared but never used"),
    (
        W0401,
        Severity::Warning,
        "state relation is inserted and deleted under overlapping conditions",
    ),
    (E0501, Severity::Error, "property references an undeclared relation"),
    (E0502, Severity::Error, "relation arity mismatch in property"),
    (E0503, Severity::Error, "property references an unknown page"),
    (W0504, Severity::Warning, "property component is not input-bounded"),
];

/// Default severity of a registered code.
pub fn code_severity(code: &str) -> Option<Severity> {
    CODES.iter().find(|(c, _, _)| *c == code).map(|&(_, s, _)| s)
}

/// Short human description of a registered code.
pub fn code_description(code: &str) -> Option<&'static str> {
    CODES.iter().find(|(c, _, _)| *c == code).map(|&(_, _, d)| d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        for (i, (c, sev, desc)) in CODES.iter().enumerate() {
            assert_eq!(c.len(), 5, "{c}");
            let class = c.as_bytes()[0];
            assert!(class == b'E' || class == b'W', "{c}");
            // the letter agrees with the default severity
            assert_eq!(*sev == Severity::Error, class == b'E', "{c}");
            assert!(!desc.is_empty());
            assert!(!CODES[..i].iter().any(|(d, _, _)| d == c), "duplicate {c}");
        }
    }

    #[test]
    fn severity_lookup() {
        assert_eq!(code_severity("W0201"), Some(Severity::Warning));
        assert_eq!(code_severity("E0001"), Some(Severity::Error));
        assert_eq!(code_severity("X9999"), None);
    }

    #[test]
    fn builder_attaches_metadata() {
        let d = Diagnostic::new(W0201, "page is unreachable")
            .with_span(Span::new(3, 9))
            .in_property(2)
            .note("declared here");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.origin, Origin::Property(2));
        let s = d.span.unwrap();
        assert_eq!((s.start, s.end), (3, 9));
        assert_eq!(d.notes.len(), 1);
    }

    #[test]
    fn dummy_spans_are_dropped() {
        let d = Diagnostic::new(W0301, "m").with_span(Span::DUMMY);
        assert!(d.span.is_none());
    }
}
