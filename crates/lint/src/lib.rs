//! `wave-lint`: static analysis for wave specifications and properties.
//!
//! Runs a pipeline of analysis passes over a spec (and optionally the
//! LTL-FO properties to be verified against it) and produces a unified
//! stream of [`Diagnostic`]s with stable codes, severities, notes, and
//! source spans. Three renderers share the same resolved positions:
//! human-readable text with caret underlines ([`render::render_text`]),
//! machine-readable JSON ([`render::render_json`]), and SARIF 2.1.0 for
//! CI ingestion ([`sarif::render_sarif`]).
//!
//! Pass families (see [`passes`]):
//! 1. decidable-fragment checks (input-boundedness, option-rule fragment),
//! 2. page-graph reachability from the home page,
//! 3. dead-code analysis,
//! 4. insert/delete conflict detection,
//! 5. spec ↔ property cross-checks,
//! 6. fixpoint dataflow findings (guard-unsat rules, always-empty
//!    relations, flow-unreachable pages, monotone state — via
//!    [`wave_flow`]).

use std::collections::BTreeSet;

pub mod diag;
pub mod passes;
pub mod render;
pub mod sarif;
pub mod simplify;

pub use diag::{
    code_description, code_explanation, code_severity, Diagnostic, Origin, Severity, CODES,
    EXPLANATIONS,
};
pub use passes::ParsedProperty;
pub use render::{render_json, render_text, summary, SourceSet};
pub use sarif::render_sarif;

use diag::{E0001, E0002};
use wave_fol::{ParseError, Span};
use wave_spec::{Spec, SpecError};

/// One property source handed to the linter alongside the spec.
#[derive(Clone, Debug)]
pub struct PropertySource {
    /// Display name used in diagnostics (a file path, or e.g. `property#1`
    /// for inline text).
    pub label: String,
    pub text: String,
}

/// Everything the linter needs: the spec source plus any properties.
#[derive(Clone, Debug)]
pub struct LintRequest {
    /// Display name of the spec artifact (usually its file path).
    pub spec_path: String,
    pub spec_src: String,
    pub properties: Vec<PropertySource>,
}

impl LintRequest {
    /// A request with no properties.
    pub fn spec_only(path: impl Into<String>, src: impl Into<String>) -> LintRequest {
        LintRequest { spec_path: path.into(), spec_src: src.into(), properties: Vec::new() }
    }
}

/// Lint a request end to end: parse, validate, run every pass. Diagnostics
/// come back sorted by artifact and source position. Parse and validation
/// failures are themselves diagnostics ([`diag::E0001`], [`diag::E0002`]);
/// the semantic passes run only on a structurally valid spec.
pub fn lint(req: &LintRequest) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut parsed_props = Vec::new();
    for (i, p) in req.properties.iter().enumerate() {
        match wave_ltl::parse_property(&p.text) {
            Ok(mut prop) => {
                prop.body = prop.body.group_fo();
                parsed_props.push(ParsedProperty { index: i, property: prop });
            }
            Err(e) => out.push(parse_error_diag(&e).in_property(i)),
        }
    }

    match wave_spec::parse_spec(&req.spec_src) {
        Err(e) => out.push(parse_error_diag(&e)),
        Ok(spec) => match spec.validate() {
            Err(errs) => {
                for e in errs {
                    let mut d = Diagnostic::new(E0002, e.to_string());
                    if let Some(span) = spec_error_span(&spec, &e) {
                        d = d.with_span(span);
                    }
                    out.push(d);
                }
            }
            Ok(()) => passes::run_all(&spec, &parsed_props, &mut out),
        },
    }

    sort_diagnostics(&mut out);
    out
}

/// Lint an already parsed *and validated* spec (plus grouped properties).
/// Used by front-ends that have the spec in hand anyway (`wave check`, the
/// verification service); skips the E0001/E0002 stages.
pub fn lint_spec(spec: &Spec, props: &[ParsedProperty]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    passes::run_all(spec, props, &mut out);
    sort_diagnostics(&mut out);
    out
}

fn parse_error_diag(e: &ParseError) -> Diagnostic {
    Diagnostic::new(E0001, e.message.clone()).with_span(Span::point(e.pos))
}

/// Best source anchor for a structural validation error.
fn spec_error_span(spec: &Spec, e: &SpecError) -> Option<Span> {
    let page_span = |name: &str| spec.page(name).map(|p| p.span);
    match e {
        SpecError::DuplicateRelation(n) => spec.decl_span(n),
        SpecError::DuplicatePage(n) => {
            spec.pages.iter().rev().find(|p| p.name == *n).map(|p| p.span)
        }
        SpecError::MissingHomePage(_) => Some(spec.home_span),
        SpecError::UnknownTarget { page, target } => spec
            .page(page)
            .and_then(|p| p.target_rules.iter().find(|r| r.target == *target))
            .map(|r| r.span)
            .or_else(|| page_span(page)),
        SpecError::OptionForNonInput { page, input }
        | SpecError::OptionForConstant { page, input } => spec
            .page(page)
            .and_then(|p| p.option_rules.iter().find(|r| r.input == *input))
            .map(|r| r.span)
            .or_else(|| page_span(page)),
        SpecError::OpenTargetCondition { page, target, .. } => spec
            .page(page)
            .and_then(|p| p.target_rules.iter().find(|r| r.target == *target))
            .map(|r| r.span)
            .or_else(|| page_span(page)),
        SpecError::UnknownRelation { page, .. }
        | SpecError::UnknownInput { page, .. }
        | SpecError::ArityMismatch { page, .. }
        | SpecError::UnboundHeadVar { page, .. }
        | SpecError::StrayFreeVar { page, .. }
        | SpecError::WrongRuleKind { page, .. }
        | SpecError::PrevOnNonInput { page, .. }
        | SpecError::UnknownPageRef { page, .. } => page_span(page),
    }
    .filter(|s| !s.is_dummy())
}

fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (d.origin, d.span.map_or(usize::MAX, |s| s.start), d.code, d.message.clone())
        };
        key(a).cmp(&key(b))
    });
}

/// Severity policy applied after linting: `--allow CODE` drops warnings by
/// code, `--deny warnings` promotes the survivors to errors.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    pub deny_warnings: bool,
    pub allow: BTreeSet<String>,
}

impl LintConfig {
    /// Apply the policy. Warning- and note-class codes can be allowed
    /// away; errors always survive. `--deny warnings` promotes only
    /// warnings — notes are informational and never fail a run.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| {
                !(code_severity(d.code) != Some(Severity::Error) && self.allow.contains(d.code))
            })
            .map(|mut d| {
                if self.deny_warnings && d.severity == Severity::Warning {
                    d.severity = Severity::Error;
                }
                d
            })
            .collect()
    }
}

/// True when any diagnostic is error-severity (after policy application).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
        spec s {
          database { user(name, passwd); }
          state { logged(u); }
          action { greet(u); }
          inputs { button(x); constant uname; constant pass; }
          home HP;
          page HP {
            inputs { button, uname, pass }
            options button(x) <- x = "login";
            insert logged(u) <- uname(u) & (exists p: pass(p) & user(u, p))
                                & button("login");
            target CP <- button("login");
          }
          page CP {
            inputs { button }
            options button(x) <- x = "logout";
            action greet(u) <- logged(u) & button("logout");
            target HP <- button("logout");
          }
        }
    "#;

    #[test]
    fn clean_spec_yields_no_diagnostics() {
        let diags = lint(&LintRequest::spec_only("s.wave", GOOD));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn clean_spec_with_property_yields_no_warnings() {
        let mut req = LintRequest::spec_only("s.wave", GOOD);
        req.properties.push(PropertySource {
            label: "p1".into(),
            text: "forall u: G (greet(u) -> logged(u))".into(),
        });
        let diags = lint(&req);
        // `logged` is genuinely monotone, so the informational N0604
        // note fires — but nothing of warning severity or above
        assert!(diags.iter().all(|d| d.severity == Severity::Note), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "N0604"), "{diags:?}");
    }

    #[test]
    fn parse_error_is_e0001_with_position() {
        let diags = lint(&LintRequest::spec_only("s.wave", "spec s {\n  home\n}"));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E0001");
        assert!(diags[0].span.is_some());
    }

    #[test]
    fn invalid_spec_is_e0002_and_skips_semantic_passes() {
        // home page missing: E0002 only, no reachability cascade
        let src = GOOD.replace("home HP;", "home NOPE;");
        let diags = lint(&LintRequest::spec_only("s.wave", src));
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == "E0002"), "{diags:?}");
    }

    #[test]
    fn property_parse_error_is_e0001_on_the_property() {
        let mut req = LintRequest::spec_only("s.wave", GOOD);
        req.properties.push(PropertySource { label: "p1".into(), text: "G (".into() });
        let diags = lint(&req);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E0001");
        assert_eq!(diags[0].origin, Origin::Property(0));
    }

    #[test]
    fn unreachable_page_and_never_firing_target_are_found() {
        let src = GOOD.replace(
            "page CP {",
            r#"page GHOST {
            inputs { button }
            options button(x) <- x = "go";
            target HP <- button("go") & "a" = "b";
          }
          page CP {"#,
        );
        let diags = lint(&LintRequest::spec_only("s.wave", src));
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"W0201"), "{diags:?}");
        assert!(codes.contains(&"W0202"), "{diags:?}");
    }

    #[test]
    fn dead_state_needs_property_context() {
        let src = GOOD.replace("state { logged(u); }", "state { logged(u); scratch(x); }").replace(
            "target CP <- button(\"login\");",
            "insert scratch(u) <- uname(u) & button(\"login\");\n            target CP <- button(\"login\");",
        );
        // without properties: silent (scratch could be a property observable)
        let diags = lint(&LintRequest::spec_only("s.wave", src.clone()));
        assert!(diags.is_empty(), "{diags:?}");
        // with a property that does not read it: W0301 (plus monotone
        // notes, which are not warnings)
        let mut req = LintRequest::spec_only("s.wave", src);
        req.properties.push(PropertySource {
            label: "p1".into(),
            text: "forall u: G (greet(u) -> logged(u))".into(),
        });
        let diags: Vec<_> =
            lint(&req).into_iter().filter(|d| d.severity > Severity::Note).collect();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "W0301");
        assert!(diags[0].span.is_some(), "anchored at the declaration");
    }

    #[test]
    fn always_empty_state_reported_without_properties() {
        let src = GOOD.replace(
            "action greet(u) <- logged(u) & button(\"logout\");",
            "action greet(u) <- phantom(u) & button(\"logout\");",
        );
        let src = src.replace("state { logged(u); }", "state { logged(u); phantom(x); }");
        let diags = lint(&LintRequest::spec_only("s.wave", src));
        assert!(diags.iter().any(|d| d.code == "W0302"), "{diags:?}");
    }

    #[test]
    fn insert_delete_conflict_detected_and_disjointness_respected() {
        // same page, same state, same guard: conflict
        let src = GOOD.replace(
            "target CP <- button(\"login\");",
            "delete logged(u) <- logged(u) & uname(u) & button(\"login\");\n            target CP <- button(\"login\");",
        );
        let diags = lint(&LintRequest::spec_only("s.wave", src));
        assert!(diags.iter().any(|d| d.code == "W0401"), "{diags:?}");

        // distinct button guards: provably disjoint, no warning
        let src2 = GOOD
            .replace(
                "options button(x) <- x = \"login\";",
                "options button(x) <- x = \"login\" | x = \"clear\";",
            )
            .replace(
                "target CP <- button(\"login\");",
                "delete logged(u) <- logged(u) & uname(u) & button(\"clear\");\n            target CP <- button(\"login\");",
            );
        let diags = lint(&LintRequest::spec_only("s.wave", src2));
        assert!(diags.iter().all(|d| d.code != "W0401"), "{diags:?}");
    }

    #[test]
    fn property_cross_checks_fire() {
        let mut req = LintRequest::spec_only("s.wave", GOOD);
        req.properties.push(PropertySource {
            label: "p1".into(),
            text: "G (ghost(u) -> F (user(u) & @NOPAGE))".into(),
        });
        let diags = lint(&req);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E0501"), "{diags:?}"); // ghost undeclared
        assert!(codes.contains(&"E0502"), "{diags:?}"); // user/1 vs user/2
        assert!(codes.contains(&"E0503"), "{diags:?}"); // @NOPAGE
    }

    #[test]
    fn non_input_bounded_property_component_warns() {
        let mut req = LintRequest::spec_only("s.wave", GOOD);
        req.properties.push(PropertySource {
            label: "p1".into(),
            text: r#"G (forall u, p: user(u, p) -> logged(u))"#.into(),
        });
        let diags = lint(&req);
        assert!(diags.iter().any(|d| d.code == "W0504"), "{diags:?}");
    }

    #[test]
    fn non_input_bounded_rule_warns_with_span() {
        let src = GOOD.replace(
            "target CP <- button(\"login\");",
            "target CP <- forall u, p: user(u, p) -> logged(u);",
        );
        let diags = lint(&LintRequest::spec_only("s.wave", src.clone()));
        let d = diags.iter().find(|d| d.code == "W0101").expect("W0101 expected");
        let span = d.span.expect("span expected");
        assert!(
            src[span.start..span.end].starts_with("target CP"),
            "{:?}",
            &src[span.start..span.end]
        );
    }

    #[test]
    fn config_allows_and_denies() {
        let src = GOOD.replace(
            "target CP <- button(\"login\");",
            "target CP <- forall u, p: user(u, p) -> logged(u);",
        );
        let diags = lint(&LintRequest::spec_only("s.wave", src));
        assert!(!has_errors(&diags));

        let cfg = LintConfig { deny_warnings: true, ..LintConfig::default() };
        let denied = cfg.apply(diags.clone());
        assert!(has_errors(&denied));

        let cfg = LintConfig {
            allow: std::iter::once("W0101".to_string()).collect(),
            ..LintConfig::default()
        };
        let allowed = cfg.apply(diags);
        assert!(allowed.iter().all(|d| d.code != "W0101"));
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let src = GOOD
            .replace("state { logged(u); }", "state { logged(u); void1(x); void2(x); }")
            .replace(
                "target CP <- button(\"login\");",
                "insert void2(u) <- uname(u) & button(\"login\");\n            insert void1(u) <- uname(u) & button(\"login\");\n            target CP <- button(\"login\");",
            );
        let mut req = LintRequest::spec_only("s.wave", src);
        req.properties.push(PropertySource {
            label: "p".into(),
            text: "forall u: G (greet(u) -> logged(u))".into(),
        });
        let diags = lint(&req);
        let starts: Vec<usize> = diags.iter().filter_map(|d| d.span.map(|s| s.start)).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        let warnings: Vec<_> = diags.iter().filter(|d| d.severity > Severity::Note).collect();
        assert_eq!(warnings.len(), 2, "{warnings:?}"); // void1 + void2, decl order
    }
}
