//! Conservative three-valued constant analysis of FO formulas.
//!
//! Decides, without touching any instance, whether a formula is *trivially*
//! true or false: constant/constant (dis)equalities, boolean structure,
//! and contradictions inside one conjunction (`x = "a" & x = "b"`, an atom
//! conjoined with its own negation). Everything else is `Unknown` — the
//! analysis never claims falsity for a formula that could hold, so lint
//! findings built on it ([`crate::diag::W0202`], [`crate::diag::W0304`])
//! have no false positives.

use std::collections::HashMap;
use wave_fol::{Formula, Term};

/// Three-valued verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tri {
    True,
    False,
    Unknown,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

/// Constant truth value of `f`, if decidable by inspection.
pub fn truth(f: &Formula) -> Tri {
    match f {
        Formula::True => Tri::True,
        Formula::False => Tri::False,
        Formula::Eq(Term::Const(a), Term::Const(b)) => {
            if a == b {
                Tri::True
            } else {
                Tri::False
            }
        }
        Formula::Eq(a, b) if a == b => Tri::True,
        Formula::Ne(Term::Const(a), Term::Const(b)) => {
            if a == b {
                Tri::False
            } else {
                Tri::True
            }
        }
        Formula::Ne(a, b) if a == b => Tri::False,
        Formula::Not(x) => truth(x).not(),
        Formula::And(_) => {
            let mut parts = Vec::new();
            flatten_and(f, &mut parts);
            conjunction_truth(&parts)
        }
        Formula::Or(xs) => {
            let mut all_false = true;
            for x in xs {
                match truth(x) {
                    Tri::True => return Tri::True,
                    Tri::False => {}
                    Tri::Unknown => all_false = false,
                }
            }
            if all_false {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Formula::Implies(a, b) => match (truth(a), truth(b)) {
            (Tri::False, _) | (_, Tri::True) => Tri::True,
            (Tri::True, tb) => tb,
            (ta, Tri::False) => ta.not(),
            _ => Tri::Unknown,
        },
        // Quantification ranges over the active domain, which may be
        // empty, so a decided body only propagates in one direction:
        // `exists x: false` is false, `forall x: true` is true.
        Formula::Exists(_, body) => {
            if truth(body) == Tri::False {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Formula::Forall(_, body) => {
            if truth(body) == Tri::True {
                Tri::True
            } else {
                Tri::Unknown
            }
        }
        _ => Tri::Unknown,
    }
}

fn flatten_and<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
    if let Formula::And(xs) = f {
        for x in xs {
            flatten_and(x, out);
        }
    } else {
        out.push(f);
    }
}

/// Truth of a conjunction, including cross-conjunct contradictions.
fn conjunction_truth(parts: &[&Formula]) -> Tri {
    let mut all_true = true;
    for p in parts {
        match truth(p) {
            Tri::False => return Tri::False,
            Tri::True => {}
            Tri::Unknown => all_true = false,
        }
    }
    // x = "a" conjoined with x = "b" (different constants) is false
    let mut bound: HashMap<&str, &str> = HashMap::new();
    for p in parts {
        if let Some((v, c)) = var_const_eq(p) {
            if let Some(prev) = bound.insert(v, c) {
                if prev != c {
                    return Tri::False;
                }
            }
        }
    }
    // x = "a" conjoined with x != "a" is false
    for p in parts {
        if let Formula::Ne(a, b) = p {
            let pair = match (a, b) {
                (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                    Some((v.as_str(), c.as_str()))
                }
                _ => None,
            };
            if let Some((v, c)) = pair {
                if bound.get(v) == Some(&c) {
                    return Tri::False;
                }
            }
        }
    }
    // an atom conjoined with its own negation is false
    for p in parts {
        if let Formula::Not(inner) = p {
            if matches!(**inner, Formula::Atom(_) | Formula::Page(_))
                && parts.iter().any(|q| **q == **inner)
            {
                return Tri::False;
            }
        }
    }
    if all_true {
        Tri::True
    } else {
        Tri::Unknown
    }
}

fn var_const_eq(f: &Formula) -> Option<(&str, &str)> {
    match f {
        Formula::Eq(Term::Var(v), Term::Const(c)) | Formula::Eq(Term::Const(c), Term::Var(v)) => {
            Some((v.as_str(), c.as_str()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_fol::parse_formula;

    fn t(src: &str) -> Tri {
        truth(&parse_formula(src).unwrap())
    }

    #[test]
    fn constant_comparisons_decide() {
        assert_eq!(t(r#""a" = "a""#), Tri::True);
        assert_eq!(t(r#""a" = "b""#), Tri::False);
        assert_eq!(t(r#""a" != "b""#), Tri::True);
        assert_eq!(t("x = x"), Tri::True);
        assert_eq!(t("x != x"), Tri::False);
    }

    #[test]
    fn atoms_are_unknown() {
        assert_eq!(t("r(x)"), Tri::Unknown);
        assert_eq!(t("!r(x)"), Tri::Unknown);
    }

    #[test]
    fn boolean_structure_propagates() {
        assert_eq!(t(r#"r(x) & "a" = "b""#), Tri::False);
        assert_eq!(t(r#"r(x) | "a" = "a""#), Tri::True);
        assert_eq!(t(r#""a" = "b" -> r(x)"#), Tri::True);
        assert_eq!(t(r#"r(x) -> "a" = "a""#), Tri::True);
    }

    #[test]
    fn conflicting_bindings_in_a_conjunction_are_false() {
        assert_eq!(t(r#"x = "a" & x = "b""#), Tri::False);
        assert_eq!(t(r#"x = "a" & r(x) & x = "b""#), Tri::False);
        assert_eq!(t(r#"x = "a" & x = "a""#), Tri::Unknown); // consistent, not decided
        assert_eq!(t(r#"x = "a" & x != "a""#), Tri::False);
    }

    #[test]
    fn atom_and_its_negation_are_false() {
        assert_eq!(t(r#"button("x") & !button("x")"#), Tri::False);
        assert_eq!(t(r#"button("x") & !button("y")"#), Tri::Unknown);
    }

    #[test]
    fn nested_conjunctions_are_flattened() {
        assert_eq!(t(r#"(x = "a" & r(x)) & (s(x) & x = "b")"#), Tri::False);
    }

    #[test]
    fn quantifiers_propagate_one_direction() {
        assert_eq!(t(r#"exists x: x = "a" & x = "b""#), Tri::False);
        assert_eq!(t("forall x: x = x"), Tri::True);
        // a true body does not make an exists true (domain may be empty)
        assert_eq!(t("exists x: x = x"), Tri::Unknown);
        assert_eq!(t("forall x: r(x)"), Tri::Unknown);
    }
}
