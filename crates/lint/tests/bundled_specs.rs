//! The bundled example specs (E1–E4) must lint clean: they are the
//! acceptance benchmarks of the verifier and double as the "known good"
//! corpus for the linter. Any new pass that starts flagging them is
//! either finding a real spec bug (fix the spec) or over-eager (fix the
//! pass) — both should be decided consciously, not silently.

use std::fs;
use std::path::PathBuf;

use wave_lint::{lint, render_text, LintRequest};

fn spec_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../apps/specs")
}

#[test]
fn bundled_specs_lint_clean() {
    let mut checked = 0;
    for entry in fs::read_dir(spec_dir()).expect("bundled spec dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("wave") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable spec");
        let req = LintRequest::spec_only(path.display().to_string(), src);
        let diags = lint(&req);
        assert!(
            diags.is_empty(),
            "expected {} to lint clean, got:\n{}",
            path.display(),
            render_text(&req, &diags)
        );
        checked += 1;
    }
    assert_eq!(checked, 4, "expected the four example specs");
}
