//! Robustness: `wave_lint::lint` must never panic on any input the spec
//! parser accepts — malformed logic becomes diagnostics, not crashes.
//! Rule bodies are drawn from a random formula grammar (including
//! unsatisfiable, vacuous, non-input-bounded, and ill-scoped shapes), and
//! each spec is linted both bare and against properties that range from
//! well-formed to deliberately mismatched.

use proptest::prelude::*;
use wave_lint::{lint, LintRequest, PropertySource};
use wave_spec::parse_spec;

const CONSTS: [&str; 3] = ["\"a\"", "\"b\"", "\"c\""];
const TARGETS: [&str; 3] = ["P0", "P1", "P2"];

fn term() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        (0usize..3).prop_map(|i| CONSTS[i].to_string()),
    ]
}

/// One atom over the fixed schema — sometimes at the wrong arity or over
/// an undeclared name, which the parser accepts and lint must survive.
fn atom() -> impl Strategy<Value = String> {
    prop_oneof![
        (term(), term()).prop_map(|(a, b)| format!("d0({a}, {b})")),
        term().prop_map(|a| format!("s0({a})")),
        term().prop_map(|a| format!("prev s0({a})")),
        (term(), term()).prop_map(|(a, b)| format!("s1({a}, {b})")),
        term().prop_map(|a| format!("b({a})")),
        term().prop_map(|a| format!("s0({a}, {a})")), // wrong arity
        term().prop_map(|a| format!("ghost({a})")),   // undeclared
        Just("@P1".to_string()),
        Just("@NOWHERE".to_string()), // unknown page
    ]
}

/// Random formula in DSL concrete syntax.
fn formula() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("true".to_string()),
        Just("false".to_string()),
        atom(),
        (term(), term()).prop_map(|(a, b)| format!("{a} = {b}")),
        (term(), term()).prop_map(|(a, b)| format!("{a} != {b}")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} & {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} | {b})")),
            inner.clone().prop_map(|a| format!("!({a})")),
            inner.clone().prop_map(|a| format!("(exists x: {a})")),
            inner.clone().prop_map(|a| format!("(forall y: {a})")),
        ]
    })
}

/// A whole spec: fixed declarations, random rule bodies on the home page,
/// a random target edge, and two more pages so reachability and conflict
/// analysis have something to chew on.
fn spec_src() -> impl Strategy<Value = String> {
    (formula(), formula(), formula(), formula(), 0usize..3).prop_map(
        |(opt, ins, act, tgt, which)| {
            format!(
                "spec fuzz {{\n\
                   database {{ d0(a, b); }}\n\
                   state {{ s0(x); s1(x, y); }}\n\
                   action {{ act(x); }}\n\
                   inputs {{ b(x); constant c0; }}\n\
                   home P0;\n\
                   page P0 {{\n\
                     inputs {{ b }}\n\
                     options b(x) <- {opt};\n\
                     insert s0(x) <- {ins};\n\
                     action act(x) <- {act};\n\
                     target {} <- {tgt};\n\
                     target P2 <- b(\"a\");\n\
                   }}\n\
                   page P1 {{ insert s1(x, y) <- d0(x, y); target P0 <- true; }}\n\
                   page P2 {{ delete s0(x) <- prev s0(x); target P0 <- true; }}\n\
                 }}",
                TARGETS[which]
            )
        },
    )
}

fn property() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("G @P0".to_string()),
        Just("forall u: G (s0(u) -> F act(u))".to_string()),
        Just("F (exists x: (s1(x, x) & X @P1))".to_string()),
        Just("G (ghost(\"a\") -> F @NOWHERE)".to_string()), // undeclared/unknown
        Just("F s0(\"a\", \"b\")".to_string()),             // wrong arity
        Just("G ((".to_string()),                           // parse error
        formula().prop_map(|f| format!("G ({f})")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lint any parseable spec, bare and with properties, without panicking.
    #[test]
    fn lint_never_panics(src in spec_src(), prop_a in property(), prop_b in property()) {
        // the grammar is closed under the DSL, so everything must parse —
        // a parse failure here is a generator bug, not a lint finding
        parse_spec(&src).expect("generated spec parses");

        let bare = LintRequest::spec_only("fuzz.wave", src.clone());
        let _ = lint(&bare);

        let req = LintRequest {
            spec_path: "fuzz.wave".to_string(),
            spec_src: src,
            properties: vec![
                PropertySource { label: "p0".to_string(), text: prop_a },
                PropertySource { label: "p1".to_string(), text: prop_b },
            ],
        };
        let _ = lint(&req);
    }
}
