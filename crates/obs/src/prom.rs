//! Prometheus text exposition for a [`MetricsRegistry`], plus a tiny
//! hand-rolled HTTP listener serving it on `GET /metrics`.
//!
//! The renderer emits the version-0.0.4 text format: `# HELP` /
//! `# TYPE` headers, plain samples for counters and gauges, and
//! cumulative `_bucket{le="..."}` / `_sum` / `_count` series for
//! histograms. To keep scrapes small, empty histogram buckets are
//! elided except the mandatory `+Inf` bucket.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::metrics::{bucket_bound, MetricKind, MetricsRegistry};

/// Render the registry's current state as Prometheus text exposition.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for snap in registry.snapshot() {
        let ty = match snap.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        if !snap.help.is_empty() {
            out.push_str(&format!("# HELP {} {}\n", snap.name, snap.help));
        }
        out.push_str(&format!("# TYPE {} {}\n", snap.name, ty));
        match snap.kind {
            MetricKind::Counter => {
                out.push_str(&format!("{} {}\n", snap.name, snap.value));
            }
            MetricKind::Gauge => {
                out.push_str(&format!("{} {}\n", snap.name, snap.gauge));
            }
            MetricKind::Histogram => {
                let mut cumulative = 0u64;
                for (i, count) in snap.hist_buckets.iter().enumerate() {
                    cumulative += count;
                    match bucket_bound(i) {
                        Some(bound) => {
                            if *count > 0 {
                                out.push_str(&format!(
                                    "{}_bucket{{le=\"{bound}\"}} {cumulative}\n",
                                    snap.name
                                ));
                            }
                        }
                        None => {
                            out.push_str(&format!(
                                "{}_bucket{{le=\"+Inf\"}} {cumulative}\n",
                                snap.name
                            ));
                        }
                    }
                }
                out.push_str(&format!("{}_sum {}\n", snap.name, snap.hist_sum));
                out.push_str(&format!("{}_count {}\n", snap.name, snap.hist_count));
            }
        }
    }
    out
}

/// A minimal HTTP/1.1 server exposing `GET /metrics` for Prometheus
/// scrapes. One thread, sequential request handling — scrapes are rare
/// and tiny, so this deliberately stays ~100 lines with no parser
/// beyond the request line.
pub struct MetricsServer {
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
}

impl MetricsServer {
    /// Bind the listener. `addr` is a `host:port` string; port 0 picks
    /// a free port (see [`MetricsServer::local_addr`]).
    pub fn bind(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(MetricsServer { listener, registry })
    }

    /// The bound address (useful when binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve scrapes forever on a background thread.
    pub fn spawn(self) -> thread::JoinHandle<()> {
        thread::Builder::new()
            .name("wave-metrics".into())
            .spawn(move || self.serve())
            .expect("spawn metrics thread")
    }

    fn serve(self) {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            // A slow or stuck scraper must not wedge the metrics port.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            let _ = handle_scrape(stream, &self.registry);
        }
    }
}

fn handle_scrape(stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line so keep-alive clients see a
    // well-formed exchange; we always close after one response.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method == "GET" && (path == "/metrics" || path == "/") {
        let body = render_prometheus(registry);
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found\n";
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn sample_registry() -> Arc<MetricsRegistry> {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("wave_requests_total", "Requests handled").add(5);
        reg.gauge("wave_inflight", "In-flight checks").set(-2);
        let h = reg.histogram("wave_latency_ns", "Check latency");
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(u64::MAX);
        reg
    }

    /// A tiny scrape-format parser: validates HELP/TYPE lines and
    /// sample lines, returning (name-with-labels, value) pairs.
    fn parse_exposition(text: &str) -> Vec<(String, f64)> {
        let mut samples = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let mut words = rest.split_whitespace();
                let keyword = words.next().unwrap();
                assert!(keyword == "HELP" || keyword == "TYPE", "bad comment: {line}");
                assert!(words.next().is_some(), "missing metric name: {line}");
                continue;
            }
            let (name, value) =
                line.rsplit_once(' ').unwrap_or_else(|| panic!("bad sample: {line}"));
            let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value: {line}"));
            samples.push((name.to_string(), value));
        }
        samples
    }

    #[test]
    fn renders_parseable_exposition() {
        let reg = sample_registry();
        let text = render_prometheus(&reg);
        let samples = parse_exposition(&text);
        let get = |n: &str| {
            samples
                .iter()
                .find(|(name, _)| name == n)
                .unwrap_or_else(|| panic!("missing {n} in:\n{text}"))
                .1
        };
        assert_eq!(get("wave_requests_total"), 5.0);
        assert_eq!(get("wave_inflight"), -2.0, "gauges keep their sign");
        assert_eq!(get("wave_latency_ns_count"), 4.0);
        // Buckets are cumulative: le="0" sees the zero, le="3" adds the
        // two 3s, +Inf sees everything including u64::MAX.
        assert_eq!(get("wave_latency_ns_bucket{le=\"0\"}"), 1.0);
        assert_eq!(get("wave_latency_ns_bucket{le=\"3\"}"), 3.0);
        assert_eq!(get("wave_latency_ns_bucket{le=\"+Inf\"}"), 4.0);
        // Empty buckets are elided: no le="1" line (nothing observed at 1).
        assert!(!text.contains("le=\"1\""), "{text}");
    }

    #[test]
    fn http_listener_serves_metrics_and_404s() {
        let reg = sample_registry();
        let server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = server.local_addr().unwrap();
        server.spawn();

        let fetch = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            response
        };

        let ok = fetch("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        let body = ok.split("\r\n\r\n").nth(1).unwrap();
        assert!(!parse_exposition(body).is_empty());
        assert!(body.contains("wave_requests_total 5"), "{body}");

        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }
}
