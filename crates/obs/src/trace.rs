//! Structured search tracing.
//!
//! The NDFS engine emits [`TraceEvent`]s at its key decision points —
//! interning, `succP` expansion, Büchi-product transitions, phase
//! changes, accepting cycles, budget exhaustion — through a
//! [`SearchTracer`] it is *generic* over. The default [`NoopTracer`]
//! has `ENABLED = false`; every emission site is guarded by
//! `if T::ENABLED`, so the untraced search monomorphizes to exactly the
//! code it had before tracing existed (verified by the byte-identical
//! verdict/stats test in the workspace integration suite).
//!
//! ## JSONL schema (version [`TRACE_SCHEMA_VERSION`])
//!
//! [`JsonlTracer`] streams one JSON object per line:
//!
//! ```text
//! {"v":1,"ev":"<type>",<payload fields in fixed order>,"t_ns":<u64>}
//! ```
//!
//! * `v` — schema version, always first. Consumers must reject lines
//!   whose major version they do not know.
//! * `ev` — event type tag, always second.
//! * payload — the event's fields, in the order documented on each
//!   [`TraceEvent`] variant. New fields may be *appended* within a
//!   version, and new event *types* (with fresh `ev` tags) may be added
//!   — consumers switch on `ev` and must skip tags they do not know;
//!   renaming, reordering or removing a field requires a version bump
//!   (the golden-schema CI test pins this).
//! * `t_ns` — nanoseconds since the tracer was created, always last.
//!   Timing values (`t_ns`, `dur_ns`) vary run to run; everything else
//!   is deterministic for a deterministic search.
//!
//! [`FlightRecorder`] keeps the last N events in a ring buffer instead
//! of streaming them — cheap enough to leave on for long searches, and
//! dumped on timeout/budget-exhaustion/panic for postmortems.

use std::io::{self, Write};
use std::time::Instant;

/// Version of the JSONL trace schema. Bumped on any incompatible field
/// change; see the module docs for the compatibility rule.
///
/// * **v1** — intern / options / expand / transition / phase / core /
///   cycle / budget (/ spill, added late in v1 without a golden pin).
/// * **v2** — adds the query-engine and out-of-core event kinds:
///   `memo` (per-core hit/miss/evict deltas), `join_build` (per-core
///   hash-join builds), and `compact` (cold-tier merge compactions,
///   split out of the aggregate `spill` event). v1 lines decode as a
///   strict subset — consumers that accept v2 must accept v1.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// One structured search event. All payloads are plain integers (plus
/// `&'static str` reasons), so events are `Copy` and cost nothing to
/// construct when tracing is disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A configuration was interned into the state store.
    /// Fields: `hit` (already present in the arena).
    Intern { hit: bool },
    /// One Heuristic-2 extension was expanded inside `succP`: how many
    /// input options the page offered and how many input-choice
    /// combinations (= successor configurations) they generate.
    /// Fields: `page`, `options`, `choices`.
    Options { page: u32, options: u32, choices: u64 },
    /// One `succP` call completed.
    /// Fields: `depth` (pseudorun length at the expanded node), `succs`
    /// (successor configurations generated), `dur_ns` (wall time).
    Expand { depth: u32, succs: u32, dur_ns: u64 },
    /// A Büchi-product transition was followed.
    /// Fields: `from`, `to` (automaton states), `assign` (the truth
    /// assignment bitmask of the FO components that enabled it).
    Transition { from: u32, to: u32, assign: u64 },
    /// The NDFS changed phase: `candy = false` starts an outer (stick)
    /// search, `candy = true` launches the nested cycle search.
    /// Fields: `candy`, `depth`.
    Phase { candy: bool, depth: u32 },
    /// One database core's search began.
    /// Fields: `unit` (`C_∃` assignment ordinal), `core` (bitmap
    /// counter within the unit's core universe).
    Core { unit: u32, core: u64 },
    /// An accepting lasso — a property-violating pseudorun — was found.
    /// Fields: `len` (total steps), `cycle_start`.
    Cycle { len: u32, cycle_start: u32 },
    /// The search stopped early.
    /// Fields: `reason` (`"steps"`, `"time"`, or `"cancelled"`),
    /// `spent` (configurations this search had generated when it gave
    /// up), `limit` (the configured global step budget; `0` when no step
    /// budget was set).
    Budget { reason: &'static str, spent: u64, limit: u64 },
    /// The tiered state store spilled visited pairs to disk during one
    /// core's search (emitted per core, aggregated — not per segment
    /// write; absent under in-memory backends).
    /// Fields: `unit`, `core`, `pairs` (spilled this core), `segments`
    /// (segments written), `compactions` (merges run).
    Spill { unit: u32, core: u64, pairs: u64, segments: u64, compactions: u64 },
    /// Query-memo activity during one core's search (emitted per core,
    /// aggregated). `evictions` counts inserts dropped at the memo's
    /// capacity cap (the memo never evicts resident entries).
    /// Fields: `unit`, `core`, `hits`, `misses`, `evictions`.
    Memo { unit: u32, core: u64, hits: u64, misses: u64, evictions: u64 },
    /// Hash-join builds run by the query engine during one core's
    /// search (emitted per core, aggregated).
    /// Fields: `unit`, `core`, `builds`.
    JoinBuild { unit: u32, core: u64, builds: u64 },
    /// Cold-tier merge compactions run during one core's search
    /// (emitted per core, aggregated; absent under in-memory backends).
    /// Fields: `unit`, `core`, `compactions`, `segments` (cold segments
    /// after the last compaction's rewrite).
    Compact { unit: u32, core: u64, compactions: u64, segments: u64 },
}

impl TraceEvent {
    /// The `ev` tag of the JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::Intern { .. } => "intern",
            TraceEvent::Options { .. } => "options",
            TraceEvent::Expand { .. } => "expand",
            TraceEvent::Transition { .. } => "transition",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::Core { .. } => "core",
            TraceEvent::Cycle { .. } => "cycle",
            TraceEvent::Budget { .. } => "budget",
            TraceEvent::Spill { .. } => "spill",
            TraceEvent::Memo { .. } => "memo",
            TraceEvent::JoinBuild { .. } => "join_build",
            TraceEvent::Compact { .. } => "compact",
        }
    }

    /// Render the schema-versioned JSONL line (no trailing newline).
    /// Field order is part of the schema; see the module docs.
    pub fn to_jsonl(&self, t_ns: u64) -> String {
        let mut s = format!("{{\"v\":{},\"ev\":\"{}\"", TRACE_SCHEMA_VERSION, self.tag());
        match *self {
            TraceEvent::Intern { hit } => {
                s.push_str(&format!(",\"hit\":{hit}"));
            }
            TraceEvent::Options { page, options, choices } => {
                s.push_str(&format!(
                    ",\"page\":{page},\"options\":{options},\"choices\":{choices}"
                ));
            }
            TraceEvent::Expand { depth, succs, dur_ns } => {
                s.push_str(&format!(",\"depth\":{depth},\"succs\":{succs},\"dur_ns\":{dur_ns}"));
            }
            TraceEvent::Transition { from, to, assign } => {
                s.push_str(&format!(",\"from\":{from},\"to\":{to},\"assign\":{assign}"));
            }
            TraceEvent::Phase { candy, depth } => {
                s.push_str(&format!(",\"candy\":{candy},\"depth\":{depth}"));
            }
            TraceEvent::Core { unit, core } => {
                s.push_str(&format!(",\"unit\":{unit},\"core\":{core}"));
            }
            TraceEvent::Cycle { len, cycle_start } => {
                s.push_str(&format!(",\"len\":{len},\"cycle_start\":{cycle_start}"));
            }
            TraceEvent::Budget { reason, spent, limit } => {
                s.push_str(&format!(
                    ",\"reason\":\"{reason}\",\"spent\":{spent},\"limit\":{limit}"
                ));
            }
            TraceEvent::Spill { unit, core, pairs, segments, compactions } => {
                s.push_str(&format!(
                    ",\"unit\":{unit},\"core\":{core},\"pairs\":{pairs},\"segments\":{segments},\"compactions\":{compactions}"
                ));
            }
            TraceEvent::Memo { unit, core, hits, misses, evictions } => {
                s.push_str(&format!(
                    ",\"unit\":{unit},\"core\":{core},\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions}"
                ));
            }
            TraceEvent::JoinBuild { unit, core, builds } => {
                s.push_str(&format!(",\"unit\":{unit},\"core\":{core},\"builds\":{builds}"));
            }
            TraceEvent::Compact { unit, core, compactions, segments } => {
                s.push_str(&format!(
                    ",\"unit\":{unit},\"core\":{core},\"compactions\":{compactions},\"segments\":{segments}"
                ));
            }
        }
        s.push_str(&format!(",\"t_ns\":{t_ns}}}"));
        s
    }
}

/// A sink for search events. The engine is generic over this trait and
/// guards every emission with `if T::ENABLED`, so implementations with
/// `ENABLED = false` cost literally nothing.
pub trait SearchTracer {
    /// When `false`, emission sites (including event construction)
    /// compile out entirely.
    const ENABLED: bool = true;

    /// Receive one event. Called only when [`SearchTracer::ENABLED`].
    fn event(&mut self, event: TraceEvent);
}

/// The zero-cost default: no events, no code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl SearchTracer for NoopTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _event: TraceEvent) {}
}

/// Streams events as schema-versioned JSONL to any [`Write`] sink.
/// Write errors are sticky: the first one is kept (see
/// [`JsonlTracer::take_error`]) and later events are dropped.
pub struct JsonlTracer<W: Write> {
    sink: W,
    start: Instant,
    error: Option<io::Error>,
}

impl<W: Write> JsonlTracer<W> {
    pub fn new(sink: W) -> JsonlTracer<W> {
        JsonlTracer { sink, start: Instant::now(), error: None }
    }

    /// Flush the sink and surface the first write error, if any.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.sink.flush()
    }

    /// The first write error, if one occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Recover the sink (e.g. a `Vec<u8>` buffer in tests).
    pub fn into_inner(self) -> W {
        self.sink
    }
}

impl<W: Write> SearchTracer for JsonlTracer<W> {
    fn event(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_jsonl(self.start.elapsed().as_nanos() as u64);
        if let Err(e) =
            self.sink.write_all(line.as_bytes()).and_then(|()| self.sink.write_all(b"\n"))
        {
            self.error = Some(e);
        }
    }
}

/// A bounded ring buffer keeping the most recent events — the flight
/// recorder. Left running alongside a search, it costs one copy per
/// event and holds at most `capacity` of them; on timeout, budget
/// exhaustion or panic the tail is dumped for a postmortem.
pub struct FlightRecorder {
    ring: Vec<(u64, TraceEvent)>,
    /// Next write position; the ring has wrapped when `total > len`.
    head: usize,
    /// Events ever seen (so the dump can say how many were dropped).
    total: u64,
    capacity: usize,
    start: Instant,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Vec::with_capacity(capacity),
            head: 0,
            total: 0,
            capacity,
            start: Instant::now(),
        }
    }

    /// Events ever recorded (including ones the ring has dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained events, oldest first, with their `t_ns` stamps.
    pub fn events(&self) -> Vec<(u64, TraceEvent)> {
        if self.ring.len() < self.capacity {
            self.ring.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
            out
        }
    }

    /// Render the tail as JSONL lines for a postmortem dump.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let dropped = self.total - self.events().len() as u64;
        if dropped > 0 {
            out.push_str(&format!("… {dropped} earlier events dropped by the ring …\n"));
        }
        for (t_ns, event) in self.events() {
            out.push_str(&event.to_jsonl(t_ns));
            out.push('\n');
        }
        out
    }
}

impl SearchTracer for FlightRecorder {
    fn event(&mut self, event: TraceEvent) {
        let stamped = (self.start.elapsed().as_nanos() as u64, event);
        if self.ring.len() < self.capacity {
            self.ring.push(stamped);
        } else {
            self.ring[self.head] = stamped;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }
}

/// Fan one event stream out to two tracers (e.g. a JSONL stream plus a
/// flight recorder). Enabled when either side is.
pub struct Tee<A: SearchTracer, B: SearchTracer>(pub A, pub B);

impl<A: SearchTracer, B: SearchTracer> SearchTracer for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn event(&mut self, event: TraceEvent) {
        if A::ENABLED {
            self.0.event(event);
        }
        if B::ENABLED {
            self.1.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_versioned_and_ordered() {
        let ev = TraceEvent::Expand { depth: 3, succs: 7, dur_ns: 125 };
        assert_eq!(
            ev.to_jsonl(42),
            r#"{"v":2,"ev":"expand","depth":3,"succs":7,"dur_ns":125,"t_ns":42}"#
        );
        let ev = TraceEvent::Budget { reason: "steps", spent: 12, limit: 10 };
        assert_eq!(
            ev.to_jsonl(1),
            r#"{"v":2,"ev":"budget","reason":"steps","spent":12,"limit":10,"t_ns":1}"#
        );
        let ev = TraceEvent::Intern { hit: true };
        assert!(ev.to_jsonl(0).starts_with(r#"{"v":2,"ev":"intern","hit":true"#));
        let ev = TraceEvent::Spill { unit: 2, core: 5, pairs: 96, segments: 1, compactions: 0 };
        assert_eq!(
            ev.to_jsonl(9),
            r#"{"v":2,"ev":"spill","unit":2,"core":5,"pairs":96,"segments":1,"compactions":0,"t_ns":9}"#
        );
        let ev = TraceEvent::Memo { unit: 0, core: 3, hits: 40, misses: 8, evictions: 0 };
        assert_eq!(
            ev.to_jsonl(7),
            r#"{"v":2,"ev":"memo","unit":0,"core":3,"hits":40,"misses":8,"evictions":0,"t_ns":7}"#
        );
        let ev = TraceEvent::JoinBuild { unit: 1, core: 0, builds: 6 };
        assert_eq!(
            ev.to_jsonl(2),
            r#"{"v":2,"ev":"join_build","unit":1,"core":0,"builds":6,"t_ns":2}"#
        );
        let ev = TraceEvent::Compact { unit: 2, core: 9, compactions: 1, segments: 1 };
        assert_eq!(
            ev.to_jsonl(3),
            r#"{"v":2,"ev":"compact","unit":2,"core":9,"compactions":1,"segments":1,"t_ns":3}"#
        );
    }

    #[test]
    fn jsonl_tracer_streams_lines() {
        let mut buf = Vec::new();
        {
            let mut t = JsonlTracer::new(&mut buf);
            t.event(TraceEvent::Phase { candy: false, depth: 0 });
            t.event(TraceEvent::Cycle { len: 4, cycle_start: 1 });
            t.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"phase\""), "{}", lines[0]);
        assert!(lines[1].contains("\"cycle_start\":1"), "{}", lines[1]);
    }

    #[test]
    fn ring_buffer_wraps_keeping_the_newest() {
        let mut rec = FlightRecorder::new(3);
        assert_eq!(rec.events(), vec![]);
        for depth in 0..5u32 {
            rec.event(TraceEvent::Phase { candy: false, depth });
        }
        assert_eq!(rec.total(), 5);
        let depths: Vec<u32> = rec
            .events()
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::Phase { depth, .. } => *depth,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(depths, vec![2, 3, 4], "oldest events evicted, order preserved");
        assert!(rec.dump().starts_with("… 2 earlier events dropped"), "{}", rec.dump());
    }

    #[test]
    fn ring_capacity_one_and_exact_fit() {
        let mut rec = FlightRecorder::new(0); // clamped to 1
        rec.event(TraceEvent::Intern { hit: false });
        rec.event(TraceEvent::Intern { hit: true });
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events()[0].1, TraceEvent::Intern { hit: true });

        let mut rec = FlightRecorder::new(2);
        rec.event(TraceEvent::Intern { hit: false });
        rec.event(TraceEvent::Intern { hit: true });
        assert_eq!(rec.events().len(), 2, "exact fit does not wrap");
        assert_eq!(rec.total(), 2);
        assert!(!rec.dump().contains("dropped"));
    }

    #[test]
    fn noop_is_disabled_and_tee_combines() {
        const { assert!(!NoopTracer::ENABLED) };
        const { assert!(FlightRecorder::ENABLED) };
        const { assert!(<Tee<NoopTracer, FlightRecorder>>::ENABLED) };
        const { assert!(!<Tee<NoopTracer, NoopTracer>>::ENABLED) };
        let mut tee = Tee(FlightRecorder::new(4), FlightRecorder::new(4));
        tee.event(TraceEvent::Budget { reason: "time", spent: 0, limit: 0 });
        assert_eq!(tee.0.total(), 1);
        assert_eq!(tee.1.total(), 1);
    }
}
