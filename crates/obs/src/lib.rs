//! `wave-obs`: observability primitives for the wave verifier.
//!
//! Two pillars, both dependency-free:
//!
//! * [`trace`] — structured search tracing: the [`SearchTracer`] trait
//!   the NDFS engine is generic over, a versioned [`TraceEvent`] model,
//!   a JSONL stream writer ([`JsonlTracer`]), and a bounded
//!   [`FlightRecorder`] ring buffer for postmortems. The no-op tracer
//!   ([`NoopTracer`]) monomorphizes to nothing: `SearchTracer::ENABLED`
//!   is `false`, so every event-construction site compiles out and an
//!   untraced search pays zero cost.
//! * [`metrics`] — a lock-free metrics registry: atomic [`Counter`]s,
//!   [`Gauge`]s and log-scale-bucketed [`Histogram`]s registered by
//!   name, rendered as Prometheus text exposition ([`prom`]) and served
//!   by a tiny hand-rolled HTTP listener ([`MetricsServer`]).
//!
//! A third pillar, [`span`] (wave-prof), reuses the tracer's
//! `const ENABLED` monomorphization trick for a hierarchical span
//! profiler: the engine opens frames through a [`SpanSink`] it is
//! generic over, and the aggregating [`SpanProfiler`] renders the call
//! tree as an attribution table or inferno-compatible folded stacks.
//!
//! The crate sits below `wave-core` in the dependency graph; events and
//! metric values are plain integers so nothing verifier-shaped leaks in.

pub mod metrics;
pub mod prom;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricKind, MetricSnapshot, MetricsRegistry};
pub use prom::{render_prometheus, MetricsServer};
pub use span::{NoopSpans, SpanProfiler, SpanRow, SpanSink, NO_INDEX};
pub use trace::{
    FlightRecorder, JsonlTracer, NoopTracer, SearchTracer, Tee, TraceEvent, TRACE_SCHEMA_VERSION,
};
