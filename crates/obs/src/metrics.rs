//! Lock-free metrics registry.
//!
//! Three instrument kinds, all backed by plain atomics so the hot path
//! (scheduler workers, connection handlers) never takes a lock:
//!
//! * [`Counter`] — monotonically increasing `u64`.
//! * [`Gauge`] — signed instantaneous value (`i64`), inc/dec/set.
//! * [`Histogram`] — fixed log₂-scale buckets over `u64` observations.
//!   Bucket `i` (for `i < 64`) holds values `v` with
//!   `bucket_index(v) == i`, i.e. upper bound `2^i - 1`; bucket 64 is
//!   `+Inf`. No float math, no allocation, no configuration.
//!
//! Instruments are registered by name in a [`MetricsRegistry`] and
//! handed out as `Arc`s; registering the same name (and kind) twice
//! returns the same instrument, so independent subsystems can share a
//! counter without coordination. [`MetricsRegistry::snapshot`] takes a
//! point-in-time copy for rendering (JSON on the service socket,
//! Prometheus text via [`crate::prom`]).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per power-of-two magnitude of a
/// `u64` (indices 0..=63) plus a `+Inf` bucket at index 64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `n` if it is below (high-water marks, e.g.
    /// peak store residency). Atomic, so racing writers keep the max.
    pub fn set_max(&self, n: i64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The log₂ bucket index for an observation: 0 for 0, otherwise
/// `floor(log2(v)) + 1`, so bucket `i` covers `[2^(i-1), 2^i - 1]` and
/// the upper bound of bucket `i` is `2^i - 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i`, or `None` for the `+Inf`
/// bucket (index 64, which only `u64::MAX` reaches: `2^64 - 1`).
#[inline]
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i >= HISTOGRAM_BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// A fixed-bucket log-scale histogram of `u64` observations.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (not cumulative), indexed by [`bucket_index`].
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// The kind of a registered instrument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A point-in-time copy of one instrument's state.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    /// Counter value or gauge value (gauges are reported as `i64` cast
    /// through this field's sign-carrying twin below).
    pub value: u64,
    /// Gauge value with sign; equals `value as i64` for counters.
    pub gauge: i64,
    /// Histogram state: (count, sum, per-bucket counts). Empty vec for
    /// counters and gauges.
    pub hist_count: u64,
    pub hist_sum: u64,
    pub hist_buckets: Vec<u64>,
}

/// A named collection of instruments. Registration takes a short lock;
/// the instruments themselves are lock-free.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, String, Instrument)>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = self.entries.lock().unwrap();
        f.debug_struct("MetricsRegistry").field("len", &entries.len()).finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or look up) a counter by name.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, _, inst)) = entries.iter().find(|(n, _, _)| n == name) {
            match inst {
                Instrument::Counter(c) => return Arc::clone(c),
                other => panic!("metric {name:?} already registered as {:?}", other.kind()),
            }
        }
        let c = Arc::new(Counter::default());
        entries.push((name.to_string(), help.to_string(), Instrument::Counter(Arc::clone(&c))));
        c
    }

    /// Register (or look up) a gauge by name. Panics on kind mismatch.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, _, inst)) = entries.iter().find(|(n, _, _)| n == name) {
            match inst {
                Instrument::Gauge(g) => return Arc::clone(g),
                other => panic!("metric {name:?} already registered as {:?}", other.kind()),
            }
        }
        let g = Arc::new(Gauge::default());
        entries.push((name.to_string(), help.to_string(), Instrument::Gauge(Arc::clone(&g))));
        g
    }

    /// Register (or look up) a histogram by name. Panics on kind mismatch.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, _, inst)) = entries.iter().find(|(n, _, _)| n == name) {
            match inst {
                Instrument::Histogram(h) => return Arc::clone(h),
                other => panic!("metric {name:?} already registered as {:?}", other.kind()),
            }
        }
        let h = Arc::new(Histogram::default());
        entries.push((name.to_string(), help.to_string(), Instrument::Histogram(Arc::clone(&h))));
        h
    }

    /// A point-in-time copy of every instrument, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .map(|(name, help, inst)| {
                let mut snap = MetricSnapshot {
                    name: name.clone(),
                    help: help.clone(),
                    kind: inst.kind(),
                    value: 0,
                    gauge: 0,
                    hist_count: 0,
                    hist_sum: 0,
                    hist_buckets: Vec::new(),
                };
                match inst {
                    Instrument::Counter(c) => {
                        snap.value = c.get();
                        snap.gauge = snap.value as i64;
                    }
                    Instrument::Gauge(g) => {
                        snap.gauge = g.get();
                        snap.value = snap.gauge.max(0) as u64;
                    }
                    Instrument::Histogram(h) => {
                        snap.hist_count = h.count();
                        snap.hist_sum = h.sum();
                        snap.hist_buckets = h.buckets().to_vec();
                    }
                }
                snap
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64, "u64::MAX lands in the +Inf bucket");
        assert_eq!(bucket_index(u64::MAX >> 1), 63);
    }

    #[test]
    fn bucket_bounds_are_pow2_minus_one() {
        assert_eq!(bucket_bound(0), Some(0));
        assert_eq!(bucket_bound(1), Some(1));
        assert_eq!(bucket_bound(2), Some(3));
        assert_eq!(bucket_bound(10), Some(1023));
        assert_eq!(bucket_bound(63), Some(u64::MAX >> 1));
        assert_eq!(bucket_bound(64), None, "last bucket is +Inf");
        // Every value except u64::MAX fits under bound 63; consistency:
        for i in 0..64 {
            let b = bucket_bound(i).unwrap();
            assert_eq!(bucket_index(b), i);
            assert_eq!(
                bucket_index(b.saturating_add(1)),
                if b == u64::MAX >> 1 { 64 } else { i + 1 }
            );
        }
    }

    #[test]
    fn bucket_boundaries_are_pinned() {
        // The log₂ bucket layout is part of the exposition contract
        // (dashboards alert on `_bucket{le=...}` series): bucket i's
        // inclusive upper bound is 2^i − 1, bucket 64 is +Inf. Pin the
        // first boundaries and the count explicitly so a layout change
        // cannot slip through as a refactor.
        let expected: [u64; 11] = [0, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023];
        for (i, &bound) in expected.iter().enumerate() {
            assert_eq!(bucket_bound(i), Some(bound), "bucket {i}");
        }
        assert_eq!(HISTOGRAM_BUCKETS, 65);
        assert_eq!(bucket_bound(63), Some((1u64 << 63) - 1));
        assert_eq!(bucket_bound(64), None, "+Inf");
        // Transitions at powers of two: 2^k is the first value of bucket k+1.
        for k in 0..10u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1);
            assert_eq!(bucket_index(v - 1), if v == 1 { 0 } else { k as usize });
        }
    }

    #[test]
    fn gauge_set_max_keeps_high_water() {
        let g = Gauge::default();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_observe_zero_and_max() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX); // 0 + MAX
        let b = h.buckets();
        assert_eq!(b[0], 1, "zero lands in bucket 0");
        assert_eq!(b[64], 1, "u64::MAX lands in +Inf bucket");
        assert_eq!(b[1..64].iter().sum::<u64>(), 0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::default();
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), -1);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_dedupes_by_name_and_snapshots_in_order() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", "Requests");
        let b = reg.counter("requests_total", "Requests");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name returns the same counter");
        let g = reg.gauge("inflight", "In-flight");
        g.set(3);
        let h = reg.histogram("latency_ns", "Latency");
        h.observe(100);
        let snaps = reg.snapshot();
        let names: Vec<&str> = snaps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["requests_total", "inflight", "latency_ns"]);
        assert_eq!(snaps[0].value, 2);
        assert_eq!(snaps[1].gauge, 3);
        assert_eq!(snaps[2].hist_count, 1);
        assert_eq!(snaps[2].hist_sum, 100);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_panics_on_kind_mismatch() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", "");
        let _ = reg.gauge("x", "");
    }
}
