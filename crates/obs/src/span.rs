//! wave-prof: the hierarchical span profiler.
//!
//! The search engine is generic over a [`SpanSink`] exactly the way it
//! is generic over `SearchTracer`: the default [`NoopSpans`] has
//! `ENABLED = false` and every emission site is guarded by
//! `if P::ENABLED`, so the unprofiled search monomorphizes to the code
//! it had before the profiler existed (pinned by the byte-identical
//! verdict equivalence suite in tests/observability.rs).
//!
//! [`SpanProfiler`] aggregates frames into a call tree rather than
//! recording every entry/exit: each distinct stack of
//! `(label, index)` frames is one node carrying call and nanosecond
//! totals. Two emission styles feed it:
//!
//! * [`SpanSink::enter`]/[`SpanSink::exit`] open a real frame that can
//!   hold children — used for `unit`/`core`/`expand`/`query` scopes.
//! * [`SpanSink::leaf_ns`] attaches an already-measured duration as a
//!   childless frame — used where the engine has its own timer (the
//!   `SearchProfile` phase counters), so the profiler's number for
//!   those phases agrees with the flat profile *exactly* instead of
//!   within clock-call jitter.
//!
//! The tree renders two ways: a row table ([`SpanProfiler::rows`]) for
//! the attribution report, and folded stacks ([`SpanProfiler::fold`])
//! in the `frame;frame;frame value` format consumed by
//! inferno / flamegraph.pl, with each node's *self* time as the value.

use std::time::Instant;

/// Frame index meaning "no index": the frame renders as its bare label.
pub const NO_INDEX: u64 = u64::MAX;

/// A sink for hierarchical profiling frames. The engine is generic over
/// this trait and guards every emission with `if P::ENABLED`, so
/// implementations with `ENABLED = false` cost literally nothing.
pub trait SpanSink {
    /// When `false`, emission sites compile out entirely.
    const ENABLED: bool = true;

    /// Open a frame under the currently open frame (or the root).
    /// Frames with the same `(label, index)` under the same parent
    /// aggregate into one node. Called only when [`SpanSink::ENABLED`].
    fn enter(&mut self, label: &'static str, index: u64);

    /// Close the innermost open frame, folding its wall time into the
    /// node. Must pair with the matching [`SpanSink::enter`].
    fn exit(&mut self);

    /// Attach `ns` (over `calls` calls) to a childless frame under the
    /// currently open frame, without opening a scope. For durations the
    /// caller already measured.
    fn leaf_ns(&mut self, label: &'static str, index: u64, calls: u64, ns: u64);
}

/// The zero-cost default: no frames, no code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSpans;

impl SpanSink for NoopSpans {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(&mut self, _label: &'static str, _index: u64) {}

    #[inline(always)]
    fn exit(&mut self) {}

    #[inline(always)]
    fn leaf_ns(&mut self, _label: &'static str, _index: u64, _calls: u64, _ns: u64) {}
}

/// One aggregated call-tree node.
#[derive(Clone, Debug)]
struct Node {
    label: &'static str,
    index: u64,
    parent: usize,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
    /// Time attributed to children (total − child = self time).
    child_ns: u64,
}

/// One row of the rendered span table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// Semicolon-joined stack, root first (e.g. `core:0;expand;query:3`).
    pub stack: String,
    pub label: &'static str,
    /// [`NO_INDEX`] when the frame has no index.
    pub index: u64,
    pub depth: usize,
    pub calls: u64,
    pub total_ns: u64,
    /// Total minus time spent in child frames.
    pub self_ns: u64,
}

/// Aggregating span sink: builds the call tree described in the module
/// docs. Not thread-safe; the search drives one profiler per run.
pub struct SpanProfiler {
    /// Node 0 is the synthetic root (never rendered).
    nodes: Vec<Node>,
    /// Open frames: (node, entry instant).
    stack: Vec<(usize, Instant)>,
}

impl Default for SpanProfiler {
    fn default() -> SpanProfiler {
        SpanProfiler::new()
    }
}

impl SpanProfiler {
    pub fn new() -> SpanProfiler {
        SpanProfiler {
            nodes: vec![Node {
                label: "",
                index: NO_INDEX,
                parent: 0,
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
                child_ns: 0,
            }],
            stack: Vec::new(),
        }
    }

    fn child_of(&mut self, parent: usize, label: &'static str, index: u64) -> usize {
        if let Some(&id) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].label == label && self.nodes[c].index == index)
        {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            label,
            index,
            parent,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            child_ns: 0,
        });
        self.nodes[parent].children.push(id);
        id
    }

    fn top(&self) -> usize {
        self.stack.last().map_or(0, |&(id, _)| id)
    }

    /// Depth of the currently open stack (0 at the root).
    pub fn open_depth(&self) -> usize {
        self.stack.len()
    }

    /// Sum of `self_ns` over every node whose label is `label` — the
    /// wall time attributed to that frame kind anywhere in the tree.
    pub fn self_ns_of(&self, label: &str) -> u64 {
        self.nodes
            .iter()
            .skip(1)
            .filter(|n| n.label == label)
            .map(|n| n.total_ns.saturating_sub(n.child_ns))
            .sum()
    }

    /// Sum of `total_ns` over every node with `label` (and, when
    /// `index` is not [`NO_INDEX`], that index).
    pub fn total_ns_of(&self, label: &str, index: u64) -> u64 {
        self.nodes
            .iter()
            .skip(1)
            .filter(|n| n.label == label && (index == NO_INDEX || n.index == index))
            .map(|n| n.total_ns)
            .sum()
    }

    fn frame_name(node: &Node) -> String {
        if node.index == NO_INDEX {
            node.label.to_string()
        } else {
            format!("{}:{}", node.label, node.index)
        }
    }

    fn walk(&self, id: usize, path: &str, depth: usize, out: &mut Vec<SpanRow>) {
        for &c in &self.nodes[id].children {
            let n = &self.nodes[c];
            let name = Self::frame_name(n);
            let stack = if path.is_empty() { name.clone() } else { format!("{path};{name}") };
            out.push(SpanRow {
                stack: stack.clone(),
                label: n.label,
                index: n.index,
                depth,
                calls: n.calls,
                total_ns: n.total_ns,
                self_ns: n.total_ns.saturating_sub(n.child_ns),
            });
            self.walk(c, &stack, depth + 1, out);
        }
    }

    /// All tree rows, depth-first in frame-creation order.
    pub fn rows(&self) -> Vec<SpanRow> {
        let mut out = Vec::new();
        self.walk(0, "", 0, &mut out);
        out
    }

    /// Folded-stack lines (`stack;frames space-separated-from value`),
    /// one per node with nonzero self time, directly consumable by
    /// inferno / flamegraph.pl. Values are nanoseconds.
    pub fn fold(&self) -> Vec<String> {
        self.rows()
            .into_iter()
            .filter(|r| r.self_ns > 0)
            .map(|r| format!("{} {}", r.stack, r.self_ns))
            .collect()
    }
}

impl SpanSink for SpanProfiler {
    fn enter(&mut self, label: &'static str, index: u64) {
        let id = self.child_of(self.top(), label, index);
        self.stack.push((id, Instant::now()));
    }

    fn exit(&mut self) {
        let Some((id, t0)) = self.stack.pop() else { return };
        let ns = t0.elapsed().as_nanos() as u64;
        let node = &mut self.nodes[id];
        node.calls += 1;
        node.total_ns += ns;
        let parent = node.parent;
        self.nodes[parent].child_ns += ns;
    }

    fn leaf_ns(&mut self, label: &'static str, index: u64, calls: u64, ns: u64) {
        let parent = self.top();
        let id = self.child_of(parent, label, index);
        let node = &mut self.nodes[id];
        node.calls += calls;
        node.total_ns += ns;
        self.nodes[parent].child_ns += ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        const { assert!(!NoopSpans::ENABLED) };
        const { assert!(SpanProfiler::ENABLED) };
    }

    #[test]
    fn frames_aggregate_by_label_and_index() {
        let mut p = SpanProfiler::new();
        for qid in [0u64, 1, 0] {
            p.enter("expand", NO_INDEX);
            p.enter("query", qid);
            p.exit();
            p.exit();
        }
        let rows = p.rows();
        assert_eq!(
            rows.iter().map(|r| r.stack.as_str()).collect::<Vec<_>>(),
            vec!["expand", "expand;query:0", "expand;query:1"]
        );
        let expand = &rows[0];
        assert_eq!((expand.calls, expand.depth), (3, 0));
        let q0 = rows.iter().find(|r| r.stack == "expand;query:0").unwrap();
        assert_eq!(q0.calls, 2);
    }

    #[test]
    fn self_time_excludes_children_and_leaves_are_exact() {
        let mut p = SpanProfiler::new();
        p.enter("core", 0);
        p.leaf_ns("visit", NO_INDEX, 10, 1_000);
        p.leaf_ns("visit", NO_INDEX, 5, 500);
        p.exit();
        assert_eq!(p.total_ns_of("visit", NO_INDEX), 1_500);
        let rows = p.rows();
        let visit = rows.iter().find(|r| r.label == "visit").unwrap();
        assert_eq!((visit.calls, visit.total_ns, visit.self_ns), (15, 1_500, 1_500));
        // In production leaf durations are measured inside the parent
        // frame, so parent total ≥ Σ leaves; with synthetic test values
        // larger than real elapsed time, self time saturates at zero.
        let core = rows.iter().find(|r| r.label == "core").unwrap();
        assert_eq!(core.self_ns, core.total_ns.saturating_sub(1_500));
        assert_eq!(p.self_ns_of("core"), core.self_ns);
    }

    #[test]
    fn fold_emits_inferno_lines() {
        let mut p = SpanProfiler::new();
        p.enter("unit", 0);
        p.leaf_ns("intern", NO_INDEX, 2, 300);
        p.exit();
        for line in p.fold() {
            let (stack, value) = line.rsplit_once(' ').expect("folded line has a space");
            assert!(!stack.is_empty());
            assert!(stack.split(';').all(|f| !f.is_empty() && !f.contains(' ')));
            let _: u64 = value.parse().expect("folded value is an integer");
        }
        assert!(p.fold().iter().any(|l| l.starts_with("unit:0;intern ")), "{:?}", p.fold());
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let mut p = SpanProfiler::new();
        p.exit();
        assert!(p.rows().is_empty());
        assert_eq!(p.open_depth(), 0);
    }
}
