//! wave-store: tiered out-of-core visited-pair storage.
//!
//! The NDFS visited set — packed `(ConfigId << 32 | auto_state)` pairs
//! with two phase mark bits — is the paper's "Max. trie size" column
//! and the memory ceiling of every large search. This crate bounds it:
//!
//! * [`SplitBloom`] — a blocked Bloom front; probes on fresh pairs
//!   (the common case mid-search) answer from one cache line and never
//!   touch disk.
//! * [`ClockTable`] — the hot tier: a fixed-budget open-addressing
//!   table of packed pairs under clock/second-chance eviction.
//! * [`Segment`] — the cold tier: sorted immutable spill runs with
//!   fence keys and Bloom sidecars, point-probed via positioned reads
//!   and merge-compacted LSM-style.
//! * [`TieredVisits`] — the three layers composed behind the same mark
//!   semantics as `wave-core`'s `VisitTable`, plus a persist/reopen
//!   manifest for checkpoint round-trips.
//!
//! The crate is deliberately std-only and knows nothing about
//! configurations or automata: it stores `u64` keys and `u8` mark
//! masks. `wave-core` adapts it to the `StateStore` trait; keeping the
//! mechanics here lets the tiers be unit- and property-tested against
//! a plain map oracle without dragging in the verifier.
//!
//! Every hash in the crate is fixed (splitmix64 variants), so eviction
//! order, spill counters, and compaction counts are deterministic
//! functions of the mark sequence — the property the perf-trajectory
//! file `BENCH_store.json` and the CI freshness gate rely on.

pub mod bloom;
pub mod hot;
pub mod segment;
pub mod ser;
pub mod tiered;

pub use bloom::SplitBloom;
pub use hot::{ClockTable, SLOT_BYTES};
pub use segment::{Segment, SegmentIter, SegmentWriter};
pub use ser::{fnv1a, ByteReader, ByteWriter};
pub use tiered::{TierConfig, TierCounters, TieredVisits};
