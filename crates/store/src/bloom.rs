//! Split (blocked) Bloom filter over packed `u64` visit-pair keys.
//!
//! The tiered store sits behind a membership-heavy workload: during a
//! search most `is_marked`/`mark` probes are for *fresh* pairs that are
//! in no tier at all, and those must not touch disk. The front filter
//! answers "definitely not present" from one cache line: a key hashes
//! to one 512-bit block and to seven bit positions inside it, so a
//! probe reads a single block regardless of filter size (the classic
//! blocked-Bloom layout of Putze/Sanders/Singler).
//!
//! Sizing is ~10 bits per expected key; with 7 probes confined to a
//! 512-bit block the false-positive rate is ≈1% at capacity. The filter
//! cannot enumerate members, so growth (done by [`crate::TieredVisits`]
//! when the distinct count outruns capacity) re-inserts keys from the
//! tiers that can.

/// 64-bit finalizer (splitmix64): full-avalanche, fixed constants, so
/// block placement — and therefore every spill/eviction decision
/// downstream — is identical across runs, platforms, and builds.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const BLOCK_WORDS: usize = 8; // 512 bits = one cache line
const BLOCK_BITS: u64 = 512;
const PROBES: usize = 7; // 7 × 9 bits of h2 select bits within the block
const BITS_PER_KEY: usize = 10;

/// Blocked Bloom filter; see the module docs for layout and rates.
#[derive(Clone, Debug)]
pub struct SplitBloom {
    blocks: Vec<[u64; BLOCK_WORDS]>,
    mask: u64, // blocks.len() - 1 (power of two)
    capacity: usize,
}

impl SplitBloom {
    /// Filter sized for ~`keys` insertions at the target error rate.
    pub fn with_capacity(keys: usize) -> SplitBloom {
        let keys = keys.max(64);
        let blocks = ((keys * BITS_PER_KEY) as u64 / BLOCK_BITS + 1).next_power_of_two() as usize;
        SplitBloom {
            blocks: vec![[0; BLOCK_WORDS]; blocks],
            mask: blocks as u64 - 1,
            capacity: keys,
        }
    }

    #[inline]
    fn hashes(key: u64) -> (u64, u64) {
        let h1 = mix64(key);
        (h1, mix64(h1 ^ 0xa5a5_a5a5_a5a5_a5a5))
    }

    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = SplitBloom::hashes(key);
        let block = &mut self.blocks[(h1 & self.mask) as usize];
        for i in 0..PROBES {
            let bit = (h2 >> (9 * i)) & (BLOCK_BITS - 1);
            block[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// False means *definitely absent*; true means "probe the tiers".
    pub fn may_contain(&self, key: u64) -> bool {
        let (h1, h2) = SplitBloom::hashes(key);
        let block = &self.blocks[(h1 & self.mask) as usize];
        (0..PROBES).all(|i| {
            let bit = (h2 >> (9 * i)) & (BLOCK_BITS - 1);
            block[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    pub fn clear(&mut self) {
        for block in &mut self.blocks {
            *block = [0; BLOCK_WORDS];
        }
    }

    /// Insertions the filter was sized for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Heap footprint of the bit array.
    pub fn bytes(&self) -> usize {
        self.blocks.len() * BLOCK_WORDS * 8
    }

    /// Raw bit words, for segment sidecars and manifests.
    pub fn to_words(&self) -> Vec<u64> {
        self.blocks.iter().flatten().copied().collect()
    }

    /// Rebuild from [`SplitBloom::to_words`] output. `None` when the
    /// word count is not a power-of-two block multiple.
    pub fn from_words(capacity: usize, words: &[u64]) -> Option<SplitBloom> {
        let blocks = words.len() / BLOCK_WORDS;
        if blocks == 0 || !blocks.is_power_of_two() || blocks * BLOCK_WORDS != words.len() {
            return None;
        }
        let blocks: Vec<[u64; BLOCK_WORDS]> =
            words.chunks_exact(BLOCK_WORDS).map(|c| c.try_into().unwrap()).collect();
        Some(SplitBloom { mask: blocks.len() as u64 - 1, blocks, capacity: capacity.max(64) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = SplitBloom::with_capacity(10_000);
        for k in 0..10_000u64 {
            b.insert(k * 2654435761);
        }
        for k in 0..10_000u64 {
            assert!(b.may_contain(k * 2654435761));
        }
    }

    #[test]
    fn false_positive_rate_is_modest_at_capacity() {
        let mut b = SplitBloom::with_capacity(10_000);
        for k in 0..10_000u64 {
            b.insert(k);
        }
        let fps = (10_000..110_000u64).filter(|&k| b.may_contain(k)).count();
        // ~1% expected; 3% leaves slack for block skew
        assert!(fps < 3_000, "false-positive rate too high: {fps}/100000");
    }

    #[test]
    fn clear_empties_the_filter() {
        let mut b = SplitBloom::with_capacity(64);
        b.insert(42);
        assert!(b.may_contain(42));
        b.clear();
        assert!(!b.may_contain(42));
    }

    #[test]
    fn words_round_trip() {
        let mut b = SplitBloom::with_capacity(1000);
        for k in 0..1000u64 {
            b.insert(mix64(k));
        }
        let words = b.to_words();
        let b2 = SplitBloom::from_words(b.capacity(), &words).unwrap();
        assert_eq!(b2.bytes(), b.bytes());
        for k in 0..1000u64 {
            assert!(b2.may_contain(mix64(k)));
        }
        assert!(SplitBloom::from_words(64, &words[..BLOCK_WORDS * 3]).is_none());
    }
}
