//! Cold on-disk tier: sorted, immutable spill segments.
//!
//! A segment is one eviction batch (or one compaction output) written
//! as an append-only sorted run — the mini-LSM shape. The file layout
//! is
//!
//! ```text
//! magic "WSEG" | version u32 | count u64 | min u64 | max u64
//! | bloom_capacity u64 | bloom_words u64 | bloom words …
//! | keys  count × u64  (sorted ascending, unique)
//! | marks count × u8   (parallel to keys)
//! ```
//!
//! everything little-endian. The header, fence keys (`min`/`max`) and
//! Bloom sidecar are held in memory after [`Segment::open`]; a point
//! probe fence-checks, consults the sidecar, then binary-searches the
//! key region with positioned reads (`read_at`), touching `O(log n)`
//! disk pages and never mutating the file. Keys and marks live in
//! separate regions so key reads stay 8-byte aligned.
//!
//! [`SegmentIter`] streams a segment in key order through a small
//! refill buffer — the input side of k-way merge compaction.

use crate::bloom::SplitBloom;
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"WSEG";
const VERSION: u32 = 1;
/// magic + version + count + min + max + bloom_capacity + bloom_words
const HEADER_BYTES: u64 = 4 + 4 + 8 * 5;

fn read_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(windows)]
    {
        use std::os::windows::fs::FileExt;
        let mut done = 0;
        while done < buf.len() {
            let n = file.seek_read(&mut buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            done += n;
        }
        Ok(())
    }
}

fn corrupt(path: &Path, what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{}: {what}", path.display()))
}

/// Writes one segment file from an eviction batch or merge output.
pub struct SegmentWriter;

impl SegmentWriter {
    /// Write `entries` (sorted ascending by key, unique) to `path`.
    pub fn write(path: &Path, entries: &[(u64, u8)]) -> io::Result<()> {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries sorted+unique");
        let mut bloom = SplitBloom::with_capacity(entries.len());
        for &(k, _) in entries {
            bloom.insert(k);
        }
        let words = bloom.to_words();
        let min = entries.first().map_or(u64::MAX, |e| e.0);
        let max = entries.last().map_or(0, |e| e.0);
        // create_new: a segment path is written exactly once per store
        // lifetime, so an existing file means two stores share a spill
        // directory — fail loudly instead of truncating a sibling's
        // segment out from under its open fd
        let mut w = BufWriter::new(File::options().write(true).create_new(true).open(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(entries.len() as u64).to_le_bytes())?;
        w.write_all(&min.to_le_bytes())?;
        w.write_all(&max.to_le_bytes())?;
        w.write_all(&(bloom.capacity() as u64).to_le_bytes())?;
        w.write_all(&(words.len() as u64).to_le_bytes())?;
        for word in &words {
            w.write_all(&word.to_le_bytes())?;
        }
        for &(k, _) in entries {
            w.write_all(&k.to_le_bytes())?;
        }
        for &(_, m) in entries {
            w.write_all(&[m])?;
        }
        w.into_inner().map_err(|e| e.into_error())?.sync_all()
    }
}

/// An open, immutable sorted run; probed without loading the entries.
#[derive(Debug)]
pub struct Segment {
    file: File,
    path: PathBuf,
    count: u64,
    min: u64,
    max: u64,
    bloom: SplitBloom,
    keys_off: u64,
    marks_off: u64,
}

impl Segment {
    pub fn open(path: &Path) -> io::Result<Segment> {
        let mut file = File::open(path)?;
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)?;
        if &header[..4] != MAGIC {
            return Err(corrupt(path, "bad segment magic"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(corrupt(path, &format!("unsupported segment version {version}")));
        }
        let word = |i: usize| u64::from_le_bytes(header[8 + i * 8..16 + i * 8].try_into().unwrap());
        let (count, min, max, bloom_capacity, bloom_words) =
            (word(0), word(1), word(2), word(3), word(4));
        // size sanity against the real file length before any
        // allocation — a corrupt header must land on InvalidData, not
        // an arithmetic overflow or a huge-vec OOM
        let header_err = || corrupt(path, "bad segment header");
        let bloom_bytes = bloom_words.checked_mul(8).ok_or_else(header_err)?;
        let keys_off = HEADER_BYTES.checked_add(bloom_bytes).ok_or_else(header_err)?;
        let marks_off =
            count.checked_mul(8).and_then(|b| keys_off.checked_add(b)).ok_or_else(header_err)?;
        let expect = marks_off.checked_add(count).ok_or_else(header_err)?;
        if file.metadata()?.len() < expect {
            return Err(corrupt(path, "truncated segment"));
        }
        let mut raw = vec![0u8; bloom_bytes as usize];
        file.read_exact(&mut raw)?;
        let words: Vec<u64> =
            raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        let bloom = SplitBloom::from_words(bloom_capacity as usize, &words)
            .ok_or_else(|| corrupt(path, "bad bloom sidecar"))?;
        Ok(Segment { file, path: path.to_path_buf(), count, min, max, bloom, keys_off, marks_off })
    }

    pub fn len(&self) -> usize {
        self.count as usize
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Mark byte of `key`, if present: fence check, Bloom sidecar,
    /// then binary search over the on-disk key region.
    pub fn get(&self, key: u64) -> io::Result<Option<u8>> {
        if self.count == 0 || key < self.min || key > self.max || !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let (mut lo, mut hi) = (0u64, self.count);
        let mut buf = [0u8; 8];
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            read_at(&self.file, &mut buf, self.keys_off + mid * 8)?;
            let k = u64::from_le_bytes(buf);
            match k.cmp(&key) {
                std::cmp::Ordering::Equal => {
                    let mut m = [0u8; 1];
                    read_at(&self.file, &mut m, self.marks_off + mid)?;
                    return Ok(Some(m[0]));
                }
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        Ok(None)
    }

    /// Stream the entries in key order (compaction input).
    pub fn stream(&self) -> SegmentIter<'_> {
        SegmentIter { seg: self, next: 0, buf: Vec::new(), buf_base: 0 }
    }
}

const ITER_CHUNK: u64 = 4096;

/// Buffered sequential reader over one segment; not an `Iterator` so
/// I/O errors propagate instead of hiding inside `Option`.
pub struct SegmentIter<'a> {
    seg: &'a Segment,
    next: u64,
    buf: Vec<(u64, u8)>,
    buf_base: u64,
}

impl SegmentIter<'_> {
    pub fn next_entry(&mut self) -> io::Result<Option<(u64, u8)>> {
        if self.next >= self.seg.count {
            return Ok(None);
        }
        let idx = (self.next - self.buf_base) as usize;
        if self.buf.is_empty() || idx >= self.buf.len() {
            self.refill()?;
        }
        let entry = self.buf[(self.next - self.buf_base) as usize];
        self.next += 1;
        Ok(Some(entry))
    }

    fn refill(&mut self) -> io::Result<()> {
        let n = ITER_CHUNK.min(self.seg.count - self.next);
        let mut keys = vec![0u8; (n * 8) as usize];
        read_at(&self.seg.file, &mut keys, self.seg.keys_off + self.next * 8)?;
        let mut marks = vec![0u8; n as usize];
        read_at(&self.seg.file, &mut marks, self.seg.marks_off + self.next)?;
        self.buf = keys
            .chunks_exact(8)
            .zip(&marks)
            .map(|(k, &m)| (u64::from_le_bytes(k.try_into().unwrap()), m))
            .collect();
        self.buf_base = self.next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wave-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        // segments are create_new; clear leftovers from a crashed run
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn write_open_probe() {
        let entries: Vec<(u64, u8)> = (0..5000u64).map(|k| (k * 3, (k % 3 + 1) as u8)).collect();
        let path = tmp("probe.wseg");
        SegmentWriter::write(&path, &entries).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.len(), 5000);
        for &(k, m) in entries.iter().step_by(97) {
            assert_eq!(seg.get(k).unwrap(), Some(m));
        }
        assert_eq!(seg.get(1).unwrap(), None); // between fences, absent
        assert_eq!(seg.get(u64::MAX).unwrap(), None); // past max fence
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn stream_reproduces_entries_in_order() {
        let entries: Vec<(u64, u8)> = (0..10_000u64).map(|k| (k * 7 + 1, 0b10)).collect();
        let path = tmp("stream.wseg");
        SegmentWriter::write(&path, &entries).unwrap();
        let seg = Segment::open(&path).unwrap();
        let mut it = seg.stream();
        let mut got = Vec::new();
        while let Some(e) = it.next_entry().unwrap() {
            got.push(e);
        }
        assert_eq!(got, entries);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_segment_round_trips() {
        let path = tmp("empty.wseg");
        SegmentWriter::write(&path, &[]).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert!(seg.is_empty());
        assert_eq!(seg.get(0).unwrap(), None);
        assert!(seg.stream().next_entry().unwrap().is_none());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rewriting_an_existing_segment_path_fails_loudly() {
        let path = tmp("twice.wseg");
        SegmentWriter::write(&path, &[(1, 1)]).unwrap();
        let err = SegmentWriter::write(&path, &[(2, 1)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn oversized_header_counts_are_rejected() {
        // header layout: magic 0..4, version 4..8, count 8..16,
        // min 16..24, max 24..32, bloom_capacity 32..40, bloom_words 40..48
        let path = tmp("huge.wseg");
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // count: overflows count*8
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&8u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // bloom_words: overflows *8
        std::fs::write(&path, &buf).unwrap();
        assert_eq!(Segment::open(&path).unwrap_err().kind(), io::ErrorKind::InvalidData);

        // non-overflowing but far larger than the file: must be caught
        // by the length check before the bloom buffer is allocated
        buf[8..16].copy_from_slice(&(1u64 << 40).to_le_bytes()); // count
        buf[40..48].copy_from_slice(&1u64.to_le_bytes()); // bloom_words
        buf.extend_from_slice(&0u64.to_le_bytes()); // the one bloom word
        std::fs::write(&path, &buf).unwrap();
        assert_eq!(Segment::open(&path).unwrap_err().kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = tmp("bad.wseg");
        std::fs::write(&path, b"NOPE00000000000000000000000000000000000000000000").unwrap();
        let err = Segment::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).unwrap();
    }
}
