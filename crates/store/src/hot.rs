//! Hot in-memory tier: an open-addressing table of packed visit pairs
//! under clock (second-chance) eviction.
//!
//! Each slot is 9 bytes — a packed `(ConfigId << 32 | auto_state)` key
//! plus a meta byte holding the two phase mark bits, an occupancy bit
//! (key 0 is a valid pair, so occupancy cannot be a key sentinel), and
//! the clock's reference bit. The table never resizes: its capacity is
//! the largest power of two fitting the configured byte budget, and
//! when occupancy reaches 75% a batch eviction sweep frees a quarter of
//! the capacity in one pass, handing the victims to the caller (which
//! spills them to a cold segment).
//!
//! Eviction is the textbook second chance: the hand sweeps slots,
//! clearing the reference bit on entries that have it and evicting the
//! ones that don't, so recently re-marked pairs survive. Because open
//! addressing cannot delete in place without breaking probe chains, the
//! sweep collects victims and then rebuilds the table from the
//! survivors — O(capacity), amortized over the quarter-capacity of
//! inserts that preceded it. The probe hash is a fixed splitmix64, so
//! the full eviction/spill sequence is deterministic: identical search
//! order in, identical spill counters out, on any machine.

use crate::bloom::mix64;

/// Bytes one slot occupies (8-byte key + meta byte).
pub const SLOT_BYTES: usize = 9;

const OCCUPIED: u8 = 0x80;
const REF: u8 = 0x40;
const MARKS: u8 = 0x03;

/// Fixed-capacity clock-evicted hash table; see the module docs.
#[derive(Clone, Debug)]
pub struct ClockTable {
    keys: Vec<u64>,
    meta: Vec<u8>,
    mask: usize,
    len: usize,
    hand: usize,
    max_len: usize,
}

impl ClockTable {
    /// Table whose slots fit in `mem_bytes` (min 64 slots).
    pub fn with_budget(mem_bytes: usize) -> ClockTable {
        let slots = (mem_bytes / SLOT_BYTES).max(64);
        // largest power of two <= slots, so the budget is never exceeded
        let cap = 1usize << (usize::BITS - 1 - slots.leading_zeros());
        ClockTable {
            keys: vec![0; cap],
            meta: vec![0; cap],
            mask: cap - 1,
            len: 0,
            hand: 0,
            max_len: 0,
        }
    }

    #[inline]
    fn start(&self, key: u64) -> usize {
        // seed differs from the Bloom front's so the two don't correlate
        mix64(key ^ 0x5bf0_3635_dcaa_b6ec) as usize & self.mask
    }

    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Historic occupancy high-water mark.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Heap footprint of the slot arrays.
    pub fn bytes(&self) -> usize {
        self.keys.len() * SLOT_BYTES
    }

    /// True once occupancy reaches 75% — evict before inserting more.
    pub fn is_full(&self) -> bool {
        self.len * 4 >= self.capacity() * 3
    }

    /// Mark bits of `key`, if resident. Read-only: does not set the
    /// reference bit (callers on the `&self` probe path stay pure).
    pub fn get(&self, key: u64) -> Option<u8> {
        let mut i = self.start(key);
        loop {
            if self.meta[i] & OCCUPIED == 0 {
                return None;
            }
            if self.keys[i] == key {
                return Some(self.meta[i] & MARKS);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// If `key` is resident: OR `mask` into its marks, set the
    /// reference bit, and return the *previous* marks. `None` when
    /// absent (insert via [`ClockTable::insert`] after making room).
    pub fn touch_or(&mut self, key: u64, mask: u8) -> Option<u8> {
        let mut i = self.start(key);
        loop {
            if self.meta[i] & OCCUPIED == 0 {
                return None;
            }
            if self.keys[i] == key {
                let old = self.meta[i] & MARKS;
                self.meta[i] |= (mask & MARKS) | REF;
                return Some(old);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert an absent key. Callers must check [`ClockTable::is_full`]
    /// first and evict; the 75% ceiling guarantees a free slot here.
    pub fn insert(&mut self, key: u64, marks: u8) {
        debug_assert!(self.len < self.capacity());
        self.insert_raw(key, (marks & MARKS) | REF);
        self.max_len = self.max_len.max(self.len);
    }

    fn insert_raw(&mut self, key: u64, meta: u8) {
        let mut i = self.start(key);
        while self.meta[i] & OCCUPIED != 0 {
            debug_assert_ne!(self.keys[i], key, "insert of resident key");
            i = (i + 1) & self.mask;
        }
        self.keys[i] = key;
        self.meta[i] = OCCUPIED | meta;
        self.len += 1;
    }

    /// Second-chance sweep: free up to `target` slots, returning the
    /// victims as `(key, marks)`. Entries whose reference bit is set
    /// survive one sweep (the bit is cleared); two full revolutions
    /// bound the scan. The table is rebuilt without the victims so
    /// probe chains stay intact.
    pub fn evict(&mut self, target: usize) -> Vec<(u64, u8)> {
        let cap = self.capacity();
        let target = target.min(self.len);
        if target == 0 {
            return Vec::new();
        }
        let mut victims = Vec::with_capacity(target);
        let mut is_victim = vec![false; cap];
        let mut i = self.hand & self.mask;
        let mut examined = 0usize;
        while victims.len() < target && examined < cap * 2 {
            if self.meta[i] & OCCUPIED != 0 && !is_victim[i] {
                if self.meta[i] & REF != 0 {
                    self.meta[i] &= !REF;
                } else {
                    is_victim[i] = true;
                    victims.push((self.keys[i], self.meta[i] & MARKS));
                }
            }
            i = (i + 1) & self.mask;
            examined += 1;
        }
        self.hand = i;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_meta = std::mem::replace(&mut self.meta, vec![0; cap]);
        self.len = 0;
        for j in 0..cap {
            if old_meta[j] & OCCUPIED != 0 && !is_victim[j] {
                self.insert_raw(old_keys[j], old_meta[j] & !OCCUPIED);
            }
        }
        victims
    }

    /// Drop every entry (between NDFS cores); `max_len` survives.
    pub fn clear(&mut self) {
        self.keys.fill(0);
        self.meta.fill(0);
        self.len = 0;
        self.hand = 0;
    }

    /// Resident `(key, marks)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.keys
            .iter()
            .zip(&self.meta)
            .filter(|(_, &m)| m & OCCUPIED != 0)
            .map(|(&k, &m)| (k, m & MARKS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_caps_capacity_at_a_power_of_two() {
        let t = ClockTable::with_budget(10_000);
        assert_eq!(t.capacity(), 1024); // 10_000 / 9 = 1111 -> 1024
        assert!(t.bytes() <= 10_000);
        assert_eq!(ClockTable::with_budget(0).capacity(), 64);
    }

    #[test]
    fn insert_get_touch_roundtrip_including_key_zero() {
        let mut t = ClockTable::with_budget(1024);
        assert_eq!(t.get(0), None);
        t.insert(0, 0b01);
        t.insert(7, 0b10);
        assert_eq!(t.get(0), Some(0b01));
        assert_eq!(t.get(7), Some(0b10));
        assert_eq!(t.touch_or(0, 0b10), Some(0b01));
        assert_eq!(t.get(0), Some(0b11));
        assert_eq!(t.touch_or(99, 0b01), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn eviction_frees_slots_and_prefers_unreferenced() {
        let mut t = ClockTable::with_budget(64 * SLOT_BYTES); // 64 slots
        for k in 0..40u64 {
            t.insert(k, 0b01);
        }
        // re-touch half: they carry the reference bit into the sweep
        for k in 0..20u64 {
            t.touch_or(k, 0b01);
        }
        // newly inserted entries also start referenced; age them once
        let first = t.evict(10);
        assert_eq!(first.len(), 10);
        assert_eq!(t.len(), 30);
        for (k, m) in &first {
            assert_eq!(t.get(*k), None);
            assert_eq!(*m, 0b01);
        }
        // survivors keep their marks and stay probeable after rebuild
        let survivors: Vec<u64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(survivors.len(), 30);
        for k in survivors {
            assert_eq!(t.get(k), Some(0b01));
        }
    }

    #[test]
    fn eviction_is_deterministic() {
        let run = || {
            let mut t = ClockTable::with_budget(64 * SLOT_BYTES);
            for k in 0..48u64 {
                t.insert(k * 17, (k % 2 + 1) as u8);
            }
            t.evict(16)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_keeps_high_water_mark() {
        let mut t = ClockTable::with_budget(1024);
        for k in 0..50u64 {
            t.insert(k, 1);
        }
        assert_eq!(t.max_len(), 50);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.max_len(), 50);
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn full_table_eviction_terminates_even_when_all_referenced() {
        let mut t = ClockTable::with_budget(64 * SLOT_BYTES);
        for k in 0..48u64 {
            t.insert(k, 1);
            t.touch_or(k, 1); // everyone referenced
        }
        let v = t.evict(48);
        assert_eq!(v.len(), 48, "second revolution must evict");
        assert!(t.is_empty());
    }
}
