//! The tiered visited-pair set: Bloom front → clock hot tier → sorted
//! spill segments, with a manifest for checkpoint round-trips.
//!
//! [`TieredVisits`] implements the same mark semantics as the in-core
//! `VisitTable` (two phase bits per packed `u64` pair key, marks
//! monotone until [`TieredVisits::clear`]) while bounding resident
//! memory. The decision ladder for a probe is:
//!
//! 1. **hot hit** — answer from the clock table. Invariant: a resident
//!    key's mark bits are a superset of every cold copy of that key,
//!    so the hot answer is final.
//! 2. **Bloom miss** — the key was never marked since the last clear;
//!    definitely unvisited, no disk touched (`bloom_skips`).
//! 3. **cold probe** — newest segment first, stop at the first hit
//!    (`cold_probes`); re-promotion ORs the cold marks into the hot
//!    insert, which is what maintains invariant 1.
//!
//! A `mark` of a non-resident key always (re-)inserts it hot; when the
//! hot tier is full a second-chance sweep spills a quarter of its
//! capacity as one sorted segment, and once the segment count passes
//! `TierConfig::segment_limit` a k-way merge compacts the cold tier to
//! a single run (duplicate keys OR their marks — marks are monotone,
//! so the OR is exact). Every hash involved is fixed, so spill and
//! compaction counters are deterministic for a given mark sequence.
//!
//! The store counts distinct keys *exactly* (`distinct`): a Bloom miss
//! is a definite "new key", and a Bloom maybe is resolved by the exact
//! cold probe — false positives cost a probe, never a miscount.
//!
//! Spill I/O failures (disk full, unlinked spill dir) panic: the trait
//! contract has no error channel, and a store that silently dropped
//! visited marks would turn the NDFS into a liveness bug.

use crate::bloom::SplitBloom;
use crate::hot::ClockTable;
use crate::segment::{Segment, SegmentWriter};
use crate::ser::{fnv1a, ByteReader, ByteWriter};
use std::cell::Cell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tier sizing and placement knobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierConfig {
    /// Byte budget for the hot tier's slot arrays (the Bloom front
    /// adds ~2 bytes per distinct key on top; see DESIGN.md §10).
    pub mem_bytes: usize,
    /// Parent directory for spill segments; `None` uses the system
    /// temp dir. Each store creates its own private subdirectory under
    /// the parent (sibling stores sharing one parent never collide),
    /// removed when the store drops.
    pub spill_dir: Option<PathBuf>,
    /// Cold segment count that triggers a full-merge compaction.
    pub segment_limit: usize,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig { mem_bytes: 64 << 20, spill_dir: None, segment_limit: 8 }
    }
}

/// Monotone event counters, surfaced into `SearchProfile`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Pairs written to spill segments (re-spills of re-promoted keys
    /// count again; this measures I/O volume, not distinct keys).
    pub spill_pairs: u64,
    /// Spill segments written (compaction outputs included).
    pub spill_segments: u64,
    /// Cold-tier merge compactions run.
    pub compactions: u64,
    /// Probes answered "definitely absent" by the Bloom front.
    pub bloom_skips: u64,
    /// Probes that had to search the cold tier.
    pub cold_probes: u64,
}

/// Process-unique suffix for unnamed spill directories.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct SpillDir {
    path: PathBuf,
    /// We created it privately — remove the whole directory on drop
    /// (unless a manifest detached it for a later reopen).
    owned: bool,
    next_seq: u64,
}

impl SpillDir {
    fn create(config: &TierConfig) -> io::Result<SpillDir> {
        // Every store gets a private subdirectory (pid + process-wide
        // counter): sibling stores built from one TierConfig — parallel
        // units, or concurrent processes sharing one --spill-dir —
        // must never see each other's segment paths, or a spill in one
        // would truncate a segment a sibling is reading.
        let n = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let leaf = format!("wave-spill-{}-{n}", std::process::id());
        let path = match &config.spill_dir {
            Some(dir) => dir.join(leaf),
            None => std::env::temp_dir().join(leaf),
        };
        std::fs::create_dir_all(&path)?;
        Ok(SpillDir { path, owned: true, next_seq: 0 })
    }

    fn next_segment_path(&mut self) -> PathBuf {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.path.join(format!("seg-{seq:06}.wseg"))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        if self.owned {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// The tiered visited-pair set; see the module docs.
#[derive(Debug)]
pub struct TieredVisits {
    config: TierConfig,
    front: SplitBloom,
    hot: ClockTable,
    /// Oldest → newest; probed newest-first.
    cold: Vec<Segment>,
    dir: SpillDir,
    /// Exact count of distinct keys marked since the last clear.
    distinct: usize,
    max_distinct: usize,
    max_resident: usize,
    /// Entries currently on disk (duplicates across segments counted).
    spilled: usize,
    max_spilled: usize,
    spill_pairs: u64,
    spill_segments: u64,
    compactions: u64,
    /// Wall time in segment writes / merge compactions. Diagnostics
    /// for the span profiler — not persisted, not part of the
    /// deterministic [`TierCounters`] contract.
    spill_ns: u64,
    compact_ns: u64,
    // read-path counters need interior mutability: is_marked is &self
    bloom_skips: Cell<u64>,
    cold_probes: Cell<u64>,
}

impl TieredVisits {
    pub fn new(config: TierConfig) -> io::Result<TieredVisits> {
        let dir = SpillDir::create(&config)?;
        let hot = ClockTable::with_budget(config.mem_bytes);
        // front sized to the hot capacity initially; grows with distinct
        let front = SplitBloom::with_capacity(hot.capacity());
        Ok(TieredVisits {
            config,
            front,
            hot,
            cold: Vec::new(),
            dir,
            distinct: 0,
            max_distinct: 0,
            max_resident: 0,
            spilled: 0,
            max_spilled: 0,
            spill_pairs: 0,
            spill_segments: 0,
            compactions: 0,
            spill_ns: 0,
            compact_ns: 0,
            bloom_skips: Cell::new(0),
            cold_probes: Cell::new(0),
        })
    }

    /// Mark `key` with `mask`; true when the masked bits were already
    /// set (same contract as `VisitTable::mark`).
    pub fn mark(&mut self, key: u64, mask: u8) -> bool {
        if let Some(old) = self.hot.touch_or(key, mask) {
            return old & mask != 0;
        }
        let cold_marks = if self.front.may_contain(key) {
            self.cold_probes.set(self.cold_probes.get() + 1);
            self.probe_cold(key)
        } else {
            self.bloom_skips.set(self.bloom_skips.get() + 1);
            None
        };
        if cold_marks.is_none() {
            self.distinct += 1;
            self.max_distinct = self.max_distinct.max(self.distinct);
            if self.distinct > self.front.capacity() {
                self.grow_front();
            }
            self.front.insert(key);
        }
        let merged = cold_marks.unwrap_or(0) | mask;
        self.insert_hot(key, merged);
        cold_marks.is_some_and(|m| m & mask != 0)
    }

    /// Are `mask`'s bits set for `key`? Pure read: no promotion, no
    /// reference-bit update.
    pub fn is_marked(&self, key: u64, mask: u8) -> bool {
        if let Some(marks) = self.hot.get(key) {
            return marks & mask != 0;
        }
        if !self.front.may_contain(key) {
            self.bloom_skips.set(self.bloom_skips.get() + 1);
            return false;
        }
        self.cold_probes.set(self.cold_probes.get() + 1);
        self.probe_cold(key).is_some_and(|m| m & mask != 0)
    }

    /// Drop all marks (between NDFS cores). High-water marks and event
    /// counters survive; segment files are deleted.
    pub fn clear(&mut self) {
        self.hot.clear();
        for seg in self.cold.drain(..) {
            let _ = std::fs::remove_file(seg.path());
        }
        self.front.clear();
        self.distinct = 0;
        self.spilled = 0;
    }

    /// Max distinct keys ever marked between clears (the paper's
    /// "Max. trie size" column).
    pub fn max_distinct(&self) -> usize {
        self.max_distinct
    }

    /// Pairs currently resident in the hot tier.
    pub fn resident(&self) -> usize {
        self.hot.len()
    }

    /// High-water mark of hot-tier residency.
    pub fn max_resident(&self) -> usize {
        self.hot.max_len().max(self.max_resident)
    }

    /// Entries currently in spill segments (duplicates included).
    pub fn spilled(&self) -> usize {
        self.spilled
    }

    /// High-water mark of on-disk entries.
    pub fn max_spilled(&self) -> usize {
        self.max_spilled
    }

    /// Hot-tier byte budget actually allocated.
    pub fn resident_bytes(&self) -> usize {
        self.hot.bytes() + self.front.bytes()
    }

    pub fn counters(&self) -> TierCounters {
        TierCounters {
            spill_pairs: self.spill_pairs,
            spill_segments: self.spill_segments,
            compactions: self.compactions,
            bloom_skips: self.bloom_skips.get(),
            cold_probes: self.cold_probes.get(),
        }
    }

    pub fn config(&self) -> &TierConfig {
        &self.config
    }

    /// Wall time spent in (segment writes, merge compactions), in
    /// nanoseconds since construction. Not persisted across reopen.
    pub fn spill_timers(&self) -> (u64, u64) {
        (self.spill_ns, self.compact_ns)
    }

    fn probe_cold(&self, key: u64) -> Option<u8> {
        // newest first: invariant 1 makes the newest copy a superset
        for seg in self.cold.iter().rev() {
            let got = seg.get(key).unwrap_or_else(|e| {
                panic!("wave-store: cold probe of {} failed: {e}", seg.path().display())
            });
            if got.is_some() {
                return got;
            }
        }
        None
    }

    fn insert_hot(&mut self, key: u64, marks: u8) {
        if self.hot.is_full() {
            self.spill();
        }
        self.hot.insert(key, marks);
        self.max_resident = self.max_resident.max(self.hot.len());
    }

    fn spill(&mut self) {
        let t0 = std::time::Instant::now();
        let target = (self.hot.capacity() / 4).max(1);
        let mut victims = self.hot.evict(target);
        if victims.is_empty() {
            return;
        }
        victims.sort_unstable_by_key(|&(k, _)| k);
        let path = self.dir.next_segment_path();
        SegmentWriter::write(&path, &victims)
            .unwrap_or_else(|e| panic!("wave-store: spill to {} failed: {e}", path.display()));
        let seg = Segment::open(&path)
            .unwrap_or_else(|e| panic!("wave-store: reopen of {} failed: {e}", path.display()));
        self.cold.push(seg);
        self.spill_pairs += victims.len() as u64;
        self.spill_segments += 1;
        self.spilled += victims.len();
        self.max_spilled = self.max_spilled.max(self.spilled);
        self.spill_ns += t0.elapsed().as_nanos() as u64;
        if self.cold.len() > self.config.segment_limit {
            self.compact();
        }
    }

    /// Merge every cold segment into one sorted run, ORing the marks of
    /// duplicate keys (exact, since marks are monotone between clears).
    fn compact(&mut self) {
        let t0 = std::time::Instant::now();
        let merged =
            self.merge_cold().unwrap_or_else(|e| panic!("wave-store: compaction read failed: {e}"));
        for seg in self.cold.drain(..) {
            let _ = std::fs::remove_file(seg.path());
        }
        let path = self.dir.next_segment_path();
        SegmentWriter::write(&path, &merged).unwrap_or_else(|e| {
            panic!("wave-store: compaction write to {} failed: {e}", path.display())
        });
        let seg = Segment::open(&path)
            .unwrap_or_else(|e| panic!("wave-store: reopen of {} failed: {e}", path.display()));
        self.spilled = seg.len();
        self.max_spilled = self.max_spilled.max(self.spilled);
        self.cold.push(seg);
        self.compactions += 1;
        self.compact_ns += t0.elapsed().as_nanos() as u64;
    }

    fn merge_cold(&self) -> io::Result<Vec<(u64, u8)>> {
        let mut iters: Vec<_> = self.cold.iter().map(|s| s.stream()).collect();
        let mut heads: Vec<Option<(u64, u8)>> = Vec::with_capacity(iters.len());
        for it in &mut iters {
            heads.push(it.next_entry()?);
        }
        let mut out: Vec<(u64, u8)> = Vec::new();
        while let Some(min) = heads.iter().flatten().map(|&(k, _)| k).min() {
            let mut marks = 0u8;
            for (it, head) in iters.iter_mut().zip(&mut heads) {
                if let Some((k, m)) = *head {
                    if k == min {
                        marks |= m;
                        *head = it.next_entry()?;
                    }
                }
            }
            out.push((min, marks));
        }
        Ok(out)
    }

    fn grow_front(&mut self) {
        let mut front = SplitBloom::with_capacity(self.distinct * 2);
        for (k, _) in self.hot.iter() {
            front.insert(k);
        }
        for seg in &self.cold {
            let mut it = seg.stream();
            loop {
                match it.next_entry() {
                    Ok(Some((k, _))) => front.insert(k),
                    Ok(None) => break,
                    Err(e) => panic!("wave-store: bloom rebuild scan failed: {e}"),
                }
            }
        }
        self.front = front;
    }

    // --- checkpoint round-trip -------------------------------------

    const MANIFEST_VERSION: u32 = 1;

    /// Serialize the tier state to a manifest blob. The hot tier is
    /// flushed to one final segment first, so the blob plus the spill
    /// directory's segment files are the complete state; pass the blob
    /// to [`TieredVisits::reopen`] to resume. After `persist` the spill
    /// directory is detached from drop-cleanup whenever it holds
    /// segments (a later reopen needs the files).
    pub fn persist(&mut self) -> io::Result<Vec<u8>> {
        let mut resident: Vec<(u64, u8)> = self.hot.iter().collect();
        if !resident.is_empty() {
            resident.sort_unstable_by_key(|&(k, _)| k);
            let path = self.dir.next_segment_path();
            SegmentWriter::write(&path, &resident)?;
            self.cold.push(Segment::open(&path)?);
            self.spilled += resident.len();
            self.max_spilled = self.max_spilled.max(self.spilled);
            self.hot.clear();
        }
        if !self.cold.is_empty() {
            self.dir.owned = false; // survive drop for the reopen
        }
        let mut w = ByteWriter::new();
        w.u32(Self::MANIFEST_VERSION);
        w.str(&self.dir.path.to_string_lossy());
        w.u64(self.dir.next_seq);
        w.u64(self.cold.len() as u64);
        for seg in &self.cold {
            let name = seg.path().file_name().unwrap_or_default().to_string_lossy();
            w.str(&name);
        }
        for v in [
            self.distinct as u64,
            self.max_distinct as u64,
            self.max_resident as u64,
            self.spilled as u64,
            self.max_spilled as u64,
            self.spill_pairs,
            self.spill_segments,
            self.compactions,
            self.bloom_skips.get(),
            self.cold_probes.get(),
        ] {
            w.u64(v);
        }
        let payload = w.into_inner();
        let mut framed = ByteWriter::new();
        framed.u64(fnv1a(&payload));
        framed.bytes(&payload);
        Ok(framed.into_inner())
    }

    /// Rebuild a store from a [`TieredVisits::persist`] blob. The
    /// segment files must still exist in the manifested directory; the
    /// Bloom front is rebuilt by scanning them, and the hot tier starts
    /// empty (keys re-promote on first touch).
    pub fn reopen(config: TierConfig, blob: &[u8]) -> io::Result<TieredVisits> {
        let bad = |what: &str| {
            io::Error::new(io::ErrorKind::InvalidData, format!("tier manifest: {what}"))
        };
        let mut framed = ByteReader::new(blob);
        let sum = framed.u64().ok_or_else(|| bad("truncated"))?;
        let payload = framed.bytes().ok_or_else(|| bad("truncated"))?;
        if fnv1a(payload) != sum {
            return Err(bad("checksum mismatch"));
        }
        let mut r = ByteReader::new(payload);
        if r.u32() != Some(Self::MANIFEST_VERSION) {
            return Err(bad("unsupported version"));
        }
        let dir_path = PathBuf::from(r.str().ok_or_else(|| bad("truncated"))?);
        let next_seq = r.u64().ok_or_else(|| bad("truncated"))?;
        let n_segs = r.u64().ok_or_else(|| bad("truncated"))?;
        let mut names = Vec::new();
        for _ in 0..n_segs {
            names.push(r.str().ok_or_else(|| bad("truncated"))?.to_string());
        }
        let mut nums = [0u64; 10];
        for slot in &mut nums {
            *slot = r.u64().ok_or_else(|| bad("truncated"))?;
        }
        std::fs::create_dir_all(&dir_path)?;
        // Segments written after the manifest was taken (a crash between
        // persist and exit leaves them) are not part of this state, and
        // a stale file at a future sequence number would fail the
        // create_new spill path — drop them. The directory is private to
        // one store, so anything unlisted is ours to delete.
        for entry in std::fs::read_dir(&dir_path)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".wseg") && !names.iter().any(|n| n.as_str() == name) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        let mut cold = Vec::with_capacity(names.len());
        for name in &names {
            cold.push(Segment::open(&dir_path.join(name))?);
        }
        let hot = ClockTable::with_budget(config.mem_bytes);
        let mut store = TieredVisits {
            front: SplitBloom::with_capacity((nums[0] as usize * 2).max(hot.capacity())),
            hot,
            cold,
            dir: SpillDir { path: dir_path, owned: false, next_seq },
            distinct: nums[0] as usize,
            max_distinct: nums[1] as usize,
            max_resident: nums[2] as usize,
            spilled: nums[3] as usize,
            max_spilled: nums[4] as usize,
            spill_pairs: nums[5],
            spill_segments: nums[6],
            compactions: nums[7],
            spill_ns: 0,
            compact_ns: 0,
            bloom_skips: Cell::new(nums[8]),
            cold_probes: Cell::new(nums[9]),
            config,
        };
        // rebuild the front from the tier that can enumerate members
        let mut front = std::mem::replace(&mut store.front, SplitBloom::with_capacity(64));
        for seg in &store.cold {
            let mut it = seg.stream();
            while let Some((k, _)) = it.next_entry()? {
                front.insert(k);
            }
        }
        store.front = front;
        Ok(store)
    }

    /// Spill directory in use (diagnostics and tests).
    pub fn spill_path(&self) -> &Path {
        &self.dir.path
    }

    /// Cold segments currently open (diagnostics and tests).
    pub fn segment_count(&self) -> usize {
        self.cold.len()
    }
}

impl Drop for TieredVisits {
    fn drop(&mut self) {
        if !self.dir.owned {
            return; // persisted (or user-directed) segments stay
        }
        for seg in self.cold.drain(..) {
            let _ = std::fs::remove_file(seg.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hot::SLOT_BYTES;

    const STICK: u8 = 0b01;
    const CANDY: u8 = 0b10;

    fn tiny() -> TierConfig {
        // 128 slots -> spills after ~96 inserts
        TierConfig { mem_bytes: 128 * SLOT_BYTES, spill_dir: None, segment_limit: 3 }
    }

    #[test]
    fn marks_behave_like_a_visit_table_without_spilling() {
        let mut t = TieredVisits::new(TierConfig::default()).unwrap();
        assert!(!t.mark(0, STICK)); // key 0 is a valid pair
        assert!(t.mark(0, STICK));
        assert!(!t.is_marked(0, CANDY));
        assert!(!t.mark(0, CANDY));
        assert!(t.is_marked(0, CANDY));
        assert_eq!(t.max_distinct(), 1);
        t.clear();
        assert!(!t.is_marked(0, STICK));
        assert!(!t.mark(0, STICK));
        assert_eq!(t.max_distinct(), 1);
    }

    #[test]
    fn spilled_keys_stay_marked_and_counters_fire() {
        let mut t = TieredVisits::new(tiny()).unwrap();
        let n = 5000u64;
        for k in 0..n {
            assert!(!t.mark(k, STICK), "first mark of {k} is fresh");
        }
        let c = t.counters();
        assert!(c.spill_segments > 0, "tiny budget must spill");
        assert!(c.spill_pairs > 0);
        assert!(c.compactions > 0, "segment_limit 3 must compact");
        assert!(t.max_spilled() > 0);
        assert_eq!(t.max_distinct(), n as usize);
        // every key still answers, resident or spilled
        for k in 0..n {
            assert!(t.is_marked(k, STICK), "key {k} lost after spill");
            assert!(!t.is_marked(k, CANDY));
        }
        // re-marking is a hit everywhere, and candy is independent
        for k in 0..n {
            assert!(t.mark(k, STICK), "re-mark of {k} must hit");
        }
        for k in (0..n).step_by(7) {
            assert!(!t.mark(k, CANDY), "candy bit of {k} was never set");
            assert!(t.is_marked(k, CANDY));
        }
        assert_eq!(t.max_distinct(), n as usize, "no double counting across tiers");
    }

    #[test]
    fn clear_deletes_segments_and_resets_membership() {
        let mut t = TieredVisits::new(tiny()).unwrap();
        for k in 0..2000u64 {
            t.mark(k, STICK);
        }
        assert!(t.segment_count() > 0);
        let dir = t.spill_path().to_path_buf();
        t.clear();
        assert_eq!(t.segment_count(), 0);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "segment files deleted");
        assert_eq!(t.spilled(), 0);
        for k in 0..2000u64 {
            assert!(!t.is_marked(k, STICK));
        }
        assert_eq!(t.max_distinct(), 2000, "historic max survives clear");
        assert!(t.max_spilled() > 0);
    }

    #[test]
    fn spill_counters_are_deterministic() {
        let run = || {
            let mut t = TieredVisits::new(tiny()).unwrap();
            for k in 0..3000u64 {
                t.mark(k.wrapping_mul(0x9e3779b97f4a7c15), if k % 2 == 0 { STICK } else { CANDY });
            }
            (t.counters(), t.max_resident(), t.max_spilled(), t.max_distinct())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sibling_stores_share_a_spill_dir_without_collisions() {
        let dir = std::env::temp_dir().join(format!("wave-tier-shared-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = TierConfig { spill_dir: Some(dir.clone()), ..tiny() };
        let mut a = TieredVisits::new(config.clone()).unwrap();
        let mut b = TieredVisits::new(config).unwrap();
        assert_ne!(a.spill_path(), b.spill_path(), "each store gets a private subdirectory");
        // interleaved spilling from both stores: even keys in a, odd in b
        for k in 0..3000u64 {
            a.mark(k * 2, STICK);
            b.mark(k * 2 + 1, CANDY);
        }
        assert!(a.counters().spill_segments > 0 && b.counters().spill_segments > 0);
        for k in 0..3000u64 {
            assert!(a.is_marked(k * 2, STICK), "a lost its own key {k}");
            assert!(!a.is_marked(k * 2 + 1, CANDY), "b's marks leaked into a");
            assert!(b.is_marked(k * 2 + 1, CANDY), "b lost its own key {k}");
            assert!(!b.is_marked(k * 2, STICK), "a's marks leaked into b");
        }
        drop(a);
        drop(b);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "private subdirectories removed on drop"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_reopen_round_trips_marks_and_counters() {
        let dir = std::env::temp_dir().join(format!("wave-tier-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = TierConfig { spill_dir: Some(dir.clone()), ..tiny() };
        let mut t = TieredVisits::new(config.clone()).unwrap();
        for k in 0..2500u64 {
            t.mark(k * 11, STICK);
        }
        for k in 0..500u64 {
            t.mark(k * 11, CANDY);
        }
        let before = (t.counters(), t.max_distinct(), t.max_spilled());
        let blob = t.persist().unwrap();
        drop(t);
        let r = TieredVisits::reopen(config, &blob).unwrap();
        assert_eq!((r.counters(), r.max_distinct(), r.max_spilled()), before);
        for k in 0..2500u64 {
            assert!(r.is_marked(k * 11, STICK), "stick mark of {k} lost in round trip");
            assert_eq!(r.is_marked(k * 11, CANDY), k < 500);
        }
        assert!(!r.is_marked(3, STICK), "absent keys stay absent");
        drop(r);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rejects_corrupt_manifests() {
        let mut t = TieredVisits::new(TierConfig::default()).unwrap();
        t.mark(1, STICK);
        let mut blob = t.persist().unwrap();
        let last = blob.len() - 1;
        blob[last] ^= 0xff;
        assert!(TieredVisits::reopen(TierConfig::default(), &blob).is_err());
    }

    #[test]
    fn unnamed_spill_dir_is_removed_on_drop() {
        let mut t = TieredVisits::new(tiny()).unwrap();
        for k in 0..2000u64 {
            t.mark(k, STICK);
        }
        let dir = t.spill_path().to_path_buf();
        assert!(dir.exists());
        drop(t);
        assert!(!dir.exists(), "private spill dir should be cleaned up");
    }
}
