//! Minimal length-checked binary (de)serialization.
//!
//! Spill segments, tier manifests, and the core checkpoint file all
//! share this tiny little-endian wire layer instead of pulling in a
//! serde stack (the build has no route to crates.io, and the formats
//! are simple enough that explicit framing is clearer anyway). Writers
//! are infallible; readers return `None` on truncation so corrupt or
//! short files surface as a decode failure, never a panic.

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor over a byte slice; every read is bounds-checked.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u64()?;
        let len = usize::try_from(len).ok()?;
        self.take(len)
    }

    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// FNV-1a over a byte slice — the integrity checksum for manifests and
/// checkpoint payloads (cheap, dependency-free, stable across builds).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_strings() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.bytes(b"abc");
        w.str("tiers");
        let buf = w.into_inner();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 1));
        assert_eq!(r.bytes(), Some(&b"abc"[..]));
        assert_eq!(r.str(), Some("tiers"));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_reads_as_none_not_panic() {
        let mut w = ByteWriter::new();
        w.u64(42);
        w.bytes(&[1, 2, 3]);
        let buf = w.into_inner();
        // chop mid-payload: the length prefix promises more than exists
        let mut r = ByteReader::new(&buf[..buf.len() - 2]);
        assert_eq!(r.u64(), Some(42));
        assert_eq!(r.bytes(), None);
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
