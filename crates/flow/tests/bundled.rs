//! The bundled example specs are the lint-clean baseline: the flow
//! analyses must not flag anything in them (CI lints every bundled spec
//! with --deny warnings, and the slice must not look degenerate there).

use std::path::Path;

#[test]
fn bundled_specs_have_no_dead_rules_or_empty_relations() {
    let specs = Path::new(env!("CARGO_MANIFEST_DIR")).join("../apps/specs");
    let mut seen = 0;
    for entry in std::fs::read_dir(&specs).expect("bundled specs dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("wave") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("read spec");
        let spec = wave_spec::parse_spec(&src).expect("bundled spec parses");
        let report = wave_flow::analyze(&spec);
        assert!(report.dead.is_empty(), "{}: dead rules {:?}", path.display(), report.dead);
        assert!(
            report.always_empty.is_empty(),
            "{}: always-empty {:?}",
            path.display(),
            report.always_empty
        );
        assert!(
            report.unreachable_pages.is_empty(),
            "{}: unreachable pages {:?}",
            path.display(),
            report.unreachable_pages
        );
    }
    assert!(seen >= 4, "expected the E1-E4 bundled specs, saw {seen}");
}
