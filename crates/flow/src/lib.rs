//! wave-flow — a fixpoint dataflow framework over wave specs.
//!
//! The framework runs a combined least fixpoint over three joined
//! graphs: page reachability (the page graph restricted to
//! statically-live target edges), relation emptiness (which state /
//! action / input relations can ever hold a tuple), and column value
//! sets (constant propagation over the §3.2 comparison sets). On top of
//! the fixpoint a classification pass names:
//!
//! * **dead rules** — guards refuted by the abstract evaluator, each
//!   with a provenance chain (surfaced as W0601 and pruned from the
//!   verifier's search);
//! * **always-empty relations** (W0602) and **unreachable pages**
//!   (W0603), both consequences of the same facts;
//! * **monotone state relations** — inserted but never deleted (N0604
//!   plus the verifier's delete-skipping fast path and memo-epoch
//!   stabilization).
//!
//! The analyses are *refutation oriented*: every definite answer errs
//! toward "don't know", so anything the report prunes is provably
//! impossible in every run over every database. That is the soundness
//! contract the verifier's slice relies on (DESIGN.md §14).

pub mod absint;
pub mod analyses;
pub mod lattice;

pub use absint::{Env, Facts, Verdict3};
pub use analyses::{
    analyze, cone_of_influence, Cone, DeadRule, EmptyRel, FlowReport, RuleKind, RuleRef,
};
pub use lattice::{fixpoint, Tri, Values, Worklist};
