//! Abstract three-valued evaluation of rule guards.
//!
//! A guard is evaluated against the current [`Facts`] approximation:
//! which relations may hold tuples at all, and which constants each
//! tracked column may carry (the §3.2 comparison sets, run as a
//! constant-propagation lattice). The evaluator is *refutation
//! oriented*: `False` means no run of the spec can ever satisfy the
//! guard, together with a provenance chain saying why; anything it
//! cannot refute degrades to `Unknown`, never the other way around.
//!
//! Within one conjunctive scope the evaluator maintains an equality
//! environment (union-find over variables) whose classes carry *pin
//! sets* — the constants a variable is forced to be among. Pins come
//! from explicit equalities (`x = "go"`), from positive atoms over
//! columns with finite value sets, and transitively through variable
//! equalities; a pin set running dry is a contradiction.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::lattice::{Tri, Values};
use wave_fol::{Atom, Formula, Term};

/// The relation-level facts a guard is evaluated against.
///
/// `tracked` relations (state, action, and non-constant input
/// relations) start empty and are grown by the enclosing fixpoint;
/// everything else (database relations, input constants) is
/// permanently nonempty with ⊤ columns — their contents come from the
/// arbitrary database instance, not from the spec text.
#[derive(Clone, Debug, PartialEq)]
pub struct Facts {
    tracked: BTreeSet<String>,
    nonempty: BTreeSet<String>,
    columns: BTreeMap<(String, usize), Values>,
    /// Post-fixpoint provenance: why a tracked relation is known empty.
    pub empty_reason: BTreeMap<String, String>,
    /// Post-fixpoint provenance: where a tracked column's value set
    /// comes from.
    pub column_source: BTreeMap<String, String>,
}

impl Facts {
    /// ⊥ over the given tracked relations (with their arities).
    pub fn bottom(tracked: impl IntoIterator<Item = (String, usize)>) -> Facts {
        let mut cols = BTreeMap::new();
        let mut rels = BTreeSet::new();
        for (rel, arity) in tracked {
            for col in 0..arity {
                cols.insert((rel.clone(), col), Values::bottom());
            }
            rels.insert(rel);
        }
        Facts {
            tracked: rels,
            nonempty: BTreeSet::new(),
            columns: cols,
            empty_reason: BTreeMap::new(),
            column_source: BTreeMap::new(),
        }
    }

    /// May `rel` hold a tuple at some step of some run?
    pub fn nonempty(&self, rel: &str) -> bool {
        !self.tracked.contains(rel) || self.nonempty.contains(rel)
    }

    /// Over-approximation of the constants column `col` of `rel` can
    /// carry. Untracked relations are ⊤.
    pub fn column(&self, rel: &str, col: usize) -> Values {
        self.columns.get(&(rel.to_string(), col)).cloned().unwrap_or(Values::Top)
    }

    /// Record that `rel` may be populated, with per-column value
    /// contributions; `true` if anything grew.
    pub fn feed(&mut self, rel: &str, cols: &[Values]) -> bool {
        let mut changed = self.tracked.contains(rel) && self.nonempty.insert(rel.to_string());
        for (col, v) in cols.iter().enumerate() {
            if let Some(slot) = self.columns.get_mut(&(rel.to_string(), col)) {
                changed |= slot.join(v);
            }
        }
        changed
    }

    /// Tracked relations still known empty at the current approximation.
    pub fn empty_tracked(&self) -> impl Iterator<Item = &str> {
        self.tracked.iter().filter(|r| !self.nonempty.contains(*r)).map(String::as_str)
    }

    fn why_empty(&self, rel: &str) -> String {
        self.empty_reason
            .get(rel)
            .cloned()
            .unwrap_or_else(|| format!("relation `{rel}` can never hold a tuple"))
    }

    fn why_column(&self, rel: &str, col: usize, values: &Values) -> String {
        let source = self
            .column_source
            .get(rel)
            .cloned()
            .unwrap_or_else(|| "the rules that populate it".to_string());
        format!("column {col} of `{rel}` can only carry {} (from {source})", values.describe())
    }
}

/// One equality class: the pin set and a short provenance trail.
#[derive(Clone, Debug)]
struct Class {
    pin: Values,
    why: Vec<String>,
}

impl Class {
    fn top() -> Class {
        Class { pin: Values::Top, why: Vec::new() }
    }

    /// Narrow the pin set; `Err` with the refutation chain if it dries up.
    fn narrow(&mut self, v: &Values, why: String) -> Result<(), Vec<String>> {
        let met = self.pin.meet(v);
        if met.is_empty() && !self.pin.is_empty() {
            let mut notes = self.why.clone();
            notes.push(why);
            return Err(notes);
        }
        if met != self.pin {
            self.pin = met;
            if self.why.len() < 4 {
                self.why.push(why);
            }
        }
        Ok(())
    }
}

/// The equality environment of one conjunctive scope.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vars: HashMap<String, usize>,
    classes: Vec<Class>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    fn class_of(&mut self, var: &str) -> usize {
        if let Some(&c) = self.vars.get(var) {
            return c;
        }
        self.classes.push(Class::top());
        let c = self.classes.len() - 1;
        self.vars.insert(var.to_string(), c);
        c
    }

    /// Rebind `var` to a fresh unconstrained class (quantifier shadowing).
    fn shadow(&mut self, var: &str) {
        self.classes.push(Class::top());
        let c = self.classes.len() - 1;
        self.vars.insert(var.to_string(), c);
    }

    fn union(&mut self, a: &str, b: &str) -> Result<(), Vec<String>> {
        let (ca, cb) = (self.class_of(a), self.class_of(b));
        if ca == cb {
            return Ok(());
        }
        let other = self.classes[cb].clone();
        // re-point every member of b's class at a's
        for c in self.vars.values_mut() {
            if *c == cb {
                *c = ca;
            }
        }
        let why = format!("`{a}` = `{b}` in this guard");
        let slot = &mut self.classes[ca];
        for w in other.why {
            if slot.why.len() < 4 {
                slot.why.push(w);
            }
        }
        slot.narrow(&other.pin, why)
    }

    fn narrow(&mut self, var: &str, v: &Values, why: String) -> Result<(), Vec<String>> {
        let c = self.class_of(var);
        self.classes[c].narrow(v, why)
    }

    /// The pin set of `var` (⊤ when unconstrained or never mentioned).
    pub fn pin(&self, var: &str) -> Values {
        match self.vars.get(var) {
            Some(&c) => self.classes[c].pin.clone(),
            None => Values::Top,
        }
    }

    fn same_class(&self, a: &str, b: &str) -> bool {
        match (self.vars.get(a), self.vars.get(b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }
}

/// Abstract evaluation result: `False` carries the provenance chain.
#[derive(Clone, Debug)]
pub enum Verdict3 {
    True,
    False(Vec<String>),
    Unknown,
}

impl Verdict3 {
    pub fn tri(&self) -> Tri {
        match self {
            Verdict3::True => Tri::True,
            Verdict3::False(_) => Tri::False,
            Verdict3::Unknown => Tri::Unknown,
        }
    }

    fn and(self, other: Verdict3) -> Verdict3 {
        match (self, other) {
            (f @ Verdict3::False(_), _) | (_, f @ Verdict3::False(_)) => f,
            (Verdict3::True, Verdict3::True) => Verdict3::True,
            _ => Verdict3::Unknown,
        }
    }
}

/// Evaluate `body` as the guard of a rule on `page`, refining `env`
/// with the pins the conjunction implies. The caller reads surviving
/// head-variable pins out of `env` afterwards.
pub fn eval(body: &Formula, page: &str, facts: &Facts, env: &mut Env) -> Verdict3 {
    let mut conjuncts = Vec::new();
    flatten(body, &mut conjuncts);

    // pass 1: explicit equalities establish the classes and seed pins
    let mut verdict = Verdict3::True;
    for c in &conjuncts {
        if let Formula::Eq(a, b) = c {
            match register_eq(a, b, env) {
                Ok(v) => verdict = verdict.and(v),
                Err(notes) => return Verdict3::False(notes),
            }
        }
    }
    if let Verdict3::False(_) = verdict {
        return verdict;
    }

    // pass 2: positive atoms check emptiness and narrow pins through
    // column value sets; loop until the pins stop moving (pins from one
    // atom can dry up another's)
    loop {
        let mut moved = false;
        for c in &conjuncts {
            if let Formula::Atom(a) = c {
                match check_atom(a, facts, env) {
                    Ok(m) => moved |= m,
                    Err(notes) => return Verdict3::False(notes),
                }
            }
        }
        if !moved {
            break;
        }
    }

    // pass 3: everything else, each in its own nested scope
    let mut all_true = true;
    for c in &conjuncts {
        let v = match c {
            Formula::Eq(..) | Formula::Atom(_) => Verdict3::Unknown, // handled above
            other => eval_one(other, page, facts, env),
        };
        match &v {
            Verdict3::False(_) => return v,
            Verdict3::Unknown => all_true = false,
            Verdict3::True => {}
        }
    }
    // a scope with atoms or free pins is satisfiable-but-not-valid
    let constrained = conjuncts.iter().any(|c| {
        matches!(c, Formula::Atom(_) | Formula::Eq(..))
            && !matches!(c, Formula::Eq(Term::Const(_), Term::Const(_)))
    });
    if all_true && !constrained {
        Verdict3::True
    } else {
        Verdict3::Unknown
    }
}

fn flatten<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
    match f {
        Formula::And(parts) => {
            for p in parts {
                flatten(p, out);
            }
        }
        other => out.push(other),
    }
}

fn register_eq(a: &Term, b: &Term, env: &mut Env) -> Result<Verdict3, Vec<String>> {
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => {
            if x == y {
                Ok(Verdict3::True)
            } else {
                Err(vec![format!("the guard requires {x:?} = {y:?}, which never holds")])
            }
        }
        (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
            let single = Values::Set([c.clone()].into());
            env.narrow(v, &single, format!("`{v}` = {c:?} in this guard"))?;
            Ok(Verdict3::Unknown)
        }
        (Term::Var(v), Term::Var(w)) => {
            env.union(v, w)?;
            Ok(Verdict3::Unknown)
        }
        // Field terms only exist after the input rewrite; opaque here
        _ => Ok(Verdict3::Unknown),
    }
}

/// Check one positive atom against the facts; `Ok(true)` if a pin moved.
fn check_atom(a: &Atom, facts: &Facts, env: &mut Env) -> Result<bool, Vec<String>> {
    if !facts.nonempty(&a.rel) {
        return Err(vec![
            format!("`{a}` requires a tuple of `{}`", a.rel),
            facts.why_empty(&a.rel),
        ]);
    }
    let mut moved = false;
    for (col, t) in a.terms.iter().enumerate() {
        let values = facts.column(&a.rel, col);
        match t {
            Term::Const(c) => {
                if !values.admits(c) {
                    return Err(vec![
                        format!("`{a}` requires {c:?} in column {col} of `{}`", a.rel),
                        facts.why_column(&a.rel, col, &values),
                    ]);
                }
            }
            Term::Var(v) => {
                if let Values::Set(_) = values {
                    let why = facts.why_column(&a.rel, col, &values);
                    let before = env.pin(v);
                    env.narrow(v, &values, why).map_err(|mut notes| {
                        notes.insert(
                            0,
                            format!("`{a}` binds `{v}` against column {col} of `{}`", a.rel),
                        );
                        notes
                    })?;
                    moved |= env.pin(v) != before;
                }
            }
            Term::Field { .. } => {}
        }
    }
    Ok(moved)
}

/// Evaluate a non-conjunctive sub-formula in a nested scope.
fn eval_one(f: &Formula, page: &str, facts: &Facts, env: &mut Env) -> Verdict3 {
    match f {
        Formula::True => Verdict3::True,
        Formula::False => Verdict3::False(vec!["the guard is literally false".to_string()]),
        Formula::Page(name) => {
            if name == page {
                Verdict3::True
            } else {
                Verdict3::False(vec![format!(
                    "the guard requires the current page to be {name}, but this rule runs on {page}"
                )])
            }
        }
        Formula::InputEmpty { rel, .. } => {
            if facts.nonempty(rel) {
                Verdict3::Unknown
            } else {
                Verdict3::True
            }
        }
        Formula::Ne(a, b) => eval_ne(a, b, env),
        Formula::Not(inner) => {
            let mut nested = env.clone();
            match eval(inner, page, facts, &mut nested) {
                Verdict3::True => Verdict3::False(vec![format!(
                    "the guard negates a condition that always holds: `{inner}`"
                )]),
                Verdict3::False(_) => Verdict3::True,
                Verdict3::Unknown => Verdict3::Unknown,
            }
        }
        Formula::Or(parts) => {
            let mut branches = Vec::new();
            let mut notes = Vec::new();
            for p in parts {
                let mut nested = env.clone();
                match eval(p, page, facts, &mut nested) {
                    Verdict3::False(mut n) => notes.append(&mut n),
                    v => branches.push((v, nested)),
                }
            }
            if branches.is_empty() {
                notes.insert(0, "every alternative of the disjunction is impossible".to_string());
                notes.truncate(6);
                return Verdict3::False(notes);
            }
            // write surviving-branch pins back: a variable constrained in
            // *every* live branch is pinned to the union of its branch pins
            let mut vars = BTreeSet::new();
            for (_, benv) in &branches {
                vars.extend(benv.vars.keys().cloned());
            }
            for v in vars {
                let mut joined = Values::bottom();
                let mut finite = true;
                for (_, benv) in &branches {
                    match benv.pin(&v) {
                        Values::Top => {
                            finite = false;
                            break;
                        }
                        set => {
                            joined.join(&set);
                        }
                    }
                }
                if finite {
                    let why = format!("`{v}` is pinned by every alternative of a disjunction");
                    if let Err(notes) = env.narrow(&v, &joined, why) {
                        return Verdict3::False(notes);
                    }
                }
            }
            if branches.iter().any(|(v, _)| matches!(v, Verdict3::True)) {
                Verdict3::True
            } else {
                Verdict3::Unknown
            }
        }
        Formula::Implies(a, b) => {
            let mut na = env.clone();
            let va = eval(a, page, facts, &mut na);
            let mut nb = env.clone();
            let vb = eval(b, page, facts, &mut nb);
            match (va.tri(), vb.tri()) {
                (Tri::False, _) | (_, Tri::True) => Verdict3::True,
                (Tri::True, Tri::False) => {
                    Verdict3::False(vec![format!("`{a}` always holds but `{b}` never can")])
                }
                _ => Verdict3::Unknown,
            }
        }
        Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
            let mut nested = env.clone();
            for v in vars {
                nested.shadow(v);
            }
            // the active domain is never empty (spec constants and pool
            // witnesses are always in it), so both quantifiers pass a
            // definite body verdict through unchanged
            eval(body, page, facts, &mut nested)
        }
        Formula::Eq(a, b) => match register_eq(a, b, env) {
            Ok(v) => v,
            Err(notes) => Verdict3::False(notes),
        },
        Formula::Atom(a) => match check_atom(a, facts, env) {
            Ok(_) => Verdict3::Unknown,
            Err(notes) => Verdict3::False(notes),
        },
        Formula::And(_) => {
            let mut nested = env.clone();
            eval(f, page, facts, &mut nested)
        }
    }
}

fn eval_ne(a: &Term, b: &Term, env: &Env) -> Verdict3 {
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => {
            if x != y {
                Verdict3::True
            } else {
                Verdict3::False(vec![format!("the guard requires {x:?} != {y:?}")])
            }
        }
        (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => match env.pin(v) {
            Values::Set(s) if s.len() == 1 && s.contains(c) => Verdict3::False(vec![format!(
                "`{v}` is pinned to {c:?}, so `{v}` != {c:?} never holds"
            )]),
            Values::Set(s) if !s.contains(c) => Verdict3::True,
            _ => Verdict3::Unknown,
        },
        (Term::Var(v), Term::Var(w)) => {
            if v == w || env.same_class(v, w) {
                Verdict3::False(vec![format!(
                    "`{v}` and `{w}` are equal here, so `{v}` != `{w}` never holds"
                )])
            } else {
                match (env.pin(v), env.pin(w)) {
                    (Values::Set(a), Values::Set(b)) if a.is_disjoint(&b) => Verdict3::True,
                    _ => Verdict3::Unknown,
                }
            }
        }
        _ => Verdict3::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts() -> Facts {
        let mut f = Facts::bottom([("go".to_string(), 1), ("junk".to_string(), 1)]);
        f.feed("go", &[Values::Set(["next".to_string(), "stop".to_string()].into())]);
        f
    }

    fn atom(rel: &str, t: Term) -> Formula {
        Formula::Atom(Atom { rel: rel.to_string(), prev: false, terms: vec![t] })
    }

    #[test]
    fn refutes_constant_outside_value_set() {
        let g = atom("go", Term::Const("teleport".to_string()));
        let v = eval(&g, "P", &facts(), &mut Env::new());
        assert!(matches!(v, Verdict3::False(_)), "{v:?}");
    }

    #[test]
    fn refutes_empty_relation_and_contradictory_pins() {
        let g = atom("junk", Term::Var("x".to_string()));
        assert!(matches!(eval(&g, "P", &facts(), &mut Env::new()), Verdict3::False(_)));

        let g = Formula::and([
            Formula::Eq(Term::Var("x".into()), Term::Const("a".into())),
            Formula::Eq(Term::Var("x".into()), Term::Const("b".into())),
        ]);
        let v = eval(&g, "P", &facts(), &mut Env::new());
        assert!(matches!(v, Verdict3::False(_)), "{v:?}");
    }

    #[test]
    fn pins_flow_through_variable_equalities_and_atoms() {
        // y = x, go(x), y = "gone": go's column excludes "gone"
        let g = Formula::and([
            Formula::Eq(Term::Var("y".into()), Term::Var("x".into())),
            atom("go", Term::Var("x".into())),
            Formula::Eq(Term::Var("y".into()), Term::Const("gone".into())),
        ]);
        let v = eval(&g, "P", &facts(), &mut Env::new());
        assert!(matches!(v, Verdict3::False(_)), "{v:?}");

        // the satisfiable variant stays unknown and pins the head var
        let g = Formula::and([
            Formula::Eq(Term::Var("y".into()), Term::Var("x".into())),
            atom("go", Term::Var("x".into())),
        ]);
        let mut env = Env::new();
        assert!(matches!(eval(&g, "P", &facts(), &mut env), Verdict3::Unknown));
        assert_eq!(env.pin("y"), Values::Set(["next".to_string(), "stop".to_string()].into()));
    }

    #[test]
    fn disjunction_pins_join_and_page_markers_resolve() {
        let g = Formula::or([
            Formula::Eq(Term::Var("x".into()), Term::Const("a".into())),
            Formula::Eq(Term::Var("x".into()), Term::Const("b".into())),
        ]);
        let mut env = Env::new();
        assert!(matches!(eval(&g, "P", &facts(), &mut env), Verdict3::Unknown));
        assert_eq!(env.pin("x"), Values::Set(["a".to_string(), "b".to_string()].into()));

        assert!(matches!(
            eval(&Formula::Page("Q".into()), "P", &facts(), &mut Env::new()),
            Verdict3::False(_)
        ));
        assert!(matches!(
            eval(&Formula::Page("P".into()), "P", &facts(), &mut Env::new()),
            Verdict3::True
        ));
    }

    #[test]
    fn shadowed_quantifiers_do_not_merge() {
        // (exists x: x = "a") & (exists x: x = "b") is satisfiable
        let g = Formula::and([
            Formula::Exists(
                vec!["x".into()],
                Box::new(Formula::Eq(Term::Var("x".into()), Term::Const("a".into()))),
            ),
            Formula::Exists(
                vec!["x".into()],
                Box::new(Formula::Eq(Term::Var("x".into()), Term::Const("b".into()))),
            ),
        ]);
        let v = eval(&g, "P", &facts(), &mut Env::new());
        assert!(!matches!(v, Verdict3::False(_)), "{v:?}");
    }

    #[test]
    fn negation_of_empty_atom_is_true() {
        let g = Formula::not(atom("junk", Term::Var("x".into())));
        assert!(matches!(eval(&g, "P", &facts(), &mut Env::new()), Verdict3::True));
    }
}
