//! The per-pass lattices of the flow framework.
//!
//! Every analysis in this crate runs as a *least* fixpoint: facts start
//! at ⊥ (optimistic — nothing reachable, every tracked relation empty,
//! every tracked column carrying no value) and only grow until stable.
//! The lattices here are deliberately finite: value sets draw from the
//! constants written in the spec, so the chain height is bounded by the
//! spec text itself and termination is structural, not fuel-based.

use std::collections::BTreeSet;

/// Three-valued truth, ordered by information: `Unknown` is the top of
/// the approximation (could be either), `True`/`False` are definite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tri {
    True,
    False,
    Unknown,
}

impl std::ops::Not for Tri {
    type Output = Tri;

    /// Three-valued negation.
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

impl Tri {
    /// Three-valued conjunction (Kleene).
    #[must_use]
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    /// Three-valued disjunction (Kleene).
    #[must_use]
    pub fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }
}

/// Over-approximation of the constants a relation column (or a pinned
/// variable) can carry: either a finite set drawn from the spec's
/// constants, or ⊤ (any value, including data never written in the
/// spec — database columns, input-constant witnesses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Values {
    Top,
    Set(BTreeSet<String>),
}

impl Values {
    /// ⊥: no value at all (the column of a never-populated relation).
    pub fn bottom() -> Values {
        Values::Set(BTreeSet::new())
    }

    /// Least upper bound; `true` if `self` grew.
    pub fn join(&mut self, other: &Values) -> bool {
        match (&mut *self, other) {
            (Values::Top, _) => false,
            (slot @ Values::Set(_), Values::Top) => {
                *slot = Values::Top;
                true
            }
            (Values::Set(a), Values::Set(b)) => {
                let before = a.len();
                a.extend(b.iter().cloned());
                a.len() != before
            }
        }
    }

    /// Greatest lower bound (used when *pinning* a variable: each
    /// constraint narrows what it may be).
    #[must_use]
    pub fn meet(&self, other: &Values) -> Values {
        match (self, other) {
            (Values::Top, v) | (v, Values::Top) => v.clone(),
            (Values::Set(a), Values::Set(b)) => Values::Set(a.intersection(b).cloned().collect()),
        }
    }

    /// Could this column carry constant `c`?
    pub fn admits(&self, c: &str) -> bool {
        match self {
            Values::Top => true,
            Values::Set(s) => s.contains(c),
        }
    }

    /// Definitely no value at all?
    pub fn is_empty(&self) -> bool {
        matches!(self, Values::Set(s) if s.is_empty())
    }

    /// Render for provenance notes: `{"a", "b"}` or `⊤`.
    pub fn describe(&self) -> String {
        match self {
            Values::Top => "any value".to_string(),
            Values::Set(s) => {
                let items: Vec<String> = s.iter().map(|c| format!("{c:?}")).collect();
                format!("{{{}}}", items.join(", "))
            }
        }
    }
}

/// A dedup-on-insert worklist: the driver of every solver in this
/// crate. Pushing an item already seen is a no-op, so each node is
/// processed once per "round" of the enclosing fixpoint.
#[derive(Default)]
pub struct Worklist<T: Ord + Clone> {
    queue: std::collections::VecDeque<T>,
    seen: BTreeSet<T>,
}

impl<T: Ord + Clone> Worklist<T> {
    pub fn new() -> Worklist<T> {
        Worklist { queue: std::collections::VecDeque::new(), seen: BTreeSet::new() }
    }

    /// Enqueue `item` unless it was ever enqueued before.
    pub fn push(&mut self, item: T) -> bool {
        if self.seen.insert(item.clone()) {
            self.queue.push_back(item);
            true
        } else {
            false
        }
    }

    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Everything ever enqueued (the reached set, for reachability uses).
    pub fn seen(&self) -> &BTreeSet<T> {
        &self.seen
    }
}

/// Run `step` until it reports no change, returning the number of
/// rounds. Every lattice in this crate is finite, so a monotone `step`
/// terminates; the bound is a defense against a non-monotone bug, not a
/// tuning knob.
pub fn fixpoint(mut step: impl FnMut() -> bool) -> usize {
    let mut rounds = 0;
    while step() {
        rounds += 1;
        assert!(rounds < 100_000, "flow fixpoint failed to converge: non-monotone transfer?");
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_kleene_tables() {
        assert_eq!(Tri::True.and(Tri::Unknown), Tri::Unknown);
        assert_eq!(Tri::False.and(Tri::Unknown), Tri::False);
        assert_eq!(Tri::True.or(Tri::Unknown), Tri::True);
        assert_eq!(Tri::False.or(Tri::Unknown), Tri::Unknown);
        assert_eq!(!Tri::Unknown, Tri::Unknown);
        assert_eq!(!Tri::True, Tri::False);
    }

    #[test]
    fn values_join_meet() {
        let mut v = Values::bottom();
        assert!(v.is_empty());
        let ab = Values::Set(["a".to_string(), "b".to_string()].into());
        assert!(v.join(&ab));
        assert!(!v.join(&ab), "join is idempotent");
        assert!(v.admits("a") && !v.admits("c"));
        let bc = Values::Set(["b".to_string(), "c".to_string()].into());
        let met = v.meet(&bc);
        assert_eq!(met, Values::Set(["b".to_string()].into()));
        assert!(v.join(&Values::Top));
        assert_eq!(v, Values::Top);
        assert_eq!(v.meet(&bc), bc);
    }

    #[test]
    fn worklist_dedups() {
        let mut w = Worklist::new();
        assert!(w.push(1));
        assert!(!w.push(1));
        assert!(w.push(2));
        assert_eq!(w.pop(), Some(1));
        assert!(!w.push(1), "pushing a popped item stays a no-op");
        assert_eq!(w.seen().len(), 2);
    }
}
