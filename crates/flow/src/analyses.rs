//! The spec-level analyses: a combined least fixpoint over page
//! reachability, relation emptiness, and column value sets, followed by
//! a classification pass that names dead rules (with provenance),
//! unreachable pages, always-empty relations, and monotone state
//! relations. Everything downstream — the W06xx lints, the verifier's
//! rule-liveness slice, the memo-mask narrowing — reads the
//! [`FlowReport`] this module produces.

use std::collections::{BTreeMap, BTreeSet};

use crate::absint::{eval, Env, Facts, Verdict3};
use crate::lattice::{fixpoint, Values, Worklist};
use wave_spec::{PageSchema, Spec};

/// Which rule vector of a page a [`RuleRef`] indexes into. `State`
/// covers both insert and delete rules (they share one vector in the
/// spec model, and the compiled spec preserves that order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleKind {
    Option,
    State,
    Action,
    Target,
}

/// A rule, addressed positionally so the compiled spec (which maps each
/// AST rule vector in order) can translate it to a query id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RuleRef {
    pub page: usize,
    pub kind: RuleKind,
    pub index: usize,
}

/// A rule whose guard is statically unsatisfiable, with the provenance
/// chain explaining the refutation.
#[derive(Clone, Debug)]
pub struct DeadRule {
    pub rule: RuleRef,
    pub notes: Vec<String>,
}

/// A tracked relation that has populating rules, all of which are dead
/// or unreachable — it can never hold a tuple.
#[derive(Clone, Debug)]
pub struct EmptyRel {
    pub rel: String,
    pub writers: usize,
    pub note: String,
}

/// The output of [`analyze`]: everything the lints and the verifier
/// slice consume.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// The post-fixpoint facts (relation emptiness + column value sets).
    pub facts: Facts,
    /// Guard-unsat rules, in page/kind/index order.
    pub dead: Vec<DeadRule>,
    dead_set: BTreeSet<RuleRef>,
    /// Pages reachable from home via statically-live target edges.
    pub reachable_pages: BTreeSet<usize>,
    /// Complement of `reachable_pages`, in index order.
    pub unreachable_pages: Vec<usize>,
    /// Tracked relations with ≥1 populating rule that still can never
    /// hold a tuple (W0602 material).
    pub always_empty: Vec<EmptyRel>,
    /// Every tracked relation that can never hold a tuple, writers or
    /// not (memo-mask narrowing material).
    pub never_nonempty: BTreeSet<String>,
    /// State relations inserted by some rule but never deleted by any.
    pub monotone: Vec<String>,
    /// Per page: does it host a *live* delete rule? Pages without one
    /// can take the verifier's monotone insert fast path.
    pub page_has_live_delete: Vec<bool>,
    /// Fixpoint rounds taken (diagnostic; bounded by the spec's constants).
    pub rounds: usize,
}

impl FlowReport {
    /// Is the rule's guard statically unsatisfiable?
    pub fn is_dead(&self, r: &RuleRef) -> bool {
        self.dead_set.contains(r)
    }

    /// Can the rule ever fire: guard satisfiable *and* page reachable?
    pub fn is_live(&self, r: &RuleRef) -> bool {
        !self.is_dead(r) && self.reachable_pages.contains(&r.page)
    }

    /// Refutation notes for a dead rule, if it is one.
    pub fn dead_notes(&self, r: &RuleRef) -> Option<&[String]> {
        self.dead.iter().find(|d| d.rule == *r).map(|d| d.notes.as_slice())
    }
}

/// How a relation is populated, for provenance wording and writer counts.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RelClass {
    Db,
    State,
    Action,
    Input { constant: bool },
}

struct SpecIndex<'s> {
    spec: &'s Spec,
    class: BTreeMap<&'s str, RelClass>,
    page_index: BTreeMap<&'s str, usize>,
    home: usize,
}

impl<'s> SpecIndex<'s> {
    fn new(spec: &'s Spec) -> SpecIndex<'s> {
        let mut class = BTreeMap::new();
        for (r, _) in &spec.database {
            class.insert(r.as_str(), RelClass::Db);
        }
        for (r, _) in &spec.states {
            class.insert(r.as_str(), RelClass::State);
        }
        for (r, _) in &spec.actions {
            class.insert(r.as_str(), RelClass::Action);
        }
        for i in &spec.inputs {
            class.insert(i.name.as_str(), RelClass::Input { constant: i.constant });
        }
        let page_index: BTreeMap<&str, usize> =
            spec.pages.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect();
        let home = page_index.get(spec.home.as_str()).copied().unwrap_or(0);
        SpecIndex { spec, class, page_index, home }
    }

    /// Relations whose emptiness and value sets the fixpoint tracks:
    /// state and action relations plus non-constant inputs. Database
    /// relations and input constants carry arbitrary instance data.
    fn tracked(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for (r, a) in self.spec.states.iter().chain(&self.spec.actions) {
            out.push((r.clone(), *a));
        }
        for i in &self.spec.inputs {
            if !i.constant {
                out.push((i.name.clone(), i.arity));
            }
        }
        out
    }

    /// Rules (across every page) that populate `rel`.
    fn writers(&self, rel: &str) -> usize {
        self.spec
            .pages
            .iter()
            .map(|p| match self.class.get(rel) {
                Some(RelClass::State) => {
                    p.state_rules.iter().filter(|r| r.insert && r.state == rel).count()
                }
                Some(RelClass::Action) => p.action_rules.iter().filter(|r| r.action == rel).count(),
                Some(RelClass::Input { .. }) => {
                    p.option_rules.iter().filter(|r| r.input == rel).count()
                }
                _ => 0,
            })
            .sum()
    }

    fn populate_phrase(&self, rel: &str) -> &'static str {
        match self.class.get(rel) {
            Some(RelClass::State) => "the insert rules that populate it",
            Some(RelClass::Action) => "the action rules that emit it",
            Some(RelClass::Input { .. }) => "the option rules that offer it",
            _ => "the rules that populate it",
        }
    }
}

/// Pages reachable from home via target edges whose conditions the
/// current facts cannot refute.
fn reachable_pages(idx: &SpecIndex<'_>, facts: &Facts) -> BTreeSet<usize> {
    let mut wl = Worklist::new();
    wl.push(idx.home);
    while let Some(pi) = wl.pop() {
        let page = &idx.spec.pages[pi];
        for t in &page.target_rules {
            let mut env = Env::new();
            if matches!(eval(&t.condition, &page.name, facts, &mut env), Verdict3::False(_)) {
                continue;
            }
            if let Some(&ti) = idx.page_index.get(t.target.as_str()) {
                wl.push(ti);
            }
        }
    }
    wl.seen().clone()
}

/// Evaluate a rule body and, if it survives, feed the head relation's
/// facts. Returns whether the facts grew.
fn feed_rule(
    facts: &mut Facts,
    snapshot: &Facts,
    page: &PageSchema,
    rel: &str,
    head: &[String],
    body: &wave_fol::Formula,
) -> bool {
    let mut env = Env::new();
    if matches!(eval(body, &page.name, snapshot, &mut env), Verdict3::False(_)) {
        return false;
    }
    let cols: Vec<Values> = head.iter().map(|v| env.pin(v)).collect();
    facts.feed(rel, &cols)
}

/// Run the combined reachability / emptiness / value-set least fixpoint
/// and classify every rule, page, and relation of `spec`.
pub fn analyze(spec: &Spec) -> FlowReport {
    let idx = SpecIndex::new(spec);
    let mut facts = Facts::bottom(idx.tracked());

    let rounds = fixpoint(|| {
        let snapshot = facts.clone();
        let reach = reachable_pages(&idx, &snapshot);
        let mut changed = false;
        for &pi in &reach {
            let page = &spec.pages[pi];
            for r in &page.option_rules {
                changed |= feed_rule(&mut facts, &snapshot, page, &r.input, &r.head, &r.body);
            }
            for r in page.state_rules.iter().filter(|r| r.insert) {
                changed |= feed_rule(&mut facts, &snapshot, page, &r.state, &r.head, &r.body);
            }
            for r in &page.action_rules {
                changed |= feed_rule(&mut facts, &snapshot, page, &r.action, &r.head, &r.body);
            }
        }
        changed
    });

    // provenance for the classification pass and downstream diagnostics
    let empty: Vec<String> = facts.empty_tracked().map(str::to_string).collect();
    for rel in &empty {
        let reason = if idx.writers(rel) == 0 {
            format!("relation `{rel}` can never hold a tuple: no rule populates it")
        } else {
            format!(
                "relation `{rel}` can never hold a tuple: every rule that populates it is \
                 statically dead or sits on an unreachable page"
            )
        };
        facts.empty_reason.insert(rel.clone(), reason);
    }
    for (rel, _) in idx.tracked() {
        facts.column_source.insert(rel.clone(), idx.populate_phrase(&rel).to_string());
    }

    // classification: final reachability, then re-evaluate every guard
    let reachable = reachable_pages(&idx, &facts);
    let mut dead = Vec::new();
    let mut dead_set = BTreeSet::new();
    for (pi, page) in spec.pages.iter().enumerate() {
        let mut judge = |kind: RuleKind, index: usize, body: &wave_fol::Formula| {
            let mut env = Env::new();
            if let Verdict3::False(notes) = eval(body, &page.name, &facts, &mut env) {
                let rule = RuleRef { page: pi, kind, index };
                dead_set.insert(rule);
                dead.push(DeadRule { rule, notes });
            }
        };
        for (i, r) in page.option_rules.iter().enumerate() {
            judge(RuleKind::Option, i, &r.body);
        }
        for (i, r) in page.state_rules.iter().enumerate() {
            judge(RuleKind::State, i, &r.body);
        }
        for (i, r) in page.action_rules.iter().enumerate() {
            judge(RuleKind::Action, i, &r.body);
        }
        for (i, r) in page.target_rules.iter().enumerate() {
            judge(RuleKind::Target, i, &r.condition);
        }
    }

    let unreachable_pages: Vec<usize> =
        (0..spec.pages.len()).filter(|pi| !reachable.contains(pi)).collect();

    let never_nonempty: BTreeSet<String> = facts.empty_tracked().map(str::to_string).collect();
    let always_empty: Vec<EmptyRel> = never_nonempty
        .iter()
        .map(|rel| (rel, idx.writers(rel)))
        .filter(|(_, w)| *w > 0)
        .map(|(rel, writers)| EmptyRel {
            rel: rel.clone(),
            writers,
            note: facts
                .empty_reason
                .get(rel)
                .cloned()
                .unwrap_or_else(|| format!("relation `{rel}` can never hold a tuple")),
        })
        .collect();

    // monotonicity: inserted somewhere, and no *live* delete rule — a
    // delete whose guard is refuted or whose page is unreachable can
    // never fire, so the relation only ever grows. Relations that can
    // never hold a tuple are vacuously monotone; their useful diagnostic
    // is W0602, so they are excluded here.
    let is_live = |pi: usize, i: usize| {
        reachable.contains(&pi)
            && !dead_set.contains(&RuleRef { page: pi, kind: RuleKind::State, index: i })
    };
    let monotone: Vec<String> = spec
        .states
        .iter()
        .map(|(s, _)| s)
        .filter(|s| !never_nonempty.contains(s.as_str()))
        .filter(|s| {
            let mut inserts = 0;
            let mut live_deletes = 0;
            for (pi, p) in spec.pages.iter().enumerate() {
                for (i, r) in p.state_rules.iter().enumerate() {
                    if &r.state == *s {
                        if r.insert {
                            inserts += 1;
                        } else if is_live(pi, i) {
                            live_deletes += 1;
                        }
                    }
                }
            }
            inserts > 0 && live_deletes == 0
        })
        .cloned()
        .collect();

    let page_has_live_delete: Vec<bool> = spec
        .pages
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            reachable.contains(&pi)
                && p.state_rules.iter().enumerate().any(|(i, r)| {
                    !r.insert
                        && !dead_set.contains(&RuleRef {
                            page: pi,
                            kind: RuleKind::State,
                            index: i,
                        })
                })
        })
        .collect();

    FlowReport {
        facts,
        dead,
        dead_set,
        reachable_pages: reachable,
        unreachable_pages,
        always_empty,
        never_nonempty,
        monotone,
        page_has_live_delete,
        rounds,
    }
}

/// The cone of influence of a property: the least set of relations and
/// pages that can affect the property's observables, closed backwards
/// through rule bodies and target edges. Reported for diagnostics and
/// the DESIGN §14 accounting; the runtime slice itself is realized by
/// rule liveness plus the verifier's existing observable projection,
/// which together refine this cone.
#[derive(Clone, Debug, Default)]
pub struct Cone {
    pub relations: BTreeSet<String>,
    pub pages: BTreeSet<String>,
    /// Rules inside the cone vs all rules in the spec.
    pub rules_in: usize,
    pub rules_total: usize,
}

/// Relations an atom-bearing formula reads (positive, negated, or via
/// emptiness tests).
fn body_reads(f: &wave_fol::Formula, out: &mut BTreeSet<String>) {
    f.visit_atoms(&mut |a| {
        out.insert(a.rel.clone());
    });
    collect_input_empty(f, out);
}

fn collect_input_empty(f: &wave_fol::Formula, out: &mut BTreeSet<String>) {
    use wave_fol::Formula as F;
    match f {
        F::InputEmpty { rel, .. } => {
            out.insert(rel.clone());
        }
        F::Not(x) | F::Exists(_, x) | F::Forall(_, x) => collect_input_empty(x, out),
        F::And(xs) | F::Or(xs) => xs.iter().for_each(|x| collect_input_empty(x, out)),
        F::Implies(a, b) => {
            collect_input_empty(a, out);
            collect_input_empty(b, out);
        }
        _ => {}
    }
}

/// Compute the cone of influence from a seed set of observable
/// relations and pages (the names a property mentions).
pub fn cone_of_influence(
    spec: &Spec,
    observable_rels: &BTreeSet<String>,
    observable_pages: &BTreeSet<String>,
) -> Cone {
    let mut cone = Cone {
        relations: observable_rels.clone(),
        pages: observable_pages.clone(),
        ..Cone::default()
    };
    fixpoint(|| {
        let before = (cone.relations.len(), cone.pages.len());
        for page in &spec.pages {
            let mut pull = |rel: &str, body: &wave_fol::Formula| {
                if cone.relations.contains(rel) {
                    body_reads(body, &mut cone.relations);
                    cone.pages.insert(page.name.clone());
                }
            };
            for r in &page.option_rules {
                pull(&r.input, &r.body);
            }
            for r in &page.state_rules {
                pull(&r.state, &r.body);
            }
            for r in &page.action_rules {
                pull(&r.action, &r.body);
            }
            for t in &page.target_rules {
                if cone.pages.contains(&t.target) {
                    body_reads(&t.condition, &mut cone.relations);
                    cone.pages.insert(page.name.clone());
                }
            }
        }
        (cone.relations.len(), cone.pages.len()) != before
    });

    for page in &spec.pages {
        let in_page = cone.pages.contains(&page.name);
        for r in &page.option_rules {
            cone.rules_total += 1;
            cone.rules_in += usize::from(in_page && cone.relations.contains(&r.input));
        }
        for r in &page.state_rules {
            cone.rules_total += 1;
            cone.rules_in += usize::from(in_page && cone.relations.contains(&r.state));
        }
        for r in &page.action_rules {
            cone.rules_total += 1;
            cone.rules_in += usize::from(in_page && cone.relations.contains(&r.action));
        }
        for t in &page.target_rules {
            cone.rules_total += 1;
            cone.rules_in += usize::from(in_page && cone.pages.contains(&t.target));
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_spec::parse_spec;

    /// A spec with a dead option rule (value-set contradiction), an
    /// always-empty state relation, an unreachable page, and a monotone
    /// state relation.
    fn dirty() -> Spec {
        parse_spec(
            r#"
            spec dirty {
              state { log(entry); ghost(x); }
              action { noted(entry); }
              inputs { pick(choice); }
              home A;

              page A {
                inputs { pick }
                options pick(c) <- c = "go" | c = "stay";
                insert log(c) <- pick(c);
                action noted(c) <- pick(c);
                insert ghost(c) <- pick(c) & c = "teleport";
                target B <- pick("go");
                target Ghost <- ghost("x");
              }
              page B {
                inputs { pick }
                options pick(c) <- c = "go";
                target A <- pick("go");
              }
              page Ghost {
                inputs { pick }
                options pick(c) <- c = "go";
                target A <- pick("go");
              }
            }
            "#,
        )
        .expect("dirty spec parses")
    }

    #[test]
    fn classifies_dead_rules_pages_and_relations() {
        let spec = dirty();
        let report = analyze(&spec);

        // ghost insert needs c = "teleport", but pick only offers go/stay
        let ghost_insert = report
            .dead
            .iter()
            .find(|d| d.rule.kind == RuleKind::State)
            .expect("ghost insert is dead");
        assert!(
            ghost_insert.notes.iter().any(|n| n.contains("teleport") || n.contains("pick")),
            "notes explain the refutation: {:?}",
            ghost_insert.notes
        );

        // ghost never holds a tuple, so the Ghost edge is dead too
        assert!(report.never_nonempty.contains("ghost"));
        assert_eq!(report.always_empty.len(), 1);
        assert!(report.dead.iter().any(|d| d.rule.kind == RuleKind::Target));

        // and the Ghost page is unreachable via live edges
        let ghost_page = spec.pages.iter().position(|p| p.name == "Ghost").unwrap();
        assert_eq!(report.unreachable_pages, vec![ghost_page]);
        assert!(!report.is_live(&RuleRef { page: ghost_page, kind: RuleKind::Target, index: 0 }));

        // log is inserted but never deleted
        assert_eq!(report.monotone, vec!["log".to_string()]);
        assert!(report.page_has_live_delete.iter().all(|b| !b));
    }

    #[test]
    fn live_rules_stay_live() {
        let spec = dirty();
        let report = analyze(&spec);
        let a = spec.pages.iter().position(|p| p.name == "A").unwrap();
        assert!(report.is_live(&RuleRef { page: a, kind: RuleKind::Option, index: 0 }));
        assert!(report.is_live(&RuleRef { page: a, kind: RuleKind::Action, index: 0 }));
        // the facts learned pick's value set
        let vals = report.facts.column("pick", 0);
        assert_eq!(vals.describe(), "{\"go\", \"stay\"}");
    }

    #[test]
    fn cone_pulls_dependencies_backwards() {
        let spec = dirty();
        let mut rels = BTreeSet::new();
        rels.insert("noted".to_string());
        let cone = cone_of_influence(&spec, &rels, &BTreeSet::new());
        assert!(cone.relations.contains("pick"), "noted reads pick");
        assert!(cone.pages.contains("A"));
        // ghost guards a target edge into a cone page, so it is pulled in;
        // log is read by nothing and stays out
        assert!(cone.relations.contains("ghost"));
        assert!(!cone.relations.contains("log"));
        assert!(cone.rules_in < cone.rules_total);
    }
}
