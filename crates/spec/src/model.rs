//! The web application specification model (Section 2.1 of the paper).
//!
//! A [`Spec`] declares a database schema, a state schema, action relations,
//! an input schema (option-list relations and text-input constants), and a
//! set of [`PageSchema`]s — one of which is the home page. Each page carries
//! its input option rules, state insert/delete rules, action rules and
//! target rules, all with FO bodies.

use std::collections::{HashMap, HashSet};
use std::fmt;
use wave_fol::{free_vars, Formula, Span};

/// Declaration of an input: either an option-list relation (the user picks
/// at most one tuple among the options each step) or a text-input constant
/// (modeled as an arity-1 relation holding at most one value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputDecl {
    pub name: String,
    pub arity: usize,
    /// True for text-input constants (arity is forced to 1).
    pub constant: bool,
    /// Declared attribute names (documentation only; empty for constants).
    /// Preserved so `print_spec` round-trips declarations loss-free.
    pub attrs: Vec<String>,
    /// Source extent of the declaration.
    pub span: Span,
}

impl InputDecl {
    /// An input declaration with default (positional) attribute names.
    pub fn new(name: impl Into<String>, arity: usize, constant: bool) -> InputDecl {
        InputDecl { name: name.into(), arity, constant, attrs: Vec::new(), span: Span::DUMMY }
    }
}

/// `Options_R(x̄) ← φ` — the options generated for input relation `input`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptionRule {
    pub input: String,
    pub head: Vec<String>,
    pub body: Formula,
    /// Source extent of the whole rule.
    pub span: Span,
}

/// `S(x̄) ← φ` (insert) or `¬S(x̄) ← φ` (delete).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateRule {
    pub state: String,
    pub insert: bool,
    pub head: Vec<String>,
    pub body: Formula,
    /// Source extent of the whole rule.
    pub span: Span,
}

/// `A(x̄) ← φ` — action tuples emitted this step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActionRule {
    pub action: String,
    pub head: Vec<String>,
    pub body: Formula,
    /// Source extent of the whole rule.
    pub span: Span,
}

/// `V ← φ` — transition to page `target` when `φ` holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetRule {
    pub target: String,
    pub condition: Formula,
    /// Source extent of the whole rule.
    pub span: Span,
}

/// One web page schema.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageSchema {
    pub name: String,
    /// Names of the inputs (relations and constants) available on the page.
    pub inputs: Vec<String>,
    pub option_rules: Vec<OptionRule>,
    pub state_rules: Vec<StateRule>,
    pub action_rules: Vec<ActionRule>,
    pub target_rules: Vec<TargetRule>,
    /// Source extent of the page header (`page <name>`).
    pub span: Span,
}

/// A full web application specification.
#[derive(Clone, Debug, Default)]
pub struct Spec {
    pub name: String,
    /// Database relations (name, arity) — fixed during a run.
    pub database: Vec<(String, usize)>,
    /// State relations (name, arity) — updated each step.
    pub states: Vec<(String, usize)>,
    /// Action relations (name, arity) — recomputed each step.
    pub actions: Vec<(String, usize)>,
    /// Input schema shared by all pages.
    pub inputs: Vec<InputDecl>,
    pub pages: Vec<PageSchema>,
    /// Name of the home page.
    pub home: String,
    /// Source extent of the `home` declaration.
    pub home_span: Span,
    /// Source extents of database/state/action declarations, by relation
    /// name (attribute names in those blocks stay positional).
    pub decl_spans: HashMap<String, Span>,
}

/// A structural error in a specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    DuplicateRelation(String),
    DuplicatePage(String),
    MissingHomePage(String),
    UnknownTarget {
        page: String,
        target: String,
    },
    UnknownRelation {
        page: String,
        rel: String,
    },
    UnknownInput {
        page: String,
        input: String,
    },
    ArityMismatch {
        page: String,
        rel: String,
        expected: usize,
        got: usize,
    },
    /// Rule head variable missing from the body's free variables.
    UnboundHeadVar {
        page: String,
        rel: String,
        var: String,
    },
    /// Body has free variables beyond the rule head.
    StrayFreeVar {
        page: String,
        rel: String,
        var: String,
    },
    /// Option rule declared for something that is not an input relation of
    /// the page.
    OptionForNonInput {
        page: String,
        input: String,
    },
    /// Input constants take their value from the user, not from a rule.
    OptionForConstant {
        page: String,
        input: String,
    },
    /// A state/action rule head must be a state/action relation.
    WrongRuleKind {
        page: String,
        rel: String,
        expected: &'static str,
    },
    /// Target condition has free variables.
    OpenTargetCondition {
        page: String,
        target: String,
        var: String,
    },
    /// `prev` used on a non-input relation.
    PrevOnNonInput {
        page: String,
        rel: String,
    },
    /// Unknown page referenced by a `@page` test.
    UnknownPageRef {
        page: String,
        reference: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::DuplicateRelation(n) => write!(f, "relation {n:?} declared twice"),
            SpecError::DuplicatePage(n) => write!(f, "page {n:?} declared twice"),
            SpecError::MissingHomePage(n) => write!(f, "home page {n:?} is not declared"),
            SpecError::UnknownTarget { page, target } => {
                write!(f, "page {page}: target rule references unknown page {target:?}")
            }
            SpecError::UnknownRelation { page, rel } => {
                write!(f, "page {page}: unknown relation {rel:?}")
            }
            SpecError::UnknownInput { page, input } => {
                write!(f, "page {page}: unknown input {input:?}")
            }
            SpecError::ArityMismatch { page, rel, expected, got } => {
                write!(f, "page {page}: {rel} used with arity {got}, declared {expected}")
            }
            SpecError::UnboundHeadVar { page, rel, var } => {
                write!(
                    f,
                    "page {page}: rule for {rel} has head variable {var} not bound by the body"
                )
            }
            SpecError::StrayFreeVar { page, rel, var } => {
                write!(f, "page {page}: rule for {rel} has stray free variable {var}")
            }
            SpecError::OptionForNonInput { page, input } => {
                write!(f, "page {page}: option rule for {input:?}, which is not an input relation of the page")
            }
            SpecError::OptionForConstant { page, input } => {
                write!(f, "page {page}: option rule for input constant {input:?}")
            }
            SpecError::WrongRuleKind { page, rel, expected } => {
                write!(f, "page {page}: {rel:?} is not {expected}")
            }
            SpecError::OpenTargetCondition { page, target, var } => {
                write!(f, "page {page}: target condition for {target} has free variable {var}")
            }
            SpecError::PrevOnNonInput { page, rel } => {
                write!(f, "page {page}: `prev` applied to non-input relation {rel}")
            }
            SpecError::UnknownPageRef { page, reference } => {
                write!(f, "page {page}: @-reference to unknown page {reference:?}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl Spec {
    /// Look up a page schema by name.
    pub fn page(&self, name: &str) -> Option<&PageSchema> {
        self.pages.iter().find(|p| p.name == name)
    }

    /// Look up an input declaration by name.
    pub fn input(&self, name: &str) -> Option<&InputDecl> {
        self.inputs.iter().find(|i| i.name == name)
    }

    /// Source extent of any declared relation (db/state/action/input),
    /// when the spec was parsed from text.
    pub fn decl_span(&self, name: &str) -> Option<Span> {
        self.decl_spans
            .get(name)
            .copied()
            .or_else(|| self.input(name).map(|i| i.span))
            .filter(|s| !s.is_dummy())
    }

    /// Arity of any declared relation (db/state/action/input).
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        self.database
            .iter()
            .chain(self.states.iter())
            .chain(self.actions.iter())
            .find(|(n, _)| n == name)
            .map(|&(_, a)| a)
            .or_else(|| self.input(name).map(|i| i.arity))
    }

    /// All constants mentioned anywhere in the specification, in
    /// deterministic first-occurrence order (this is the paper's `C_W`).
    pub fn all_constants(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut add = |f: &Formula| {
            for c in wave_fol::constants(f) {
                if seen.insert(c.clone()) {
                    out.push(c);
                }
            }
        };
        for p in &self.pages {
            for r in &p.option_rules {
                add(&r.body);
            }
            for r in &p.state_rules {
                add(&r.body);
            }
            for r in &p.action_rules {
                add(&r.body);
            }
            for r in &p.target_rules {
                add(&r.condition);
            }
        }
        out
    }

    /// Validate structure: name uniqueness, arity agreement, rule shapes,
    /// head/body variable agreement, targets exist. Returns all errors.
    pub fn validate(&self) -> Result<(), Vec<SpecError>> {
        let mut errs = Vec::new();
        let mut names: HashMap<&str, usize> = HashMap::new();
        let mut kinds: HashMap<&str, &'static str> = HashMap::new();
        for (n, a) in &self.database {
            if names.insert(n, *a).is_some() {
                errs.push(SpecError::DuplicateRelation(n.clone()));
            }
            kinds.insert(n, "database");
        }
        for (n, a) in &self.states {
            if names.insert(n, *a).is_some() {
                errs.push(SpecError::DuplicateRelation(n.clone()));
            }
            kinds.insert(n, "state");
        }
        for (n, a) in &self.actions {
            if names.insert(n, *a).is_some() {
                errs.push(SpecError::DuplicateRelation(n.clone()));
            }
            kinds.insert(n, "action");
        }
        for i in &self.inputs {
            if names.insert(&i.name, i.arity).is_some() {
                errs.push(SpecError::DuplicateRelation(i.name.clone()));
            }
            kinds.insert(&i.name, "input");
        }
        let mut page_names = HashSet::new();
        for p in &self.pages {
            if !page_names.insert(p.name.as_str()) {
                errs.push(SpecError::DuplicatePage(p.name.clone()));
            }
        }
        if !page_names.contains(self.home.as_str()) {
            errs.push(SpecError::MissingHomePage(self.home.clone()));
        }

        for p in &self.pages {
            for inp in &p.inputs {
                if self.input(inp).is_none() {
                    errs.push(SpecError::UnknownInput { page: p.name.clone(), input: inp.clone() });
                }
            }
            for r in &p.option_rules {
                match self.input(&r.input) {
                    None => errs.push(SpecError::OptionForNonInput {
                        page: p.name.clone(),
                        input: r.input.clone(),
                    }),
                    Some(decl) if decl.constant => errs.push(SpecError::OptionForConstant {
                        page: p.name.clone(),
                        input: r.input.clone(),
                    }),
                    Some(decl) => {
                        if decl.arity != r.head.len() {
                            errs.push(SpecError::ArityMismatch {
                                page: p.name.clone(),
                                rel: r.input.clone(),
                                expected: decl.arity,
                                got: r.head.len(),
                            });
                        }
                        if !p.inputs.contains(&r.input) {
                            errs.push(SpecError::OptionForNonInput {
                                page: p.name.clone(),
                                input: r.input.clone(),
                            });
                        }
                    }
                }
                self.check_rule_vars(p, &r.input, &r.head, &r.body, &mut errs);
                self.check_formula(p, &r.body, &names, &kinds, &page_names, &mut errs);
            }
            for r in &p.state_rules {
                if kinds.get(r.state.as_str()) != Some(&"state") {
                    errs.push(SpecError::WrongRuleKind {
                        page: p.name.clone(),
                        rel: r.state.clone(),
                        expected: "a state relation",
                    });
                } else if names[r.state.as_str()] != r.head.len() {
                    errs.push(SpecError::ArityMismatch {
                        page: p.name.clone(),
                        rel: r.state.clone(),
                        expected: names[r.state.as_str()],
                        got: r.head.len(),
                    });
                }
                self.check_rule_vars(p, &r.state, &r.head, &r.body, &mut errs);
                self.check_formula(p, &r.body, &names, &kinds, &page_names, &mut errs);
            }
            for r in &p.action_rules {
                if kinds.get(r.action.as_str()) != Some(&"action") {
                    errs.push(SpecError::WrongRuleKind {
                        page: p.name.clone(),
                        rel: r.action.clone(),
                        expected: "an action relation",
                    });
                } else if names[r.action.as_str()] != r.head.len() {
                    errs.push(SpecError::ArityMismatch {
                        page: p.name.clone(),
                        rel: r.action.clone(),
                        expected: names[r.action.as_str()],
                        got: r.head.len(),
                    });
                }
                self.check_rule_vars(p, &r.action, &r.head, &r.body, &mut errs);
                self.check_formula(p, &r.body, &names, &kinds, &page_names, &mut errs);
            }
            for r in &p.target_rules {
                if !page_names.contains(r.target.as_str()) {
                    errs.push(SpecError::UnknownTarget {
                        page: p.name.clone(),
                        target: r.target.clone(),
                    });
                }
                if let Some(v) = free_vars(&r.condition).first() {
                    errs.push(SpecError::OpenTargetCondition {
                        page: p.name.clone(),
                        target: r.target.clone(),
                        var: v.clone(),
                    });
                }
                self.check_formula(p, &r.condition, &names, &kinds, &page_names, &mut errs);
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    fn check_rule_vars(
        &self,
        page: &PageSchema,
        rel: &str,
        head: &[String],
        body: &Formula,
        errs: &mut Vec<SpecError>,
    ) {
        let fv = free_vars(body);
        for v in head {
            if !fv.contains(v) {
                errs.push(SpecError::UnboundHeadVar {
                    page: page.name.clone(),
                    rel: rel.to_owned(),
                    var: v.clone(),
                });
            }
        }
        for v in &fv {
            if !head.contains(v) {
                errs.push(SpecError::StrayFreeVar {
                    page: page.name.clone(),
                    rel: rel.to_owned(),
                    var: v.clone(),
                });
            }
        }
    }

    fn check_formula(
        &self,
        page: &PageSchema,
        body: &Formula,
        names: &HashMap<&str, usize>,
        kinds: &HashMap<&str, &'static str>,
        page_names: &HashSet<&str>,
        errs: &mut Vec<SpecError>,
    ) {
        body.visit_atoms(&mut |a| match names.get(a.rel.as_str()) {
            None => errs
                .push(SpecError::UnknownRelation { page: page.name.clone(), rel: a.rel.clone() }),
            Some(&arity) => {
                if arity != a.terms.len() {
                    errs.push(SpecError::ArityMismatch {
                        page: page.name.clone(),
                        rel: a.rel.clone(),
                        expected: arity,
                        got: a.terms.len(),
                    });
                }
                if a.prev && kinds.get(a.rel.as_str()) != Some(&"input") {
                    errs.push(SpecError::PrevOnNonInput {
                        page: page.name.clone(),
                        rel: a.rel.clone(),
                    });
                }
            }
        });
        check_page_refs(body, page, page_names, errs);
    }
}

fn check_page_refs(
    f: &Formula,
    page: &PageSchema,
    page_names: &HashSet<&str>,
    errs: &mut Vec<SpecError>,
) {
    match f {
        Formula::Page(p) if !page_names.contains(p.as_str()) => {
            errs.push(SpecError::UnknownPageRef { page: page.name.clone(), reference: p.clone() });
        }
        Formula::Not(x) => check_page_refs(x, page, page_names, errs),
        Formula::And(xs) | Formula::Or(xs) => {
            for x in xs {
                check_page_refs(x, page, page_names, errs);
            }
        }
        Formula::Implies(a, b) => {
            check_page_refs(a, page, page_names, errs);
            check_page_refs(b, page, page_names, errs);
        }
        Formula::Exists(_, x) | Formula::Forall(_, x) => check_page_refs(x, page, page_names, errs),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_fol::parse_formula;

    /// A miniature two-page login application, used across the test suite.
    pub fn tiny_spec() -> Spec {
        Spec {
            name: "tiny".into(),
            database: vec![("user".into(), 2)],
            states: vec![("logged".into(), 1)],
            actions: vec![("greet".into(), 1)],
            inputs: vec![
                InputDecl::new("button", 1, false),
                InputDecl::new("uname", 1, true),
                InputDecl::new("pass", 1, true),
            ],
            pages: vec![
                PageSchema {
                    name: "HP".into(),
                    inputs: vec!["button".into(), "uname".into(), "pass".into()],
                    option_rules: vec![OptionRule {
                        input: "button".into(),
                        head: vec!["x".into()],
                        body: parse_formula(r#"x = "login""#).unwrap(),
                        span: Span::DUMMY,
                    }],
                    state_rules: vec![StateRule {
                        state: "logged".into(),
                        insert: true,
                        head: vec!["u".into()],
                        body: parse_formula(
                            r#"exists p: pass(p) & uname(u) & user(u, p) & button("login")"#,
                        )
                        .unwrap(),
                        span: Span::DUMMY,
                    }],
                    action_rules: vec![],
                    target_rules: vec![TargetRule {
                        target: "CP".into(),
                        condition: parse_formula(
                            r#"exists u: uname(u) & exists p: pass(p) & user(u, p)"#,
                        )
                        .unwrap(),
                        span: Span::DUMMY,
                    }],
                    span: Span::DUMMY,
                },
                PageSchema {
                    name: "CP".into(),
                    inputs: vec!["button".into()],
                    option_rules: vec![OptionRule {
                        input: "button".into(),
                        head: vec!["x".into()],
                        body: parse_formula(r#"x = "logout""#).unwrap(),
                        span: Span::DUMMY,
                    }],
                    state_rules: vec![],
                    action_rules: vec![ActionRule {
                        action: "greet".into(),
                        head: vec!["u".into()],
                        body: parse_formula(r#"logged(u) & exists b: button(b)"#).unwrap(),
                        span: Span::DUMMY,
                    }],
                    target_rules: vec![TargetRule {
                        target: "HP".into(),
                        condition: parse_formula(r#"button("logout")"#).unwrap(),
                        span: Span::DUMMY,
                    }],
                    span: Span::DUMMY,
                },
            ],
            home: "HP".into(),
            ..Spec::default()
        }
    }

    #[test]
    fn tiny_spec_validates() {
        let errs = tiny_spec().validate();
        assert!(errs.is_ok(), "{errs:?}");
    }

    #[test]
    fn all_constants_collected_in_order() {
        assert_eq!(tiny_spec().all_constants(), vec!["login", "logout"]);
    }

    #[test]
    fn missing_home_page_detected() {
        let mut s = tiny_spec();
        s.home = "NOPE".into();
        let errs = s.validate().unwrap_err();
        assert!(errs.contains(&SpecError::MissingHomePage("NOPE".into())));
    }

    #[test]
    fn unknown_target_detected() {
        let mut s = tiny_spec();
        s.pages[0].target_rules.push(TargetRule {
            target: "GHOST".into(),
            condition: Formula::True,
            span: Span::DUMMY,
        });
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::UnknownTarget { target, .. } if target == "GHOST")));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut s = tiny_spec();
        s.pages[0].state_rules[0].body = parse_formula(r#"user(u) & uname(u)"#).unwrap();
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::ArityMismatch { rel, .. } if rel == "user")));
    }

    #[test]
    fn unbound_head_var_detected() {
        let mut s = tiny_spec();
        s.pages[0].state_rules[0].head = vec!["zz".into()];
        let errs = s.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SpecError::UnboundHeadVar { var, .. } if var == "zz")));
    }

    #[test]
    fn open_target_condition_detected() {
        let mut s = tiny_spec();
        s.pages[0].target_rules[0].condition = parse_formula("user(x, y)").unwrap();
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, SpecError::OpenTargetCondition { .. })));
    }

    #[test]
    fn option_rule_for_constant_rejected() {
        let mut s = tiny_spec();
        s.pages[0].option_rules.push(OptionRule {
            input: "uname".into(),
            head: vec!["x".into()],
            body: parse_formula(r#"x = "a""#).unwrap(),
            span: Span::DUMMY,
        });
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, SpecError::OptionForConstant { .. })));
    }

    #[test]
    fn prev_on_non_input_rejected() {
        let mut s = tiny_spec();
        s.pages[0].target_rules[0].condition = parse_formula(r#"prev user("a", "b")"#).unwrap();
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, SpecError::PrevOnNonInput { .. })));
    }

    #[test]
    fn unknown_page_ref_rejected() {
        let mut s = tiny_spec();
        s.pages[0].target_rules[0].condition = parse_formula("@GHOST").unwrap();
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, SpecError::UnknownPageRef { .. })));
    }

    #[test]
    fn arity_of_covers_all_kinds() {
        let s = tiny_spec();
        assert_eq!(s.arity_of("user"), Some(2));
        assert_eq!(s.arity_of("logged"), Some(1));
        assert_eq!(s.arity_of("greet"), Some(1));
        assert_eq!(s.arity_of("button"), Some(1));
        assert_eq!(s.arity_of("ghost"), None);
    }
}
