//! Text DSL for web application specifications.
//!
//! The format is a transliteration of the paper's page-schema notation
//! (compare Example 2.1's page `LSP`):
//!
//! ```text
//! spec shop {
//!   database { user(name, passwd); criteria(cat, attr, value); }
//!   state    { userchoice(r, h, d); }
//!   action   { conf(pid); }
//!   inputs   { button(x); laptopsearch(r, h, d); constant uname; }
//!   home HP;
//!
//!   page LSP {
//!     inputs { button, laptopsearch }
//!     options button(x) <- x = "search" | x = "view_cart" | x = "logout";
//!     options laptopsearch(r, h, d) <-
//!         criteria("laptop", "ram", r) & criteria("laptop", "hdd", h)
//!       & criteria("laptop", "display", d);
//!     insert userchoice(r, h, d) <- laptopsearch(r, h, d) & button("search");
//!     target HP  <- button("logout");
//!     target PIP <- exists r, h, d: laptopsearch(r, h, d) & button("search");
//!   }
//! }
//! ```
//!
//! Attribute names in declarations are documentation; only the arity is
//! semantic. `delete S(x̄) <- φ` writes a deletion rule; `action A(x̄) <- φ`
//! an action rule.

use crate::model::{ActionRule, InputDecl, OptionRule, PageSchema, Spec, StateRule, TargetRule};
use wave_fol::lexer::TokenKind;
use wave_fol::parser::{ParseError, Parser};
use wave_fol::span::Span;

/// Parse a specification from DSL text.
pub fn parse_spec(src: &str) -> Result<Spec, ParseError> {
    let mut p = Parser::from_source(src)?;
    let mut spec = Spec::default();
    expect_keyword(&mut p, "spec")?;
    spec.name = p.expect_ident()?;
    p.expect(&TokenKind::LBrace)?;
    while p.peek_kind() != &TokenKind::RBrace {
        if p.eat_keyword("database") {
            parse_decl_block(&mut p, &mut spec.database, &mut spec.decl_spans)?;
        } else if p.eat_keyword("state") {
            parse_decl_block(&mut p, &mut spec.states, &mut spec.decl_spans)?;
        } else if p.eat_keyword("action") {
            parse_decl_block(&mut p, &mut spec.actions, &mut spec.decl_spans)?;
        } else if p.eat_keyword("inputs") {
            parse_inputs_block(&mut p, &mut spec.inputs)?;
        } else if p.at_keyword("home") {
            let start = p.next_start();
            p.bump();
            spec.home = p.expect_ident()?;
            p.expect(&TokenKind::Semi)?;
            spec.home_span = p.span_from(start);
        } else if p.eat_keyword("page") {
            spec.pages.push(parse_page(&mut p)?);
        } else {
            return Err(p.error(format!("expected a spec section, found {}", p.peek_kind())));
        }
    }
    p.expect(&TokenKind::RBrace)?;
    if !p.at_eof() {
        return Err(p.error(format!("trailing input: {}", p.peek_kind())));
    }
    Ok(spec)
}

fn expect_keyword(p: &mut Parser, word: &str) -> Result<(), ParseError> {
    if p.eat_keyword(word) {
        Ok(())
    } else {
        Err(p.error(format!("expected keyword {word:?}, found {}", p.peek_kind())))
    }
}

/// `{ name(attr, …); name(attr, …); }` — declarations with arity from the
/// attribute count. Each declaration's source extent is recorded in
/// `spans` under the relation name.
fn parse_decl_block(
    p: &mut Parser,
    out: &mut Vec<(String, usize)>,
    spans: &mut std::collections::HashMap<String, Span>,
) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while p.peek_kind() != &TokenKind::RBrace {
        let start = p.next_start();
        let name = p.expect_ident()?;
        let attrs = parse_attr_list(p)?;
        p.expect(&TokenKind::Semi)?;
        spans.insert(name.clone(), p.span_from(start));
        out.push((name, attrs.len()));
    }
    p.expect(&TokenKind::RBrace)?;
    Ok(())
}

/// `(attr, attr, …)` or `()` — a declaration's attribute-name list.
fn parse_attr_list(p: &mut Parser) -> Result<Vec<String>, ParseError> {
    p.expect(&TokenKind::LParen)?;
    let mut attrs = Vec::new();
    if p.peek_kind() != &TokenKind::RParen {
        attrs.push(p.expect_ident()?);
        while p.peek_kind() == &TokenKind::Comma {
            p.bump();
            attrs.push(p.expect_ident()?);
        }
    }
    p.expect(&TokenKind::RParen)?;
    Ok(attrs)
}

/// `{ button(x); laptopsearch(r,h,d); constant uname; }`
fn parse_inputs_block(p: &mut Parser, out: &mut Vec<InputDecl>) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while p.peek_kind() != &TokenKind::RBrace {
        let start = p.next_start();
        if p.eat_keyword("constant") {
            let name = p.expect_ident()?;
            p.expect(&TokenKind::Semi)?;
            out.push(InputDecl {
                name,
                arity: 1,
                constant: true,
                attrs: Vec::new(),
                span: p.span_from(start),
            });
        } else {
            let name = p.expect_ident()?;
            let attrs = parse_attr_list(p)?;
            p.expect(&TokenKind::Semi)?;
            out.push(InputDecl {
                name,
                arity: attrs.len(),
                constant: false,
                attrs,
                span: p.span_from(start),
            });
        }
    }
    p.expect(&TokenKind::RBrace)?;
    Ok(())
}

fn parse_page(p: &mut Parser) -> Result<PageSchema, ParseError> {
    let header_start = p.next_start();
    let mut page = PageSchema { name: p.expect_ident()?, ..Default::default() };
    page.span = p.span_from(header_start);
    p.expect(&TokenKind::LBrace)?;
    while p.peek_kind() != &TokenKind::RBrace {
        let start = p.next_start();
        if p.at_keyword("inputs") {
            p.bump();
            p.expect(&TokenKind::LBrace)?;
            if p.peek_kind() != &TokenKind::RBrace {
                page.inputs.push(p.expect_ident()?);
                while p.peek_kind() == &TokenKind::Comma {
                    p.bump();
                    page.inputs.push(p.expect_ident()?);
                }
            }
            p.expect(&TokenKind::RBrace)?;
        } else if p.eat_keyword("options") {
            let input = p.expect_ident()?;
            let head = parse_head_vars(p)?;
            p.expect(&TokenKind::LArrow)?;
            let body = p.parse_formula()?;
            p.expect(&TokenKind::Semi)?;
            page.option_rules.push(OptionRule { input, head, body, span: p.span_from(start) });
        } else if p.at_keyword("insert") || p.at_keyword("delete") {
            let insert = p.eat_keyword("insert") || {
                p.bump();
                false
            };
            let state = p.expect_ident()?;
            let head = parse_head_vars(p)?;
            p.expect(&TokenKind::LArrow)?;
            let body = p.parse_formula()?;
            p.expect(&TokenKind::Semi)?;
            page.state_rules.push(StateRule {
                state,
                insert,
                head,
                body,
                span: p.span_from(start),
            });
        } else if p.eat_keyword("action") {
            let action = p.expect_ident()?;
            let head = parse_head_vars(p)?;
            p.expect(&TokenKind::LArrow)?;
            let body = p.parse_formula()?;
            p.expect(&TokenKind::Semi)?;
            page.action_rules.push(ActionRule { action, head, body, span: p.span_from(start) });
        } else if p.eat_keyword("target") {
            let target = p.expect_ident()?;
            p.expect(&TokenKind::LArrow)?;
            let condition = p.parse_formula()?;
            p.expect(&TokenKind::Semi)?;
            page.target_rules.push(TargetRule { target, condition, span: p.span_from(start) });
        } else {
            return Err(p.error(format!("expected a page section, found {}", p.peek_kind())));
        }
    }
    p.expect(&TokenKind::RBrace)?;
    Ok(page)
}

/// `(x, y, z)` or `()` — the head variable list of a rule.
fn parse_head_vars(p: &mut Parser) -> Result<Vec<String>, ParseError> {
    p.expect(&TokenKind::LParen)?;
    let mut vars = Vec::new();
    if p.peek_kind() != &TokenKind::RParen {
        vars.push(p.expect_ident()?);
        while p.peek_kind() == &TokenKind::Comma {
            p.bump();
            vars.push(p.expect_ident()?);
        }
    }
    p.expect(&TokenKind::RParen)?;
    Ok(vars)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LSP_SPEC: &str = r#"
        # the laptop-search fragment of the paper's running example
        spec shop {
          database { user(name, passwd); criteria(cat, attr, value); }
          state    { userchoice(r, h, d); }
          inputs   { button(x); laptopsearch(r, h, d); }
          home LSP;

          page LSP {
            inputs { button, laptopsearch }
            options button(x) <- x = "search" | x = "view_cart" | x = "logout";
            options laptopsearch(r, h, d) <-
                criteria("laptop", "ram", r) & criteria("laptop", "hdd", h)
              & criteria("laptop", "display", d);
            insert userchoice(r, h, d) <- laptopsearch(r, h, d) & button("search");
            target HP  <- button("logout");
            target PIP <- exists r, h, d: laptopsearch(r, h, d) & button("search");
            target CC  <- button("view_cart");
          }
          page HP  { target HP <- true; }
          page PIP { target PIP <- true; }
          page CC  { target CC <- true; }
        }
    "#;

    #[test]
    fn parses_the_lsp_page_from_the_paper() {
        let spec = parse_spec(LSP_SPEC).unwrap();
        assert_eq!(spec.name, "shop");
        assert_eq!(spec.home, "LSP");
        assert_eq!(spec.database.len(), 2);
        assert_eq!(spec.database[1], ("criteria".to_string(), 3));
        let lsp = spec.page("LSP").unwrap();
        assert_eq!(lsp.inputs, vec!["button", "laptopsearch"]);
        assert_eq!(lsp.option_rules.len(), 2);
        assert_eq!(lsp.state_rules.len(), 1);
        assert_eq!(lsp.target_rules.len(), 3);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn delete_rules_parse() {
        let src = r#"
            spec s {
              state { cart(x); }
              inputs { button(x); }
              home P;
              page P {
                inputs { button }
                options button(x) <- x = "clear";
                delete cart(x) <- cart(x) & button("clear");
              }
            }
        "#;
        // note: cart(x) in a delete-rule body is fine — x is a head variable
        let spec = parse_spec(src).unwrap();
        let rule = &spec.pages[0].state_rules[0];
        assert!(!rule.insert);
        assert_eq!(rule.state, "cart");
    }

    #[test]
    fn constants_inputs_parse() {
        let src = r#"
            spec s {
              database { user(n, p); }
              inputs { constant uname; constant pass; }
              home P;
              page P {
                inputs { uname, pass }
                target P <- exists u: uname(u) & exists q: pass(q) & user(u, q);
              }
            }
        "#;
        let spec = parse_spec(src).unwrap();
        assert!(spec.inputs.iter().all(|i| i.constant && i.arity == 1));
        assert!(spec.validate().is_ok(), "{:?}", spec.validate());
    }

    #[test]
    fn nullary_relations_and_heads() {
        let src = r#"
            spec s {
              state { flag(); }
              inputs { go(); }
              home P;
              page P {
                inputs { go }
                options go() <- true;
                insert flag() <- go();
                target P <- true;
              }
            }
        "#;
        let spec = parse_spec(src).unwrap();
        assert_eq!(spec.states[0], ("flag".to_string(), 0));
        assert!(spec.validate().is_ok(), "{:?}", spec.validate());
    }

    #[test]
    fn helpful_error_on_bad_section() {
        let err = parse_spec("spec s { bogus }").unwrap_err();
        assert!(err.message.contains("expected a spec section"), "{err}");
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = parse_spec("spec s {\n  home\n}").unwrap_err();
        let lc = err.line_col.expect("spec errors resolve to line/col");
        assert_eq!((lc.line, lc.col), (3, 1), "{err}");
        assert!(err.to_string().contains("parse error at 3:1"), "{err}");
    }

    #[test]
    fn declarations_and_rules_carry_spans() {
        let spec = parse_spec(LSP_SPEC).unwrap();
        let src = LSP_SPEC;
        // declaration span covers `user(name, passwd);`
        let user = spec.decl_span("user").expect("db decl span");
        assert_eq!(&src[user.start..user.end], "user(name, passwd);");
        let state = spec.decl_span("userchoice").expect("state decl span");
        assert_eq!(&src[state.start..state.end], "userchoice(r, h, d);");
        // input decl span
        let button = spec.decl_span("button").expect("input decl span");
        assert_eq!(&src[button.start..button.end], "button(x);");
        // page header span
        let lsp = spec.page("LSP").unwrap();
        assert_eq!(&src[lsp.span.start..lsp.span.end], "LSP");
        // rule spans cover keyword through semicolon
        let rule = &lsp.state_rules[0];
        assert!(src[rule.span.start..rule.span.end].starts_with("insert userchoice"));
        assert!(src[rule.span.start..rule.span.end].ends_with(';'));
        let target = &lsp.target_rules[0];
        assert_eq!(&src[target.span.start..target.span.end], r#"target HP  <- button("logout");"#);
        // home span
        assert_eq!(&src[spec.home_span.start..spec.home_span.end], "home LSP;");
    }

    #[test]
    fn input_attribute_names_survive_round_trip() {
        let spec = parse_spec(LSP_SPEC).unwrap();
        let printed = print_spec(&spec);
        assert!(printed.contains("laptopsearch(r, h, d);"), "{printed}");
        let reparsed = parse_spec(&printed).unwrap();
        let attrs: Vec<&str> =
            reparsed.input("laptopsearch").unwrap().attrs.iter().map(String::as_str).collect();
        assert_eq!(attrs, vec!["r", "h", "d"]);
    }

    #[test]
    fn error_position_is_meaningful() {
        let err = parse_spec("spec s { home }").unwrap_err();
        assert!(err.message.contains("identifier"), "{err}");
    }
}

/// Render a specification back to DSL text. `parse_spec(&print_spec(&s))`
/// reconstructs an equal specification (round-trip tested).
pub fn print_spec(spec: &Spec) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "spec {} {{", spec.name);
    let block = |out: &mut String, keyword: &str, rels: &[(String, usize)]| {
        if rels.is_empty() {
            return;
        }
        let _ = writeln!(out, "  {keyword} {{");
        for (name, arity) in rels {
            let attrs: Vec<String> = (0..*arity).map(|i| format!("a{i}")).collect();
            let _ = writeln!(out, "    {name}({});", attrs.join(", "));
        }
        let _ = writeln!(out, "  }}");
    };
    block(&mut out, "database", &spec.database);
    block(&mut out, "state", &spec.states);
    block(&mut out, "action", &spec.actions);
    if !spec.inputs.is_empty() {
        let _ = writeln!(out, "  inputs {{");
        for i in &spec.inputs {
            if i.constant {
                let _ = writeln!(out, "    constant {};", i.name);
            } else {
                // preserve declared attribute names (loss-free round trip);
                // fall back to positional names for synthesized decls
                let attrs: Vec<String> = if i.attrs.len() == i.arity {
                    i.attrs.clone()
                } else {
                    (0..i.arity).map(|j| format!("a{j}")).collect()
                };
                let _ = writeln!(out, "    {}({});", i.name, attrs.join(", "));
            }
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "  home {};", spec.home);
    for p in &spec.pages {
        let _ = writeln!(out, "  page {} {{", p.name);
        if !p.inputs.is_empty() {
            let _ = writeln!(out, "    inputs {{ {} }}", p.inputs.join(", "));
        }
        for r in &p.option_rules {
            let _ = writeln!(out, "    options {}({}) <- {};", r.input, r.head.join(", "), r.body);
        }
        for r in &p.state_rules {
            let _ = writeln!(
                out,
                "    {} {}({}) <- {};",
                if r.insert { "insert" } else { "delete" },
                r.state,
                r.head.join(", "),
                r.body
            );
        }
        for r in &p.action_rules {
            let _ = writeln!(out, "    action {}({}) <- {};", r.action, r.head.join(", "), r.body);
        }
        for r in &p.target_rules {
            let _ = writeln!(out, "    target {} <- {};", r.target, r.condition);
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod printer_tests {
    use super::*;

    /// Structural equality modulo attribute names (which the printer
    /// regenerates).
    fn assert_round_trips(src: &str) {
        let original = parse_spec(src).unwrap();
        let printed = print_spec(&original);
        let reparsed = parse_spec(&printed)
            .unwrap_or_else(|e| panic!("printed spec does not reparse: {e}\n{printed}"));
        assert_eq!(original.name, reparsed.name);
        assert_eq!(original.home, reparsed.home);
        assert_eq!(original.database, reparsed.database);
        assert_eq!(original.states, reparsed.states);
        assert_eq!(original.actions, reparsed.actions);
        assert_eq!(original.inputs, reparsed.inputs);
        assert_eq!(original.pages, reparsed.pages);
    }

    #[test]
    fn the_four_benchmark_specs_round_trip() {
        // the printer must reproduce every construct the apps use
        for src in [
            include_str!("../../apps/specs/e1_shop.wave"),
            include_str!("../../apps/specs/e2_motogp.wave"),
            include_str!("../../apps/specs/e3_airline.wave"),
            include_str!("../../apps/specs/e4_books.wave"),
        ] {
            assert_round_trips(src);
        }
    }

    #[test]
    fn printing_is_idempotent() {
        let src = include_str!("../../apps/specs/e2_motogp.wave");
        let spec = parse_spec(src).unwrap();
        let once = print_spec(&spec);
        let twice = print_spec(&parse_spec(&once).unwrap());
        assert_eq!(once, twice);
    }
}
