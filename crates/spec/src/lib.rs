//! `wave-spec`: web application specifications for the wave verifier.
//!
//! The [`model`] mirrors the paper's Section 2.1 notion of a Web site
//! specification (page schemas with input option, state, action and target
//! rules over a database/state schema); the [`dsl`] parses the textual
//! format; [`compiled`] turns a validated spec into schemas and prepared
//! plans; [`dataflow`] implements the Section 3.2 potential-comparison
//! analysis that powers the core- and extension-pruning heuristics.

pub mod compiled;
pub mod dataflow;
pub mod dsl;
pub mod model;

pub use compiled::{
    sections, spec_kinds, CompileSpecError, CompiledPage, CompiledRule, CompiledSpec,
    CompiledTarget, IbReport, PageId, ReadProfile, RuleExec, TargetExec,
};
pub use dataflow::{analyze, Dataflow, InputSrc, OptVar, Pos};
pub use dsl::{parse_spec, print_spec};
pub use model::{
    ActionRule, InputDecl, OptionRule, PageSchema, Spec, SpecError, StateRule, TargetRule,
};
