//! Dataflow analysis for potential comparisons (Section 3.2 of the paper).
//!
//! The analysis over-approximates, for every relation attribute, the set of
//! constants it may ever be compared against during any run — explicitly
//! (a constant occurring in that position of some atom), implicitly through
//! equality transitivity (`x = c` derivable from the equality atoms of a
//! rule or property), or implicitly through *copying* (the attribute's
//! value flows into a state/action/input column that is itself compared,
//! recursively).
//!
//! Its output drives both heuristics:
//!
//! * **Heuristic 1 (core pruning)** — a database core tuple is worth
//!   considering only if every attribute holds a constant from that
//!   attribute's comparison set;
//! * **Heuristic 2 (extension pruning)** — an extension tuple at page `V`
//!   may additionally hold, per attribute, values of *input* positions the
//!   attribute is compared to by `V`'s rules or the property, and the
//!   page-local fresh witnesses (`C_V`) for option-rule variables occurring
//!   at that attribute.
//!
//! The analysis is a linear number of fixpoint passes over the rules, as
//! the paper describes ("a recursive function which runs in linear time in
//! the size of the property and specification").

use crate::model::Spec;
use std::collections::{BTreeMap, BTreeSet};
use wave_fol::{Atom, Formula, Term};

/// A relation attribute.
pub type Pos = (String, usize);

/// A source of input values an attribute is compared against:
/// `(input relation, column, prev?)`.
pub type InputSrc = (String, usize, bool);

/// Identifier of an option-rule variable: `(page, rule index, var name)` —
/// kept fully qualified so distinct rules get distinct fresh witnesses.
pub type OptVar = (String, usize, String);

/// Result of the analysis.
#[derive(Debug, Default, Clone)]
pub struct Dataflow {
    /// Constants each attribute may be compared to (global).
    consts: BTreeMap<Pos, BTreeSet<String>>,
    /// Per page: input positions each attribute is compared to.
    input_srcs: BTreeMap<String, BTreeMap<Pos, BTreeSet<InputSrc>>>,
    /// Per page: option-rule variables occurring at each attribute.
    opt_vars: BTreeMap<String, BTreeMap<Pos, BTreeSet<OptVar>>>,
}

impl Dataflow {
    /// Constants attribute `(rel, col)` may be compared to.
    pub fn consts(&self, rel: &str, col: usize) -> impl Iterator<Item = &str> {
        self.consts
            .get(&(rel.to_owned(), col))
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// Number of comparison constants for an attribute.
    pub fn const_count(&self, rel: &str, col: usize) -> usize {
        self.consts.get(&(rel.to_owned(), col)).map_or(0, BTreeSet::len)
    }

    /// Input positions attribute `(rel, col)` is compared to at `page`.
    pub fn input_sources(
        &self,
        page: &str,
        rel: &str,
        col: usize,
    ) -> impl Iterator<Item = &InputSrc> {
        self.input_srcs.get(page).and_then(|m| m.get(&(rel.to_owned(), col))).into_iter().flatten()
    }

    /// Option-rule variables occurring at attribute `(rel, col)` at `page`.
    pub fn option_vars(&self, page: &str, rel: &str, col: usize) -> impl Iterator<Item = &OptVar> {
        self.opt_vars.get(page).and_then(|m| m.get(&(rel.to_owned(), col))).into_iter().flatten()
    }
}

/// A rule-shaped unit for the analysis: optional head (relation + vars) and
/// a body, attributed to a page (`None` = global, i.e. the property).
struct Unit<'a> {
    page: Option<&'a str>,
    head: Option<(&'a str, &'a [String])>,
    body: &'a Formula,
}

/// Run the analysis over a specification plus extra global formulas (the
/// property's instantiated FO components).
pub fn analyze(spec: &Spec, property_components: &[Formula]) -> Dataflow {
    let mut units: Vec<Unit<'_>> = Vec::new();
    for p in &spec.pages {
        for r in &p.option_rules {
            units.push(Unit {
                page: Some(&p.name),
                head: Some((&r.input, &r.head)),
                body: &r.body,
            });
        }
        for r in &p.state_rules {
            // deletions compare but do not make new values observable; for
            // the comparison over-approximation they are treated like
            // insertions (sound: more comparisons, never fewer)
            units.push(Unit {
                page: Some(&p.name),
                head: Some((&r.state, &r.head)),
                body: &r.body,
            });
        }
        for r in &p.action_rules {
            units.push(Unit {
                page: Some(&p.name),
                head: Some((&r.action, &r.head)),
                body: &r.body,
            });
        }
        for r in &p.target_rules {
            units.push(Unit { page: Some(&p.name), head: None, body: &r.condition });
        }
    }
    for f in property_components {
        units.push(Unit { page: None, head: None, body: f });
    }

    let mut flow = Dataflow::default();
    // per-unit var classes and their atom occurrences, reused across passes
    let digests: Vec<UnitDigest> = units.iter().map(|u| digest(u)).collect();

    // 1) direct constants
    for d in &digests {
        for (pos, cs) in &d.direct_consts {
            flow.consts.entry(pos.clone()).or_default().extend(cs.iter().cloned());
        }
    }

    // 2) copy-propagation fixpoint: cmp(src) ⊇ cmp(headrel, col) whenever
    // src feeds the head column
    loop {
        let mut changed = false;
        for d in &digests {
            for (src, dst) in &d.copies {
                let dst_consts: Vec<String> =
                    flow.consts.get(dst).map(|s| s.iter().cloned().collect()).unwrap_or_default();
                if dst_consts.is_empty() {
                    continue;
                }
                let entry = flow.consts.entry(src.clone()).or_default();
                for c in dst_consts {
                    changed |= entry.insert(c);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // 3) per-page input comparisons and option-variable occurrences
    let all_pages: Vec<&str> = spec.pages.iter().map(|p| p.name.as_str()).collect();
    for (u, d) in units.iter().zip(&digests) {
        let pages: Vec<&str> = match u.page {
            Some(p) => vec![p],
            // property comparisons apply at every page where the input is
            // available (current input) — conservatively, at every page
            None => all_pages.clone(),
        };
        for page in pages {
            let m = flow.input_srcs.entry(page.to_owned()).or_default();
            for (pos, srcs) in &d.input_links {
                m.entry(pos.clone()).or_default().extend(srcs.iter().cloned());
            }
        }
    }
    for p in &spec.pages {
        let m = flow.opt_vars.entry(p.name.clone()).or_default();
        for (idx, r) in p.option_rules.iter().enumerate() {
            let mut occ: BTreeMap<Pos, BTreeSet<String>> = BTreeMap::new();
            collect_var_positions(&r.body, &mut occ, spec);
            for (pos, vars) in occ {
                for v in vars {
                    m.entry(pos.clone()).or_default().insert((p.name.clone(), idx, v));
                }
            }
        }
    }
    flow
}

/// Pre-digested facts about one rule/property body.
struct UnitDigest {
    /// positions with directly (or equality-transitively) compared consts
    direct_consts: BTreeMap<Pos, BTreeSet<String>>,
    /// copy edges (source position, head position)
    copies: Vec<(Pos, Pos)>,
    /// positions compared to input positions (via shared variables)
    input_links: BTreeMap<Pos, BTreeSet<InputSrc>>,
}

/// Union-find over variable names.
#[derive(Default)]
struct Classes {
    parent: BTreeMap<String, String>,
}

impl Classes {
    fn find(&mut self, x: &str) -> String {
        let p = match self.parent.get(x) {
            None => {
                self.parent.insert(x.to_owned(), x.to_owned());
                return x.to_owned();
            }
            Some(p) => p.clone(),
        };
        if p == x {
            return p;
        }
        let root = self.find(&p);
        self.parent.insert(x.to_owned(), root.clone());
        root
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

fn digest(u: &Unit<'_>) -> UnitDigest {
    // pass A: equality classes and per-class constants
    let mut classes = Classes::default();
    let mut class_consts: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    collect_equalities(u.body, &mut classes, &mut class_consts);

    // pass B: atom occurrences — (position, term) pairs
    let mut occurrences: Vec<(Pos, bool, Term)> = Vec::new(); // (pos, is_prev, term)
    u.body.visit_atoms(&mut |a: &Atom| {
        for (j, t) in a.terms.iter().enumerate() {
            occurrences.push(((a.rel.clone(), j), a.prev, t.clone()));
        }
    });

    let mut direct_consts: BTreeMap<Pos, BTreeSet<String>> = BTreeMap::new();
    for (pos, _, t) in &occurrences {
        match t {
            Term::Const(c) => {
                direct_consts.entry(pos.clone()).or_default().insert(c.clone());
            }
            Term::Var(v) => {
                let root = classes.find(v);
                if let Some(cs) = class_consts.get(&root) {
                    direct_consts.entry(pos.clone()).or_default().extend(cs.iter().cloned());
                }
            }
            Term::Field { .. } => {}
        }
    }

    // head columns are directly compared to the constants their head
    // variable is (transitively) equated to in the body — e.g. an option
    // rule `Options_R(s) ← … & s = "ordered"` compares R's column to
    // "ordered"
    if let Some((head_rel, head_vars)) = u.head {
        for (b, hv) in head_vars.iter().enumerate() {
            let hroot = classes.find(hv);
            if let Some(cs) = class_consts.get(&hroot) {
                direct_consts
                    .entry((head_rel.to_owned(), b))
                    .or_default()
                    .extend(cs.iter().cloned());
            }
        }
    }

    // pass C: copy edges — every position holding a head variable (or a
    // variable equal to it) feeds the corresponding head column
    let mut copies = Vec::new();
    if let Some((head_rel, head_vars)) = u.head {
        for (b, hv) in head_vars.iter().enumerate() {
            let hroot = classes.find(hv);
            for (pos, _, t) in &occurrences {
                if pos.0 == head_rel {
                    continue; // self-feed adds nothing
                }
                if let Term::Var(v) = t {
                    if classes.find(v) == hroot {
                        copies.push((pos.clone(), (head_rel.to_owned(), b)));
                    }
                }
            }
        }
    }

    // pass D: input links — variables shared between an input position and
    // any other position create an input comparison for the latter
    let mut input_links: BTreeMap<Pos, BTreeSet<InputSrc>> = BTreeMap::new();
    let mut var_input_srcs: BTreeMap<String, BTreeSet<InputSrc>> = BTreeMap::new();
    for (pos, prev, t) in &occurrences {
        if let Term::Var(v) = t {
            // an occurrence at an *input-looking* relation is recognized by
            // name downstream; here we record all candidates and let the
            // consumer filter by kind (the digest has no schema access)
            var_input_srcs.entry(classes.find(v)).or_default().insert((
                pos.0.clone(),
                pos.1,
                *prev,
            ));
        }
    }
    for (pos, _, t) in &occurrences {
        if let Term::Var(v) = t {
            if let Some(srcs) = var_input_srcs.get(&classes.find(v)) {
                for s in srcs {
                    if s.0 != pos.0 || s.1 != pos.1 {
                        input_links.entry(pos.clone()).or_default().insert(s.clone());
                    }
                }
            }
        }
    }
    // head columns inherit the input sources of their head variable: in
    // `S(x̄) ← φ`, column B of S is compared to every input position that
    // binds x̄[B] in φ
    if let Some((head_rel, head_vars)) = u.head {
        for (b, hv) in head_vars.iter().enumerate() {
            if let Some(srcs) = var_input_srcs.get(&classes.find(hv)) {
                input_links
                    .entry((head_rel.to_owned(), b))
                    .or_default()
                    .extend(srcs.iter().cloned());
            }
        }
    }

    UnitDigest { direct_consts, copies, input_links }
}

fn collect_equalities(
    f: &Formula,
    classes: &mut Classes,
    class_consts: &mut BTreeMap<String, BTreeSet<String>>,
) {
    match f {
        Formula::Eq(a, b) | Formula::Ne(a, b) => match (a, b) {
            (Term::Var(x), Term::Var(y)) => {
                // record before union so constants merge afterwards
                classes.union(x, y);
                let rx = classes.find(x);
                let merged: BTreeSet<String> = class_consts
                    .remove(&classes.find(y))
                    .into_iter()
                    .flatten()
                    .chain(class_consts.remove(&rx).into_iter().flatten())
                    .collect();
                if !merged.is_empty() {
                    class_consts.insert(rx, merged);
                }
            }
            (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                let r = classes.find(x);
                class_consts.entry(r).or_default().insert(c.clone());
            }
            _ => {}
        },
        Formula::Not(x) => collect_equalities(x, classes, class_consts),
        Formula::And(xs) | Formula::Or(xs) => {
            for x in xs {
                collect_equalities(x, classes, class_consts);
            }
        }
        Formula::Implies(a, b) => {
            collect_equalities(a, classes, class_consts);
            collect_equalities(b, classes, class_consts);
        }
        Formula::Exists(_, x) | Formula::Forall(_, x) => {
            collect_equalities(x, classes, class_consts)
        }
        _ => {}
    }
}

/// Positions of variables in database atoms (for option-variable pools).
fn collect_var_positions(f: &Formula, out: &mut BTreeMap<Pos, BTreeSet<String>>, spec: &Spec) {
    let is_db = |rel: &str| spec.database.iter().any(|(n, _)| n == rel);
    f.visit_atoms(&mut |a: &Atom| {
        if !is_db(&a.rel) {
            return;
        }
        for (j, t) in a.terms.iter().enumerate() {
            if let Term::Var(v) = t {
                out.entry((a.rel.clone(), j)).or_default().insert(v.clone());
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_spec;
    use wave_fol::parse_formula;

    fn lsp_spec() -> Spec {
        parse_spec(
            r#"
            spec shop {
              database { user(name, passwd); criteria(cat, attr, value); }
              state    { userchoice(r, h, d); }
              inputs   { button(x); laptopsearch(r, h, d); }
              home LSP;
              page LSP {
                inputs { button, laptopsearch }
                options button(x) <- x = "search" | x = "view_cart" | x = "logout";
                options laptopsearch(r, h, d) <-
                    criteria("laptop", "ram", r) & criteria("laptop", "hdd", h)
                  & criteria("laptop", "display", d);
                insert userchoice(r, h, d) <- laptopsearch(r, h, d) & button("search");
                target HP  <- button("logout");
                target PIP <- exists r, h, d: laptopsearch(r, h, d) & button("search");
                target CC  <- button("view_cart");
              }
              page HP  { target HP <- true; }
              page PIP { target PIP <- true; }
              page CC  { target CC <- true; }
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn explicit_comparisons_found() {
        // Example 3.6: criteria's first two attributes are compared to
        // "laptop" / "ram","hdd","display"; the third to nothing
        let flow = analyze(&lsp_spec(), &[]);
        let c0: Vec<&str> = flow.consts("criteria", 0).collect();
        assert_eq!(c0, vec!["laptop"]);
        let c1: Vec<&str> = flow.consts("criteria", 1).collect();
        assert_eq!(c1, vec!["display", "hdd", "ram"]);
        assert_eq!(flow.const_count("criteria", 2), 0);
    }

    #[test]
    fn implicit_comparison_via_state_copy() {
        // Example 3.6 continued: a property atom userchoice("1GB","60GB","21in")
        // propagates those constants back into criteria's third attribute
        // through laptopsearch (option head) and userchoice (state head).
        let prop = parse_formula(r#"userchoice("1GB", "60GB", "21in")"#).unwrap();
        let flow = analyze(&lsp_spec(), &[prop]);
        let c2: Vec<&str> = flow.consts("criteria", 2).collect();
        assert_eq!(c2, vec!["1GB", "21in", "60GB"], "copied comparisons must flow back");
    }

    #[test]
    fn equality_transitivity() {
        let spec = parse_spec(
            r#"
            spec s {
              database { db(a); }
              inputs { pick(x); }
              home P;
              page P {
                inputs { pick }
                options pick(x) <- exists y: db(y) & x = y & y = "c";
                target P <- true;
              }
            }
        "#,
        )
        .unwrap();
        let flow = analyze(&spec, &[]);
        let c: Vec<&str> = flow.consts("db", 0).collect();
        assert_eq!(c, vec!["c"], "x = y = \"c\" must reach db's column");
    }

    #[test]
    fn input_sources_are_page_local() {
        let flow = analyze(&lsp_spec(), &[]);
        // userchoice's columns are compared to laptopsearch's inputs on LSP
        let srcs: Vec<&InputSrc> = flow.input_sources("LSP", "userchoice", 0).collect();
        assert!(srcs.contains(&&("laptopsearch".to_string(), 0, false)), "{srcs:?}");
        // …but not on HP, which has no such rule
        assert_eq!(flow.input_sources("HP", "userchoice", 0).count(), 0);
    }

    #[test]
    fn property_comparisons_apply_globally() {
        let prop = parse_formula("forall x: button(x) -> criteria(x, x, x)").unwrap();
        let flow = analyze(&lsp_spec(), &[prop]);
        for page in ["LSP", "HP", "PIP", "CC"] {
            let srcs: Vec<&InputSrc> = flow.input_sources(page, "criteria", 0).collect();
            assert!(srcs.contains(&&("button".to_string(), 0, false)), "page {page}: {srcs:?}");
        }
    }

    #[test]
    fn option_vars_locate_fresh_witness_columns() {
        let flow = analyze(&lsp_spec(), &[]);
        let vars: Vec<&OptVar> = flow.option_vars("LSP", "criteria", 2).collect();
        let names: Vec<&str> = vars.iter().map(|(_, _, v)| v.as_str()).collect();
        assert_eq!(names, vec!["d", "h", "r"]);
        // the constant columns of criteria carry no option variables
        assert_eq!(flow.option_vars("LSP", "criteria", 0).count(), 0);
    }

    #[test]
    fn example_3_5_shape_untouched_attributes_have_empty_sets() {
        // user's attributes are compared to no constants in the LSP spec
        let flow = analyze(&lsp_spec(), &[]);
        assert_eq!(flow.const_count("user", 0), 0);
        assert_eq!(flow.const_count("user", 1), 0);
    }
}
