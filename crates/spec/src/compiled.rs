//! Compilation of a validated [`Spec`] into executable form.
//!
//! [`CompiledSpec`] owns everything the verifier needs per session:
//!
//! * the working [`Schema`] covering database, state, action and input
//!   relations, the previous-input shadow relations (`prev$R`), and the
//!   nullary page markers (`page$V`) used to evaluate `@V` tests,
//! * the [`SymbolTable`] with all specification constants interned
//!   (the paper's `C_W`), plus a sentinel for unbound input fields,
//! * per page, each rule compiled to a parameterized prepared plan via the
//!   Section-4 input-quantifier elimination — or kept as an interpreted
//!   formula when the body falls outside the safe-range fragment,
//! * the input-boundedness verdict that decides whether verification is
//!   complete or the tool runs in incomplete mode.

use crate::model::{Spec, SpecError};
use std::collections::HashMap;
use std::sync::Arc;
use wave_fol::{
    check_input_bounded, check_option_rule, compile_bool, compile_query,
    eliminate_input_quantifiers, prev_shadow_name, CompileCtx, CompileError, Formula, IbViolation,
    OptionRuleViolation, RelKinds, SlotMap,
};
use wave_relalg::{Instance, Params, PreparedQuery, RelId, RelKind, Schema, SymbolTable, Value};

/// Dense page identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bit flags naming the pseudoconfiguration sections a compiled query
/// can read. The verifier's delta-driven memo keys a cached result on
/// the epochs of exactly these sections — everything else a query
/// touches (the per-core base database, the interned constants) is
/// fixed for the lifetime of one search.
pub mod sections {
    /// Extension tuples layered over the base database relations.
    pub const EXT: u8 = 1 << 0;
    /// The current step's input choice (also the source of value/empty
    /// parameter slots).
    pub const INPUT: u8 = 1 << 1;
    /// The previous step's inputs (`prev$R` shadows).
    pub const PREV: u8 = 1 << 2;
    /// State relations.
    pub const STATE: u8 = 1 << 3;
    /// Action relations.
    pub const ACTIONS: u8 = 1 << 4;
    /// The nullary `page$V` markers (i.e. the configuration's page).
    pub const PAGE: u8 = 1 << 5;
    /// Every section — the conservative profile for interpreted rules.
    pub const ALL: u8 = (1 << 6) - 1;
    /// Number of distinct section bits.
    pub const COUNT: usize = 6;
}

/// A query's identity and read-set for the delta-driven memo: a dense id
/// (unique across all rules and targets of one spec) plus a bitmask over
/// [`sections`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadProfile {
    /// Dense query id, `0..CompiledSpec::num_queries`.
    pub qid: u32,
    /// Which sections the query's result depends on.
    pub mask: u8,
}

impl ReadProfile {
    /// Conservative placeholder until the compile post-pass assigns the
    /// real profile.
    fn unassigned() -> Self {
        ReadProfile { qid: 0, mask: sections::ALL }
    }
}

/// How a rule body is executed at each step.
#[derive(Debug, Clone)]
pub enum RuleExec {
    /// Compiled to a parameterized plan (the prepared-statement path).
    Plan(PreparedQuery),
    /// Direct evaluation of the original body (fallback; also the baseline
    /// for the query-evaluation ablation benchmark).
    Interp,
}

/// A compiled rule with head relation and variables.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    pub head: RelId,
    pub head_vars: Vec<String>,
    /// Original body (used by the interpreter and analyses).
    pub body: Formula,
    pub exec: RuleExec,
    /// For state rules: insertion (`true`) or deletion.
    pub insert: bool,
    /// Query id and section read-set (assigned by the compile post-pass).
    pub reads: ReadProfile,
}

/// A compiled target rule.
#[derive(Debug, Clone)]
pub struct CompiledTarget {
    pub target: PageId,
    pub condition: Formula,
    pub exec: TargetExec,
    /// Query id and section read-set (assigned by the compile post-pass).
    pub reads: ReadProfile,
}

/// Execution mode of a target condition (a sentence).
#[derive(Debug, Clone)]
pub enum TargetExec {
    Plan(PreparedQuery),
    Interp,
}

/// A compiled page schema.
#[derive(Debug, Clone)]
pub struct CompiledPage {
    pub name: String,
    /// Input relations (including input constants) available on the page.
    pub inputs: Vec<RelId>,
    /// Option rules; head is the input relation.
    pub option_rules: Vec<CompiledRule>,
    pub state_rules: Vec<CompiledRule>,
    pub action_rules: Vec<CompiledRule>,
    pub target_rules: Vec<CompiledTarget>,
    /// The page's nullary marker relation.
    pub marker: RelId,
}

/// Why a spec is outside the complete fragment (informational; the
/// verifier still runs, as an incomplete verifier, when these are present).
#[derive(Debug, Clone)]
pub enum IbReport {
    Rule { page: String, rel: String, violation: IbViolation },
    OptionRule { page: String, input: String, violation: OptionRuleViolation },
}

/// Compilation failure.
#[derive(Debug)]
pub enum CompileSpecError {
    /// Structural validation failed.
    Invalid(Vec<SpecError>),
    /// Internal plan-compilation error that is not a safe-range fallback.
    Plan(CompileError),
}

impl std::fmt::Display for CompileSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileSpecError::Invalid(errs) => {
                writeln!(f, "specification is invalid:")?;
                for e in errs {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            CompileSpecError::Plan(e) => write!(f, "plan compilation failed: {e}"),
        }
    }
}

impl std::error::Error for CompileSpecError {}

/// Fully compiled specification.
pub struct CompiledSpec {
    pub spec: Spec,
    pub schema: Arc<Schema>,
    pub symbols: SymbolTable,
    /// Interned specification constants, `C_W`.
    pub constants: Vec<Value>,
    /// Sentinel bound to field parameters of empty inputs.
    pub none_value: Value,
    pub pages: Vec<CompiledPage>,
    pub home: PageId,
    pub slots: SlotMap,
    /// Input-boundedness violations (empty ⇒ complete verification).
    pub ib_report: Vec<IbReport>,
    /// Total number of query ids handed out (rules + targets); memo
    /// tables size their per-query storage from this.
    pub num_queries: u32,
}

impl CompiledSpec {
    /// Validate and compile a specification.
    pub fn compile(spec: Spec) -> Result<CompiledSpec, CompileSpecError> {
        spec.validate().map_err(CompileSpecError::Invalid)?;

        // schema: db, state, action, inputs, prev shadows, page markers
        let mut schema = Schema::new();
        let declare = |schema: &mut Schema, name: &str, arity: usize, kind: RelKind| {
            schema.declare(name, arity, kind).expect("validated names are unique")
        };
        for (n, a) in &spec.database {
            declare(&mut schema, n, *a, RelKind::Database);
        }
        for (n, a) in &spec.states {
            declare(&mut schema, n, *a, RelKind::State);
        }
        for (n, a) in &spec.actions {
            declare(&mut schema, n, *a, RelKind::Action);
        }
        for i in &spec.inputs {
            let kind = if i.constant { RelKind::InputConstant } else { RelKind::Input };
            declare(&mut schema, &i.name, i.arity, kind);
            declare(&mut schema, &prev_shadow_name(&i.name), i.arity, kind);
        }
        let mut markers = HashMap::new();
        for p in &spec.pages {
            let id =
                declare(&mut schema, &CompileCtx::page_marker_name(&p.name), 0, RelKind::Database);
            markers.insert(p.name.clone(), id);
        }
        let schema = Arc::new(schema);

        // intern constants (C_W) and the empty-field sentinel
        let mut symbols = SymbolTable::new();
        let constants: Vec<Value> =
            spec.all_constants().iter().map(|c| symbols.constant(c)).collect();
        let none_value = symbols.fresh("$none", 0);

        let page_ids: HashMap<&str, PageId> = spec
            .pages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), PageId(i as u32)))
            .collect();

        let input_names: Vec<String> = spec.inputs.iter().map(|i| i.name.clone()).collect();
        let state_names: Vec<String> = spec.states.iter().map(|(n, _)| n.clone()).collect();
        let action_names: Vec<String> = spec.actions.iter().map(|(n, _)| n.clone()).collect();
        let kinds = (
            move |r: &str| input_names.iter().any(|n| n == r),
            move |r: &str| state_names.iter().any(|n| n == r),
            move |r: &str| action_names.iter().any(|n| n == r),
        );
        let mut ib_report = Vec::new();
        let mut slots = SlotMap::new();
        let mut pages = Vec::with_capacity(spec.pages.len());
        for p in &spec.pages {
            let inputs: Vec<RelId> =
                p.inputs.iter().map(|n| schema.lookup(n).expect("validated")).collect();
            let mut compile_rule =
                |head: &str, head_vars: &[String], body: &Formula, insert: bool| -> CompiledRule {
                    let rewritten = eliminate_input_quantifiers(body, &|r: &str| kinds.is_input(r));
                    let exec = {
                        let mut ctx =
                            CompileCtx { schema: &schema, symbols: &symbols, slots: &mut slots };
                        match compile_query(&rewritten, head_vars, &mut ctx) {
                            Ok(c) => match PreparedQuery::prepare(&schema, c.plan) {
                                Ok(q) => RuleExec::Plan(q),
                                Err(_) => RuleExec::Interp,
                            },
                            Err(_) => RuleExec::Interp,
                        }
                    };
                    CompiledRule {
                        head: schema.lookup(head).expect("validated"),
                        head_vars: head_vars.to_vec(),
                        body: body.clone(),
                        exec,
                        insert,
                        reads: ReadProfile::unassigned(),
                    }
                };
            let option_rules: Vec<CompiledRule> = p
                .option_rules
                .iter()
                .map(|r| {
                    if let Err(v) = check_option_rule(&r.body, &kinds) {
                        ib_report.push(IbReport::OptionRule {
                            page: p.name.clone(),
                            input: r.input.clone(),
                            violation: v,
                        });
                    }
                    compile_rule(&r.input, &r.head, &r.body, true)
                })
                .collect();
            let state_rules: Vec<CompiledRule> = p
                .state_rules
                .iter()
                .map(|r| {
                    if let Err(v) = check_input_bounded(&r.body, &kinds) {
                        ib_report.push(IbReport::Rule {
                            page: p.name.clone(),
                            rel: r.state.clone(),
                            violation: v,
                        });
                    }
                    compile_rule(&r.state, &r.head, &r.body, r.insert)
                })
                .collect();
            let action_rules: Vec<CompiledRule> = p
                .action_rules
                .iter()
                .map(|r| {
                    if let Err(v) = check_input_bounded(&r.body, &kinds) {
                        ib_report.push(IbReport::Rule {
                            page: p.name.clone(),
                            rel: r.action.clone(),
                            violation: v,
                        });
                    }
                    compile_rule(&r.action, &r.head, &r.body, true)
                })
                .collect();
            let target_rules: Vec<CompiledTarget> = p
                .target_rules
                .iter()
                .map(|r| {
                    if let Err(v) = check_input_bounded(&r.condition, &kinds) {
                        ib_report.push(IbReport::Rule {
                            page: p.name.clone(),
                            rel: format!("target {}", r.target),
                            violation: v,
                        });
                    }
                    let rewritten =
                        eliminate_input_quantifiers(&r.condition, &|x: &str| kinds.is_input(x));
                    let exec = {
                        let mut ctx =
                            CompileCtx { schema: &schema, symbols: &symbols, slots: &mut slots };
                        match compile_bool(&rewritten, &mut ctx) {
                            Ok(plan) => match PreparedQuery::prepare(&schema, plan) {
                                Ok(q) => TargetExec::Plan(q),
                                Err(_) => TargetExec::Interp,
                            },
                            Err(_) => TargetExec::Interp,
                        }
                    };
                    CompiledTarget {
                        target: page_ids[r.target.as_str()],
                        condition: r.condition.clone(),
                        exec,
                        reads: ReadProfile::unassigned(),
                    }
                })
                .collect();
            pages.push(CompiledPage {
                name: p.name.clone(),
                inputs,
                option_rules,
                state_rules,
                action_rules,
                target_rules,
                marker: markers[&p.name],
            });
        }
        let home = page_ids[spec.home.as_str()];

        // Post-pass: assign every rule/target a dense query id and
        // compute its section read-set from the plan's scans and
        // parameter slots. Interpreted rules conservatively read
        // everything (they consult the active domain too).
        let shadow_ids: std::collections::HashSet<RelId> = spec
            .inputs
            .iter()
            .map(|i| schema.lookup(&prev_shadow_name(&i.name)).expect("declared above"))
            .collect();
        let marker_ids: std::collections::HashSet<RelId> = markers.values().copied().collect();
        let origins = slots.slot_origins();
        let mask_of = |q: &PreparedQuery| -> u8 {
            let reads = q.reads();
            let mut mask = 0u8;
            for r in &reads.rels {
                mask |= match schema.kind(*r) {
                    RelKind::Database if marker_ids.contains(r) => sections::PAGE,
                    RelKind::Database => sections::EXT,
                    RelKind::State => sections::STATE,
                    RelKind::Action => sections::ACTIONS,
                    RelKind::Input | RelKind::InputConstant if shadow_ids.contains(r) => {
                        sections::PREV
                    }
                    RelKind::Input | RelKind::InputConstant => sections::INPUT,
                };
            }
            for &slot in reads.value_slots.iter().chain(&reads.empty_slots) {
                mask |= if origins[slot].1 { sections::PREV } else { sections::INPUT };
            }
            mask
        };
        let mut num_queries = 0u32;
        for page in &mut pages {
            for r in page
                .option_rules
                .iter_mut()
                .chain(page.state_rules.iter_mut())
                .chain(page.action_rules.iter_mut())
            {
                let mask = match &r.exec {
                    RuleExec::Plan(q) => mask_of(q),
                    RuleExec::Interp => sections::ALL,
                };
                r.reads = ReadProfile { qid: num_queries, mask };
                num_queries += 1;
            }
            for t in page.target_rules.iter_mut() {
                let mask = match &t.exec {
                    TargetExec::Plan(q) => mask_of(q),
                    TargetExec::Interp => sections::ALL,
                };
                t.reads = ReadProfile { qid: num_queries, mask };
                num_queries += 1;
            }
        }

        Ok(CompiledSpec {
            spec,
            schema,
            symbols,
            constants,
            none_value,
            pages,
            home,
            slots,
            ib_report,
            num_queries,
        })
    }

    /// True when the whole specification is input-bounded (verification is
    /// complete if the property is too).
    pub fn is_input_bounded(&self) -> bool {
        self.ib_report.is_empty()
    }

    /// Page id by name.
    pub fn page_id(&self, name: &str) -> Option<PageId> {
        self.pages.iter().position(|p| p.name == name).map(|i| PageId(i as u32))
    }

    /// Page data.
    pub fn page(&self, id: PageId) -> &CompiledPage {
        &self.pages[id.index()]
    }

    /// A [`RelKinds`] oracle over this spec (for property checks).
    pub fn kinds(&self) -> impl RelKinds + '_ {
        spec_kinds(&self.spec)
    }

    /// Bind the parameter slots from the current instance: each input
    /// field slot gets the component of the input's unique tuple (or the
    /// sentinel when empty); each empty-flag slot gets the emptiness bit.
    pub fn bind_params(&self, inst: &Instance) -> Params {
        let mut params = Params::with_slots(self.slots.len());
        for ((rel, col, prev), slot) in self.slots.fields() {
            let name = if *prev { prev_shadow_name(rel) } else { rel.clone() };
            let id = self.schema.lookup(&name).expect("slots come from compiled rules");
            match inst.rel(id).only() {
                Some(t) => params.bind(slot, t.get(*col)),
                None => params.bind(slot, self.none_value),
            }
        }
        for ((rel, prev), slot) in self.slots.empties() {
            let name = if *prev { prev_shadow_name(rel) } else { rel.clone() };
            let id = self.schema.lookup(&name).expect("slots come from compiled rules");
            params.set_empty(slot, inst.rel(id).is_empty());
        }
        params
    }

    /// Count of rules compiled to plans vs interpreted (for diagnostics and
    /// the ablation benchmark).
    pub fn plan_coverage(&self) -> (usize, usize) {
        let mut plans = 0;
        let mut interp = 0;
        for p in &self.pages {
            for r in p.option_rules.iter().chain(&p.state_rules).chain(&p.action_rules) {
                match r.exec {
                    RuleExec::Plan(_) => plans += 1,
                    RuleExec::Interp => interp += 1,
                }
            }
            for t in &p.target_rules {
                match t.exec {
                    TargetExec::Plan(_) => plans += 1,
                    TargetExec::Interp => interp += 1,
                }
            }
        }
        (plans, interp)
    }
}

/// Relation-kind oracle derived from spec declarations.
pub fn spec_kinds(spec: &Spec) -> impl RelKinds + '_ {
    (
        move |r: &str| spec.inputs.iter().any(|i| i.name == r),
        move |r: &str| spec.states.iter().any(|(n, _)| n == r),
        move |r: &str| spec.actions.iter().any(|(n, _)| n == r),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_spec;

    fn tiny() -> Spec {
        parse_spec(
            r#"
            spec tiny {
              database { user(n, p); }
              state { logged(u); }
              action { greet(u); }
              inputs { button(x); constant uname; constant pass; }
              home HP;
              page HP {
                inputs { button, uname, pass }
                options button(x) <- x = "login";
                insert logged(u) <- uname(u) & (exists q: pass(q) & user(u, q))
                                    & button("login");
                target CP <- exists u: uname(u) & exists q: pass(q) & user(u, q);
                target HP <- true;
              }
              page CP {
                inputs { button }
                options button(x) <- x = "logout";
                action greet(u) <- logged(u) & button("logout");
                target HP <- button("logout");
              }
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn compiles_and_is_input_bounded() {
        let c = CompiledSpec::compile(tiny()).unwrap();
        assert!(c.is_input_bounded(), "{:?}", c.ib_report);
        assert_eq!(c.pages.len(), 2);
        assert_eq!(c.home, PageId(0));
    }

    #[test]
    fn schema_contains_shadows_and_markers() {
        let c = CompiledSpec::compile(tiny()).unwrap();
        assert!(c.schema.lookup("prev$button").is_some());
        assert!(c.schema.lookup("prev$uname").is_some());
        assert!(c.schema.lookup("page$HP").is_some());
        assert!(c.schema.lookup("page$CP").is_some());
    }

    #[test]
    fn constants_interned_in_order() {
        let c = CompiledSpec::compile(tiny()).unwrap();
        let names: Vec<String> = c.constants.iter().map(|&v| c.symbols.display(v)).collect();
        assert_eq!(names, vec!["\"login\"", "\"logout\""]);
    }

    #[test]
    fn most_rules_compile_to_plans() {
        let c = CompiledSpec::compile(tiny()).unwrap();
        let (plans, interp) = c.plan_coverage();
        assert!(plans >= 5, "expected most rules compiled, got {plans} plans / {interp} interp");
        assert_eq!(interp, 0, "tiny spec is fully within the safe-range fragment");
    }

    #[test]
    fn bind_params_uses_sentinel_for_empty_inputs() {
        let c = CompiledSpec::compile(tiny()).unwrap();
        let inst = Instance::empty(Arc::clone(&c.schema));
        // all inputs empty: every field slot must be bound (to the sentinel)
        let params = c.bind_params(&inst);
        // executing any compiled rule must not hit UnboundParam
        for p in &c.pages {
            for r in &p.option_rules {
                if let RuleExec::Plan(q) = &r.exec {
                    q.run(&inst, &params).expect("no unbound params");
                }
            }
        }
    }

    #[test]
    fn read_profiles_are_dense_and_section_accurate() {
        let c = CompiledSpec::compile(tiny()).unwrap();
        let mut qids = Vec::new();
        for p in &c.pages {
            for r in p.option_rules.iter().chain(&p.state_rules).chain(&p.action_rules) {
                qids.push(r.reads.qid);
            }
            for t in &p.target_rules {
                qids.push(t.reads.qid);
            }
        }
        qids.sort_unstable();
        assert_eq!(qids, (0..c.num_queries).collect::<Vec<_>>(), "qids dense and unique");

        let hp = c.page(c.page_id("HP").unwrap());
        // options button(x) <- x = "login": no relations, no input slots.
        assert_eq!(hp.option_rules[0].reads.mask, 0, "constant option rule reads nothing");
        // insert logged(u) <- uname(u) & (exists q: pass(q) & user(u,q)) & button("login"):
        // database scan (user) + input-bound slots, no state/prev/action reads.
        let insert = &hp.state_rules[0];
        assert_ne!(insert.reads.mask & sections::INPUT, 0, "reads input slots");
        assert_eq!(insert.reads.mask & sections::STATE, 0, "does not read state");
        assert_eq!(insert.reads.mask & sections::PREV, 0, "does not read prev inputs");
        // action greet(u) <- logged(u) & button("logout"): state + input.
        let cp = c.page(c.page_id("CP").unwrap());
        let action = &cp.action_rules[0];
        assert_ne!(action.reads.mask & sections::STATE, 0);
        assert_ne!(action.reads.mask & sections::INPUT, 0);
    }

    #[test]
    fn non_input_bounded_rule_is_reported_not_rejected() {
        let mut spec = tiny();
        // quantifier over a database relation — not input-bounded
        spec.pages[0].target_rules[0].condition =
            wave_fol::parse_formula("forall u, q: user(u, q) -> logged(u)").unwrap();
        let c = CompiledSpec::compile(spec).unwrap();
        assert!(!c.is_input_bounded());
        assert_eq!(c.ib_report.len(), 1);
    }

    #[test]
    fn invalid_spec_rejected_with_all_errors() {
        let mut spec = tiny();
        spec.home = "NOPE".into();
        match CompiledSpec::compile(spec) {
            Err(CompileSpecError::Invalid(errs)) => assert!(!errs.is_empty()),
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("invalid spec must not compile"),
        }
    }
}
