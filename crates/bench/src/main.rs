//! `wave-bench` — regenerates every table and figure of the paper's
//! evaluation (Section 5) from this reproduction. See EXPERIMENTS.md for
//! the experiment index and the paper-vs-measured record.
//!
//! ```text
//! wave-bench --fig1      Figure 1: the Büchi automaton for P1 U P2
//! wave-bench --e1        E1 results table (17 properties)
//! wave-bench --e2        E2 results (13 properties) + summary line
//! wave-bench --e3        E3 results (14 properties) + summary line
//! wave-bench --e4        E4 results (omitted in the paper; ours)
//! wave-bench --counts    Examples 3.4 / 3.5 / 3.7: core & extension counts
//! wave-bench --naive     the SPIN-style first-cut comparison
//! wave-bench --all       everything above
//! ```

use std::time::Duration;
use wave_apps::{e1, e2, e3, e4, format_table, AppSuite, SuiteRow};
use wave_core::{build_pools, core_universe, extension_universe, ExtensionPruning, VerifyOptions};
use wave_ltl::{extract, nnf, parse_property, Buchi};
use wave_naive::{NaiveOptions, NaiveVerifier};
use wave_spec::{analyze, CompiledSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag || a == "--all");
    if args.is_empty() {
        eprintln!("usage: wave-bench [--fig1|--e1|--e2|--e3|--e4|--counts|--naive|--all]");
        std::process::exit(2);
    }
    if has("--fig1") {
        fig1();
    }
    if has("--e1") {
        run_suite(e1::suite());
    }
    if has("--e2") {
        run_suite(e2::suite());
    }
    if has("--e3") {
        run_suite(e3::suite());
    }
    if has("--e4") {
        run_suite(e4::suite());
    }
    if has("--counts") {
        counts();
    }
    if has("--naive") {
        naive_comparison();
    }
}

/// Figure 1: the two-state Büchi automaton for `P1 U P2`.
fn fig1() {
    println!("== Figure 1: Buchi automaton for P1 U P2 ==");
    let prop = parse_property("p1() U p2()").expect("parses");
    let e = extract(&prop.body);
    let b = Buchi::from_nnf(&nnf(&e.aux, false), e.components.len());
    println!("{b}");
    println!(
        "(paper: 2 states — a start state looping on P1 with a P2-edge to an\n\
         accepting state looping on true)\n"
    );
}

/// One experimental setup's property table plus the summary line the paper
/// gives for E2/E3.
fn run_suite(suite: AppSuite) {
    println!("== {} ==", suite.name);
    match suite.run_all(VerifyOptions::default()) {
        Ok(rows) => {
            print!("{}", format_table(suite.name, &rows));
            summarize(&rows);
            let wrong: Vec<&SuiteRow> =
                rows.iter().filter(|r| r.measured_holds != Some(r.expected)).collect();
            if wrong.is_empty() {
                println!("all verdicts match the expected truth values\n");
            } else {
                println!("MISMATCHED VERDICTS: {wrong:?}\n");
            }
        }
        Err(e) => println!("suite failed: {e}\n"),
    }
}

fn summarize(rows: &[SuiteRow]) {
    let (tmin, tmax) = (
        rows.iter().map(|r| r.elapsed).min().unwrap_or(Duration::ZERO),
        rows.iter().map(|r| r.elapsed).max().unwrap_or(Duration::ZERO),
    );
    let (lmin, lmax) = (
        rows.iter().map(|r| r.max_run_len).min().unwrap_or(0),
        rows.iter().map(|r| r.max_run_len).max().unwrap_or(0),
    );
    let (smin, smax) = (
        rows.iter().map(|r| r.max_trie).min().unwrap_or(0),
        rows.iter().map(|r| r.max_trie).max().unwrap_or(0),
    );
    println!(
        "summary: times {tmin:.0?}..{tmax:.2?}, max run lengths {lmin}..{lmax}, \
         trie sizes {smin}..{smax}"
    );
}

/// Examples 3.4, 3.5 and 3.7: the number of database cores and extensions
/// with and without the heuristics.
fn counts() {
    println!("== Examples 3.4 / 3.5 / 3.7: core and extension counts ==");
    let spec = CompiledSpec::compile(e1::spec()).expect("E1 compiles");

    // Example 3.4's arithmetic: without Heuristic 1, a database over the
    // |C| constants admits Σ |C|^arity candidate tuples, i.e. 2^Σ cores.
    let c = spec.constants.len();
    let exponent: u128 = spec.spec.database.iter().map(|&(_, a)| (c as u128).pow(a as u32)).sum();
    println!(
        "without Heuristic 1: |C| = {c} constants, sum |C|^arity = {exponent} \
         candidate tuples -> 2^{exponent} cores"
    );
    println!("(paper's Example 3.4 with 29 constants: 2^(29^2+29^3+29^5+29^7) cores)");

    // with Heuristic 1, for the paper's P5 (property (1) of Example 3.1)
    let p5 = &e1::properties()[4];
    assert_eq!(p5.name, "P5");
    let prop = parse_property(&p5.text).expect("P5 parses");
    let extraction = extract(&prop.body.group_fo());
    let mut symbols = spec.symbols.clone();
    let subst: std::collections::HashMap<String, wave_fol::Term> = prop
        .univ_vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let name = format!("?{i}");
            symbols.constant(&name);
            (v.clone(), wave_fol::Term::Const(name))
        })
        .collect();
    let components: Vec<wave_fol::Formula> =
        extraction.components.iter().map(|f| f.substitute(&subst)).collect();
    let flow = analyze(&spec.spec, &components);
    let mut c_values = spec.constants.clone();
    for i in 0..prop.univ_vars.len() {
        c_values.push(symbols.lookup_constant(&format!("?{i}")).expect("interned"));
    }
    let cores = core_universe(&spec, &flow, &symbols, &c_values, true).expect("bounded");
    println!(
        "with Heuristic 1, property P5: {} candidate tuples -> {} cores \
         (paper's Example 3.5: 8 cores)",
        cores.len(),
        cores.subset_count()
    );

    // Example 3.7: extensions at page LSP
    let pools = build_pools(&spec, &mut symbols);
    let lsp = spec.page_id("LSP").expect("LSP exists");
    for (label, pruning) in [
        ("paper-strict Heuristic 2", ExtensionPruning::PaperStrict),
        ("option-support (default)", ExtensionPruning::OptionSupport),
    ] {
        let u = extension_universe(
            &spec,
            &flow,
            &symbols,
            &c_values,
            lsp,
            &pools[lsp.index()],
            &Vec::new(),
            pruning,
            true,
        )
        .expect("bounded");
        println!(
            "extensions at page LSP, {label}: {} \
             (paper's Example 3.7: 1; without Heuristic 2: 29,046,208,721)",
            u.variant_count()
        );
    }
    println!();
}

/// The SPIN comparison: the first-cut explicit-state verifier explodes on
/// E1 even for the simplest property, while wave finishes in milliseconds.
fn naive_comparison() {
    println!("== first-cut explicit-state verifier (the SPIN stand-in) ==");
    let property = "F @HP";
    let t = std::time::Instant::now();
    let naive = NaiveVerifier::new(
        e1::spec(),
        NaiveOptions {
            fresh_values: 2,
            max_tuples_per_relation: 1 << 20,
            max_steps: Some(2_000_000),
            time_limit: Some(Duration::from_secs(60)),
        },
    )
    .expect("compiles");
    match naive.check_str(property) {
        Ok((verdict, stats)) => println!(
            "naive on E1, property {property:?}: {verdict:?} after {:?} \
             ({} databases, {} configs)",
            t.elapsed(),
            stats.databases,
            stats.configs
        ),
        Err(e) => println!("naive on E1: error {e}"),
    }
    let t = std::time::Instant::now();
    let verifier = wave_core::Verifier::new(e1::spec()).expect("compiles");
    let v = verifier.check_str(property).expect("verifies");
    println!(
        "wave  on E1, property {property:?}: holds={} after {:?} ({} configs)",
        v.verdict.holds(),
        t.elapsed(),
        v.stats.configs
    );
    println!(
        "(paper: the SPIN encoding timed out even for the simplest properties,\n\
         while wave verified every E1 property in 0.02-4 s)\n"
    );
}
