//! Bench of the LTL→Büchi translation (the ltl2ba replacement): Figure 1's
//! formula, the paper's property shapes T1–T10, and the large P4-style
//! successor-uniqueness conjunction whose automaton size the paper calls
//! out (30 states for their 12-page variant).

use criterion::{criterion_group, criterion_main, Criterion};
use wave_ltl::{extract, nnf, parse_property, Buchi};

fn translate(src: &str) -> Buchi {
    let prop = parse_property(src).expect("parses");
    let e = extract(&prop.body);
    Buchi::from_nnf(&nnf(&e.aux, true), e.components.len())
}

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ltl_to_buchi");
    group.bench_function("fig1_until", |b| b.iter(|| translate("p() U q()")));
    group.bench_function("response", |b| b.iter(|| translate("G (p() -> F q())")));
    group.bench_function("sequence_before", |b| b.iter(|| translate("p() B q()")));
    group.bench_function("session", |b| b.iter(|| translate("G p() -> G q()")));
    let p4 = wave_apps::e1::properties()[3].text.clone();
    group.bench_function("e1_p4_large_conjunction", |b| b.iter(|| translate(&p4)));
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
