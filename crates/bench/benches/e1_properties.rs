//! Criterion bench for the paper's E1 results table: verification time per
//! property (the paper's Section 5 measurements were 0.02 s – 4 s on a
//! 2.4 GHz Pentium 4). The slowest properties (P4, P5, P7) are measured
//! with a reduced sample count.

use criterion::{criterion_group, criterion_main, Criterion};
use wave_apps::e1;
use wave_core::Verifier;

fn bench_e1(c: &mut Criterion) {
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).expect("E1 compiles");
    let mut group = c.benchmark_group("e1_properties");
    group.sample_size(10);
    for case in &suite.properties {
        // keep the heavyweight properties to a single pass per sample
        let text = case.text.clone();
        let expected = case.holds;
        group.bench_function(case.name, |b| {
            b.iter(|| {
                let v = verifier.check_str(&text).expect("verifies");
                assert_eq!(v.verdict.holds(), expected);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(20));
    targets = bench_e1
}
criterion_main!(benches);
