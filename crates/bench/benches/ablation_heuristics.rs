//! Ablation: the pruning heuristics of Section 3.2. On a full-size
//! application, disabling Heuristic 1 makes the core space astronomically
//! large (Example 3.4) — not measurable — so the ablation runs on a
//! scaled-down shop where the unpruned space is merely large, showing the
//! factor the heuristics buy.

use criterion::{criterion_group, criterion_main, Criterion};
use wave_core::Verifier;
use wave_spec::parse_spec;

// Kept tiny on purpose: with both heuristics off, cores range over
// C^arity per relation and extensions over (C ∪ C_V)^arity — the spec must
// stay under the enumeration caps in all four configurations.
const MINI_SHOP: &str = r#"
    spec mini_shop {
      database { stock(item); }
      state { basket(item); }
      inputs { choose(item); button(x); }
      home SHOP;
      page SHOP {
        inputs { choose, button }
        options button(x) <- x = "add";
        options choose(i) <- stock(i);
        insert basket(i) <- choose(i) & button("add");
        target DONE <- (exists i: choose(i)) & button("add");
      }
      page DONE { target SHOP <- true; }
    }
"#;

const PROPERTY: &str = "forall i: G (basket(i) -> F basket(i))";

fn bench_heuristics(c: &mut Criterion) {
    let spec = parse_spec(MINI_SHOP).expect("parses");
    let mut group = c.benchmark_group("ablation_heuristics");
    for (label, h1, h2) in [
        ("h1_on_h2_on", true, true),
        ("h1_off_h2_on", false, true),
        ("h1_on_h2_off", true, false),
        ("h1_off_h2_off", false, false),
    ] {
        let mut verifier = Verifier::new(spec.clone()).expect("compiles");
        verifier.options_mut().heuristic1 = h1;
        verifier.options_mut().heuristic2 = h2;
        group.bench_function(label, |b| {
            b.iter(|| {
                let v = verifier.check_str(PROPERTY).expect("verifies");
                assert!(v.verdict.holds());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_heuristics
}
criterion_main!(benches);
