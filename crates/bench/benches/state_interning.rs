//! Ablation: the hash-consed pseudoconfiguration store. The interned
//! backend keys visit sets, successor caches, and Büchi-product pairs by
//! dense `u32` ids; the byte-key baseline re-encodes every configuration
//! into an owned byte string per lookup (the pre-interning design).
//!
//! Measured on the visit-heaviest E1 property (P4, whose trie peaks above
//! 80k entries) and an E3 property with a similar shape, full check per
//! iteration so the comparison includes interning cost, not just lookup.

use criterion::{criterion_group, criterion_main, Criterion};
use wave_apps::{e1, e3, AppSuite};
use wave_core::{StateStoreKind, Verifier, VerifyOptions};

fn bench_suite_property(c: &mut Criterion, suite: &AppSuite, property: &str) {
    let case = suite
        .properties
        .iter()
        .find(|p| p.name == property)
        .unwrap_or_else(|| panic!("{} has no property {property}", suite.name));
    let mut group = c.benchmark_group("state_interning");
    group.sample_size(10);
    for (label, kind) in
        [("interned", StateStoreKind::Interned), ("byte_keys", StateStoreKind::ByteKeys)]
    {
        let verifier = Verifier::with_options(
            suite.spec.clone(),
            VerifyOptions { state_store: kind, ..Default::default() },
        )
        .expect("suite compiles");
        let text = case.text.clone();
        let expected = case.holds;
        group.bench_function(
            format!("{}_{property}_{label}", suite.name.split(' ').next().unwrap()),
            |b| {
                b.iter(|| {
                    let v = verifier.check_str(&text).expect("verifies");
                    assert_eq!(v.verdict.holds(), expected);
                })
            },
        );
    }
    group.finish();
}

fn bench_interning(c: &mut Criterion) {
    bench_suite_property(c, &e1::suite(), "P4");
    bench_suite_property(c, &e3::suite(), "R3");
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(15));
    targets = bench_interning
}
criterion_main!(benches);
