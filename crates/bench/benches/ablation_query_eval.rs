//! Ablation: compiled parameterized plans (the paper's prepared-statement
//! architecture, Section 4) vs direct FO interpretation for every rule.
//!
//! Measured on E2 and on E1 with plans. The all-interpreted configuration
//! is *intractable* on E1: direct evaluation of a rule with a k-variable
//! head enumerates `|domain|^k` candidate rows per step (E1 has arity-5
//! and arity-7 rule heads over a ~40-value domain), which is exactly why
//! the paper compiles rule bodies to parameterized queries. The E2
//! comparison quantifies the gap where both modes terminate.

use criterion::{criterion_group, criterion_main, Criterion};
use wave_apps::{e1, e2};
use wave_core::Verifier;

fn bench_query_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_query_eval");
    group.sample_size(10);
    for (app, spec, property, modes) in [
        (
            "e2_q2",
            e2::spec(),
            e2::properties()[1].text.clone(),
            &[("plans", true), ("interp", false)][..],
        ),
        (
            "e1_p13",
            e1::spec(),
            e1::properties()[12].text.clone(),
            // interp omitted: |domain|^k candidate rows per rule evaluation
            &[("plans", true)][..],
        ),
    ] {
        for &(mode, use_plans) in modes {
            let mut verifier = Verifier::new(spec.clone()).expect("compiles");
            verifier.options_mut().use_plans = use_plans;
            let text = property.clone();
            group.bench_function(format!("{app}_{mode}"), |b| {
                b.iter(|| {
                    verifier.check_str(&text).expect("verifies");
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_eval);
criterion_main!(benches);
