//! The paper's DBMS-selection microbenchmark (Section 4, "Picking the
//! right DBMS"): inserting and deleting database cores, main-memory vs
//! disk-based storage. The paper measured ~500 µs per core with HSQLDB vs
//! ~50 ms with Oracle — two orders of magnitude. Our stand-ins are
//! `MemoryEngine` and `DiskEngine` (which flushes a redo-log record per
//! mutation) over the paper's 4-table schema of arities 2, 3, 5 and 7,
//! with cores drawn from all subsets of up to 6 tuples per table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use wave_relalg::{
    DiskEngine, Instance, MemoryEngine, RelKind, Schema, StorageEngine, Tuple, Value,
};

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.declare("t2", 2, RelKind::Database).unwrap();
    s.declare("t3", 3, RelKind::Database).unwrap();
    s.declare("t5", 5, RelKind::Database).unwrap();
    s.declare("t7", 7, RelKind::Database).unwrap();
    Arc::new(s)
}

/// Build a batch of cores: per relation, the subsets of 6 base tuples are
/// cycled through (the paper enumerated all 2^24).
fn cores(schema: &Arc<Schema>, n: usize) -> Vec<Instance> {
    let mut out = Vec::with_capacity(n);
    for mask in 0..n as u32 {
        let mut inst = Instance::empty(Arc::clone(schema));
        for rel in schema.rels() {
            let arity = schema.arity(rel);
            for i in 0..6u32 {
                if mask >> i & 1 == 1 {
                    let tuple: Vec<Value> = (0..arity).map(|c| Value(i * 16 + c as u32)).collect();
                    inst.insert(rel, Tuple::from(tuple));
                }
            }
        }
        out.push(inst);
    }
    out
}

fn bench_engines(c: &mut Criterion) {
    let schema = schema();
    let batch = cores(&schema, 64);
    let mut group = c.benchmark_group("engine_insert_delete_core");

    group.bench_function("memory_engine_hsqldb_standin", |b| {
        let mut engine = MemoryEngine::new(Arc::clone(&schema));
        let mut i = 0;
        b.iter(|| {
            engine.load(&batch[i % batch.len()]);
            engine.clear_all();
            i += 1;
        })
    });

    group.sample_size(10);
    group.bench_function("disk_engine_oracle_standin", |b| {
        let mut engine = DiskEngine::new(Arc::clone(&schema)).expect("temp file");
        let mut i = 0;
        b.iter(|| {
            engine.load(&batch[i % batch.len()]);
            engine.clear_all();
            i += 1;
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
