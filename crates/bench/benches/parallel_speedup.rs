//! Criterion bench for the `wave-svc` work scheduler: sequential
//! verification vs. the worker pool on the E1 properties whose checks
//! decompose into several work units (P5 spans two database cores, P7
//! four — the core-range splitter turns those into parallel items).
//!
//! Speedup requires real hardware parallelism: on a single-CPU machine
//! (or a 1-core container) the pool degenerates to sequential order and
//! the numbers only measure scheduling overhead. P5's two cores weigh
//! ~2.6 s and ~3.1 s, so with ≥2 CPUs the `jobs=2` row lands near the
//! heavier core instead of near their sum.

use criterion::{criterion_group, criterion_main, Criterion};
use wave_apps::e1;
use wave_core::Verifier;
use wave_ltl::parse_property;
use wave_svc::{check_parallel, ParallelOptions};

fn bench_parallel(c: &mut Criterion) {
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).expect("E1 compiles");
    let mut group = c.benchmark_group("parallel_speedup");
    group.sample_size(10);
    for name in ["P5", "P7"] {
        let case = suite.properties.iter().find(|p| p.name == name).unwrap();
        let prop = parse_property(&case.text).expect("property parses");
        let expected = case.holds;
        group.bench_function(format!("{name}/sequential"), |b| {
            b.iter(|| {
                let v = verifier.check(&prop).expect("verifies");
                assert_eq!(v.verdict.holds(), expected);
            })
        });
        for jobs in [2, 4] {
            let popts = ParallelOptions { jobs, split_units: true, ..Default::default() };
            group.bench_function(format!("{name}/jobs={jobs}"), |b| {
                b.iter(|| {
                    let v = check_parallel(&verifier, &prop, &popts).expect("verifies");
                    assert_eq!(v.verdict.holds(), expected);
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(30));
    targets = bench_parallel
}
criterion_main!(benches);
