//! `wave` — command-line verifier for interactive, data-driven web
//! applications.
//!
//! ```text
//! wave check <spec.wave> --property "<LTL-FO>" [options]
//!     verify one property; prints the verdict, statistics, and (for
//!     violations) the counterexample pseudorun
//!
//! wave validate <spec.wave>
//!     parse + validate the specification, report the input-boundedness
//!     verdict and the page/relation inventory
//!
//! wave automaton --property "<LTL-FO>"
//!     print the Büchi automaton for the negated property
//!
//! options for `check`:
//!     --property <text>        the LTL-FO property (required)
//!     --max-steps <n>          configuration budget
//!     --time-limit <seconds>   wall-clock budget
//!     --no-heuristic1          disable core pruning
//!     --no-heuristic2          disable extension pruning
//!     --paper-strict           strict Heuristic 2 (no option witnesses)
//!     --exhaustive-equality    all C_∃ equality patterns
//!     --interpret              direct FO evaluation (no compiled plans)
//!     --no-replay              skip counterexample re-validation
//!     --quiet                  verdict only
//! ```

use std::process::ExitCode;
use std::time::Duration;
use wave::core::{ExtensionPruning, ParamMode};
use wave::{parse_property, parse_spec, Verdict, Verifier, VerifyOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("automaton") => cmd_automaton(&args[1..]),
        Some("fmt") => cmd_fmt(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("prof") => cmd_prof(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{}", USAGE);
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
wave — a verifier for interactive, data-driven web applications

usage:
  wave check <spec.wave> --property \"<LTL-FO>\" [options]
  wave lint <spec.wave> [--property <text-or-file>]... [lint options]
  wave validate <spec.wave>
  wave automaton --property \"<LTL-FO>\"
  wave fmt <spec.wave>
  wave batch <jobs.jsonl> [--jobs <n>] [cache options]
  wave serve --addr <host:port> [--jobs <n>] [cache options]
             [--max-connections <n>] [--read-timeout <seconds>]
             [--write-timeout <seconds>] [--metrics-addr <host:port>]
  wave worker --connect <host:port> [--name <id>]
  wave trace summarize <trace.jsonl> [--top <k>]
  wave prof flame <profile.json>
  wave bench --record | --check | --trend | --backfill
             [--out <file>] [--query-out <file>] [--slice-out <file>]
             [--ledger <file>] [--max-regress <pct>]

check options:
  --max-steps <n>         global configuration budget (shared across workers)
  --time-limit <seconds>  wall-clock budget
  --budget-chunk <n>      steps leased from the shared budget pool per grant
                          (contention knob; does not affect the verdict)
  --no-heuristic1         disable core pruning (Heuristic 1)
  --no-heuristic2         disable extension pruning (Heuristic 2)
  --paper-strict          strict Heuristic 2 (no option-support witnesses)
  --exhaustive-equality   enumerate all C_∃ equality patterns
  --interpret             evaluate rules directly (no compiled plans)
  --byte-keys             byte-keyed visit sets (interning ablation baseline)
  --naive-joins           nested-loop joins, no query memo (planner ablation
                          baseline; verdicts and statistics are unchanged)
  --no-slice              disable cone-of-influence property slicing
                          (dataflow ablation baseline; verdicts, traces,
                          and deterministic counters are unchanged)
  --store <kind>          visited-state store: interned (default), byte, or
                          tiered (Bloom front + bounded hot tier + disk spill)
  --store-mem-mb <m>      tiered only: hot-tier byte budget in MiB (default 64)
  --spill-dir <dir>       tiered only: directory for spill segments
                          (default: a private temp dir, removed on exit)
  --checkpoint-dir <dir>  checkpoint search state into <dir>/wave.ckpt so an
                          interrupted run resumes where it left off
  --checkpoint-every <n>  cores scanned between checkpoints (default 64)
  --jobs <n>              verify on an n-worker pool (wave-svc scheduler)
  --fleet <host:port>     bind a fleet dispatcher on <host:port> and verify
                          across connecting `wave worker` processes; verdicts
                          and counters stay byte-identical to --jobs 1
  --fleet-workers <n>     also run n in-process workers (0 = remote only;
                          the dispatcher still finishes via local fallback
                          if no worker ever connects)
  --json                  print one JSON result record (batch format)
  --trace-out <file>      stream a JSONL search trace (sequential only;
                          summarize it with `wave trace summarize`)
  --profile-out <file>    run the hierarchical span profiler and write a
                          profile JSON (span tree, folded stacks, per-query
                          cost attribution); prints the top-10 attribution
                          table; sequential only. Render a flamegraph with
                          `wave prof flame <file> | flamegraph.pl`
  --no-replay             skip counterexample re-validation
  --quiet                 print the verdict only

lint options:
  --property <p>          LTL-FO property to cross-check against the spec;
                          a path to a readable file is loaded from disk,
                          anything else is inline text (repeatable)
  --format <fmt>          text (default), json, or sarif (SARIF 2.1.0)
  --deny warnings         treat every warning as an error
  --allow <CODE>          suppress a warning or note code, e.g. W0301
                          (repeatable; hard errors cannot be allowed)
  --explain <CODE>        print the full description and remediation notes
                          for a diagnostic code and exit (no spec needed)

cache options (batch and serve):
  --cache-dir <dir>       on-disk result cache
  --no-cache              disable the result cache
  --cache-mem-entries <n> in-memory entry bound (default 256; 0 = unbounded)
  --cache-gc-days <d>     startup GC: drop disk entries older than d days
  --cache-gc-mb <m>       startup GC: shrink the disk cache below m MiB

serve: --metrics-addr binds a Prometheus text-exposition listener
(scrape GET /metrics); the socket itself answers {\"cmd\":\"metrics\"}

worker: joins a fleet dispatcher (`wave check --fleet` or an embedding
service), registers with a heartbeat, and executes work units shipped
as (spec fingerprint, property, unit ordinal, core range, budget
lease); exits when the dispatcher says bye
  --connect <host:port>   dispatcher address (required; retried ~10 s)
  --name <id>             worker name for dispatcher diagnostics
  --max-units <n>         exit cleanly after n units (fault injection)
  --chaos-abort-unit <n>  drop the connection upon receiving the nth
                          run command — a worker killed mid-unit
                          (fault injection)

bench: --record runs the E1–E4 property suites on the tiered store at a
generous and a forced-spill memory budget (BENCH_store.json, --out
overrides) and with the query engine on/off (BENCH_query.json,
--query-out overrides), plus a dead-code-heavy slice workload with
property slicing on/off (BENCH_slice.json, --slice-out overrides) —
writing deterministic columns plus
informational per-phase wall-time and memo/intern hit-rate columns,
and appends one run-ledger entry per bench (LEDGER.jsonl, --ledger
overrides) keyed by git revision and suite fingerprint; --check
re-runs them, fails if a committed file has drifted, and fails if the
measured suite wall time regressed more than --max-regress percent
(default 200) against the last ledger entry; --trend renders the
per-property elapsed-time history across ledger entries; --backfill
seeds the ledger from the committed bench files without re-running

batch: one JSON job per input line, one JSON record per property on
stdout; e.g. {\"suite\":\"E1\"}, {\"suite\":\"E1\",\"property\":\"P5\"}, or
{\"spec_path\":\"shop.wave\",\"property\":\"G !@ERR\",\"options\":{\"max_steps\":5000}}

exit codes: 0 property holds · 1 property violated · 2 usage/spec error
            3 budget exhausted   (batch: 0 all jobs ran · 2 some errored)
            (lint: 0 clean or warnings only · 1 errors · 2 usage)
";

/// Cores scanned between checkpoints when `--checkpoint-every` is not
/// given. Checkpoints land at core boundaries (where the visited set is
/// empty), so this trades re-scanned work after a kill against
/// checkpoint write traffic.
const DEFAULT_CHECKPOINT_EVERY: u64 = 64;

/// Pull `--flag value` out of an argument list.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Pull a boolean `--flag` out of an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn load_spec(path: &str) -> Result<(wave::Spec, String), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let spec = parse_spec(&src).map_err(|e| format!("{path}: {e}"))?;
    if let Err(errs) = spec.validate() {
        let mut msg = format!("{path}: specification is invalid:\n");
        for e in errs {
            msg.push_str(&format!("  - {e}\n"));
        }
        return Err(msg);
    }
    Ok((spec, src))
}

fn cmd_check(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let property_text = match take_value(&mut args, "--property") {
        Some(p) => p,
        None => {
            eprintln!("check needs --property \"<LTL-FO>\"");
            return ExitCode::from(2);
        }
    };
    let mut options = VerifyOptions::default();
    if let Some(n) = take_value(&mut args, "--max-steps") {
        options.max_steps = n.parse().ok();
    }
    if let Some(secs) = take_value(&mut args, "--time-limit") {
        options.time_limit = secs.parse().ok().map(Duration::from_secs_f64);
    }
    if let Some(n) = take_value(&mut args, "--budget-chunk") {
        match n.parse::<u64>() {
            Ok(n) if n >= 1 => options.budget_chunk = n,
            _ => {
                eprintln!("--budget-chunk needs a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if take_flag(&mut args, "--no-heuristic1") {
        options.heuristic1 = false;
    }
    if take_flag(&mut args, "--no-heuristic2") {
        options.heuristic2 = false;
    }
    if take_flag(&mut args, "--paper-strict") {
        options.pruning = ExtensionPruning::PaperStrict;
    }
    if take_flag(&mut args, "--exhaustive-equality") {
        options.param_mode = ParamMode::ExhaustiveEquality;
    }
    if take_flag(&mut args, "--interpret") {
        options.use_plans = false;
    }
    if take_flag(&mut args, "--byte-keys") {
        options.state_store = wave::core::StateStoreKind::ByteKeys;
    }
    if take_flag(&mut args, "--naive-joins") {
        options.naive_joins = true;
    }
    if take_flag(&mut args, "--no-slice") {
        options.slice = false;
    }
    let store_mem_mb = take_value(&mut args, "--store-mem-mb");
    let spill_dir = take_value(&mut args, "--spill-dir");
    if let Some(kind) = take_value(&mut args, "--store") {
        options.state_store = match kind.as_str() {
            "interned" => wave::core::StateStoreKind::Interned,
            "byte" => wave::core::StateStoreKind::ByteKeys,
            "tiered" => wave::core::StateStoreKind::Tiered(wave::core::TierParams::default()),
            _ => {
                eprintln!("--store must be interned, byte, or tiered, got {kind:?}");
                return ExitCode::from(2);
            }
        };
    }
    if store_mem_mb.is_some() || spill_dir.is_some() {
        let wave::core::StateStoreKind::Tiered(ref mut params) = options.state_store else {
            eprintln!("--store-mem-mb/--spill-dir require --store tiered");
            return ExitCode::from(2);
        };
        if let Some(mb) = store_mem_mb {
            match mb.parse::<u64>() {
                Ok(mb) => params.mem_bytes = mb << 20,
                Err(_) => {
                    eprintln!("--store-mem-mb needs an integer number of MiB, got {mb:?}");
                    return ExitCode::from(2);
                }
            }
        }
        if let Some(dir) = spill_dir {
            params.spill_dir = Some(dir.into());
        }
    }
    let checkpoint_dir = take_value(&mut args, "--checkpoint-dir");
    let checkpoint_every = match take_value(&mut args, "--checkpoint-every") {
        Some(n) => {
            if checkpoint_dir.is_none() {
                eprintln!("--checkpoint-every needs --checkpoint-dir");
                return ExitCode::from(2);
            }
            match n.parse::<u64>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("--checkpoint-every needs a positive integer, got {n:?}");
                    return ExitCode::from(2);
                }
            }
        }
        None => DEFAULT_CHECKPOINT_EVERY,
    };
    let no_replay = take_flag(&mut args, "--no-replay");
    let quiet = take_flag(&mut args, "--quiet");
    let json_out = take_flag(&mut args, "--json");
    let trace_out = take_value(&mut args, "--trace-out");
    let profile_out = take_value(&mut args, "--profile-out");
    let jobs = match take_value(&mut args, "--jobs") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--jobs needs a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let fleet_addr = take_value(&mut args, "--fleet");
    let fleet_workers = match take_value(&mut args, "--fleet-workers") {
        Some(n) => {
            if fleet_addr.is_none() {
                eprintln!("--fleet-workers needs --fleet");
                return ExitCode::from(2);
            }
            match n.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--fleet-workers needs an integer, got {n:?}");
                    return ExitCode::from(2);
                }
            }
        }
        None => 0,
    };
    if fleet_addr.is_some()
        && (jobs.is_some()
            || trace_out.is_some()
            || checkpoint_dir.is_some()
            || profile_out.is_some())
    {
        eprintln!(
            "--fleet runs the distributed scheduler; it does not combine \
             with --jobs, --trace-out, --checkpoint-dir, or --profile-out"
        );
        return ExitCode::from(2);
    }
    if trace_out.is_some() && jobs.is_some() {
        eprintln!("--trace-out traces the sequential search; it does not combine with --jobs");
        return ExitCode::from(2);
    }
    if checkpoint_dir.is_some() && (jobs.is_some() || trace_out.is_some()) {
        eprintln!("--checkpoint-dir drives the sequential search; it does not combine with --jobs or --trace-out");
        return ExitCode::from(2);
    }
    if profile_out.is_some() && (jobs.is_some() || trace_out.is_some() || checkpoint_dir.is_some())
    {
        eprintln!(
            "--profile-out profiles the sequential search; it does not combine \
             with --jobs, --trace-out, or --checkpoint-dir"
        );
        return ExitCode::from(2);
    }
    let [path] = args.as_slice() else {
        eprintln!("check needs exactly one spec file, got {args:?}");
        return ExitCode::from(2);
    };

    let (spec, src) = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // lint pre-pass: static findings over the spec and property, on
    // stderr in human mode and embedded in the --json record; never
    // blocks verification (even error-level findings, e.g. an undeclared
    // relation, surface a clearer message here than the verifier's)
    let lint_req = wave_lint::LintRequest {
        spec_path: path.clone(),
        spec_src: src,
        properties: vec![wave_lint::PropertySource {
            label: "property".to_string(),
            text: property_text.clone(),
        }],
    };
    let lint_diags = wave_lint::lint(&lint_req);
    if !json_out && !quiet && !lint_diags.is_empty() {
        eprint!("{}", wave_lint::render_text(&lint_req, &lint_diags));
        eprintln!("lint: {}", wave_lint::summary(&lint_diags));
    }
    let property = match parse_property(&property_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("property: {e}");
            return ExitCode::from(2);
        }
    };
    // the fleet ships specs by canonical text (the fingerprint input);
    // capture it before the spec moves into the verifier
    let spec_text =
        if fleet_addr.is_some() { wave::spec::print_spec(&spec) } else { String::new() };
    let verifier = match Verifier::with_options(spec, options) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut profiler = wave::core::SpanProfiler::new();
    let run = if let Some(addr) = &fleet_addr {
        run_fleet(addr, fleet_workers, &verifier, &spec_text, &property_text, &property)
    } else {
        match (&checkpoint_dir, &trace_out, jobs) {
            (Some(dir), _, _) => {
                let config = wave::core::CheckpointConfig::new(dir, checkpoint_every);
                match wave::core::check_checkpointed(&verifier, &property_text, &config) {
                    Ok(wave::core::CheckpointOutcome::Finished(v)) => Ok(v),
                    Ok(wave::core::CheckpointOutcome::Interrupted { .. }) => {
                        unreachable!("the interrupt hook is never armed from the CLI")
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
            (None, Some(out), _) => run_traced(&verifier, &property, out),
            (None, None, Some(n)) => wave_svc::check_parallel(
                &verifier,
                &property,
                &wave_svc::ParallelOptions::with_jobs(n),
            )
            .map_err(|e| e.to_string()),
            (None, None, None) if profile_out.is_some() => {
                verifier.check_profiled(&property, &mut profiler).map_err(|e| e.to_string())
            }
            (None, None, None) => verifier.check(&property).map_err(|e| e.to_string()),
        }
    };
    let v = match run {
        Ok(v) => v,
        Err(e) => {
            eprintln!("verification failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out) = &profile_out {
        let report = profile_report(verifier.spec(), &v, &profiler);
        if let Err(e) = std::fs::write(out, format!("{report}\n")) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        if !json_out && !quiet {
            print_attribution_table(verifier.spec(), &v, &profiler, 10);
            eprintln!("profile: wrote {out}");
        }
    }
    if json_out {
        // the same record format batch and serve emit
        if let Verdict::Violated(ce) = &v.verdict {
            if !no_replay {
                if let Err(e) = verifier.validate_counterexample(&property, ce) {
                    eprintln!("internal error: counterexample failed replay: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let mut record = wave_svc::JobRecord::from_verification(path, &v);
        record.diagnostics = wave_svc::lint_records(&lint_req);
        println!("{}", record.to_json());
        return match &v.verdict {
            Verdict::Holds => ExitCode::SUCCESS,
            Verdict::Violated(_) => ExitCode::from(1),
            Verdict::Unknown(_) => ExitCode::from(3),
        };
    }
    match &v.verdict {
        Verdict::Holds => {
            if quiet {
                println!("holds");
            } else {
                println!(
                    "property HOLDS{} — {:?}, max run length {}, trie size {}, \
                     {} configurations",
                    if v.complete {
                        " (complete verification)"
                    } else {
                        " (no counterexample found; incomplete fragment)"
                    },
                    v.stats.elapsed,
                    v.stats.max_run_len,
                    v.stats.max_trie,
                    v.stats.configs,
                );
                print_spill_breakdown(&v.stats);
            }
            ExitCode::SUCCESS
        }
        Verdict::Violated(ce) => {
            if !no_replay {
                if let Err(e) = verifier.validate_counterexample(&property, ce) {
                    eprintln!("internal error: counterexample failed replay: {e}");
                    return ExitCode::from(2);
                }
            }
            if quiet {
                println!("violated");
            } else {
                println!(
                    "property VIOLATED — counterexample with {} steps \
                     (cycle from step {}), found in {:?}:",
                    ce.steps.len(),
                    ce.cycle_start,
                    v.stats.elapsed,
                );
                print!("{}", verifier.render_counterexample(ce));
            }
            ExitCode::from(1)
        }
        Verdict::Unknown(b) => {
            println!("UNKNOWN — budget exhausted ({b:?})");
            if !quiet {
                print_spill_breakdown(&v.stats);
            }
            ExitCode::from(3)
        }
    }
}

/// One extra stats line when the tiered store actually spilled: how the
/// peak visited set split across memory and disk.
fn print_spill_breakdown(stats: &wave::Stats) {
    if stats.max_spilled > 0 {
        println!(
            "  peak visited set: {} resident + {} spilled pairs \
             ({} spill segments written, {} compactions)",
            stats.max_resident,
            stats.max_spilled,
            stats.profile.spill_segments,
            stats.profile.spill_compactions,
        );
    }
}

/// Static label and plan shape for every query id of a compiled spec:
/// `page/kind head` (rules) or `page/target page` (targets) plus the
/// compiled plan's operator skeleton (`interp` for interpreted rules).
fn query_catalog(spec: &wave::spec::CompiledSpec) -> Vec<(String, String)> {
    let mut out = vec![(String::new(), String::new()); spec.num_queries as usize];
    for page in &spec.pages {
        let rules = [
            ("option", &page.option_rules),
            ("state", &page.state_rules),
            ("action", &page.action_rules),
        ];
        for (kind, rules) in rules {
            for r in rules {
                let shape = match &r.exec {
                    wave::spec::RuleExec::Plan(q) => q.plan().shape(),
                    wave::spec::RuleExec::Interp => "interp".to_string(),
                };
                let label = format!("{}/{kind} {}", page.name, spec.schema.name(r.head));
                out[r.reads.qid as usize] = (label, shape);
            }
        }
        for t in &page.target_rules {
            let shape = match &t.exec {
                wave::spec::TargetExec::Plan(q) => q.plan().shape(),
                wave::spec::TargetExec::Interp => "interp".to_string(),
            };
            let label = format!("{}/target {}", page.name, spec.pages[t.target.index()].name);
            out[t.reads.qid as usize] = (label, shape);
        }
    }
    out
}

/// The `--profile-out` report: phase timers, the span tree, folded
/// stacks for flamegraph rendering, and the per-query attribution table.
fn profile_report(
    spec: &wave::spec::CompiledSpec,
    v: &wave::Verification,
    profiler: &wave::core::SpanProfiler,
) -> wave_svc::Json {
    use wave_svc::Json;
    let catalog = query_catalog(spec);
    let p = &v.stats.profile;
    let spans = profiler
        .rows()
        .into_iter()
        .map(|r| {
            Json::obj([
                ("stack", Json::from(r.stack)),
                ("calls", Json::from(r.calls)),
                ("total_ns", Json::from(r.total_ns)),
                ("self_ns", Json::from(r.self_ns)),
            ])
        })
        .collect();
    let folded = profiler.fold().into_iter().map(Json::from).collect();
    let queries = v
        .stats
        .queries
        .iter()
        .map(|q| {
            let (label, shape) = catalog
                .get(q.qid as usize)
                .cloned()
                .unwrap_or_else(|| ("?".to_string(), "?".to_string()));
            Json::obj([
                ("qid", Json::from(u64::from(q.qid))),
                ("label", Json::from(label)),
                ("shape", Json::from(shape)),
                ("calls", Json::from(q.calls)),
                ("memo_hits", Json::from(q.memo_hits)),
                ("memo_misses", Json::from(q.memo_misses)),
                ("hit_rate", q.hit_rate().map(Json::from).unwrap_or(Json::Null)),
                ("exec_ns", Json::from(q.exec_ns)),
                ("rows", Json::from(q.rows)),
                ("hash_builds", Json::from(q.hash_builds)),
                ("rows_built", Json::from(q.rows_built)),
                ("rows_probed", Json::from(q.rows_probed)),
                ("wall_ns", Json::from(profiler.total_ns_of("query", u64::from(q.qid)))),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::from(1u64)),
        (
            "phases",
            Json::obj([
                ("expand_ns", Json::from(p.expand_ns)),
                ("eval_ns", Json::from(p.eval_ns)),
                ("intern_ns", Json::from(p.intern_ns)),
                ("visit_ns", Json::from(p.visit_ns)),
            ]),
        ),
        ("spans", Json::Arr(spans)),
        ("folded", Json::Arr(folded)),
        ("queries", Json::Arr(queries)),
    ])
}

/// Print the top-`k` per-query cost attribution rows, hottest first.
fn print_attribution_table(
    spec: &wave::spec::CompiledSpec,
    v: &wave::Verification,
    profiler: &wave::core::SpanProfiler,
    k: usize,
) {
    if v.stats.queries.is_empty() {
        println!("profile: no query executions recorded");
        return;
    }
    let catalog = query_catalog(spec);
    let mut rows: Vec<_> = v.stats.queries.iter().collect();
    rows.sort_by(|a, b| b.exec_ns.cmp(&a.exec_ns).then(a.qid.cmp(&b.qid)));
    println!(
        "per-query cost attribution (top {} of {} by exec time):",
        k.min(rows.len()),
        rows.len()
    );
    println!(
        "  {:>4} {:>9} {:>8} {:>9} {:>9} {:>9}  {:<28} plan",
        "qid", "calls", "hit%", "rows", "exec_ms", "wall_ms", "label"
    );
    for q in rows.iter().take(k) {
        let (label, shape) = catalog
            .get(q.qid as usize)
            .cloned()
            .unwrap_or_else(|| ("?".to_string(), "?".to_string()));
        let hit = q.hit_rate().map(|r| format!("{:.1}", r * 100.0)).unwrap_or_else(|| "-".into());
        println!(
            "  {:>4} {:>9} {:>8} {:>9} {:>9.3} {:>9.3}  {:<28} {}",
            q.qid,
            q.calls,
            hit,
            q.rows,
            q.exec_ns as f64 / 1e6,
            profiler.total_ns_of("query", u64::from(q.qid)) as f64 / 1e6,
            label,
            shape,
        );
    }
}

/// Static analysis over a spec (and optionally properties): spanned
/// diagnostics in text, JSON, or SARIF form. Warnings exit 0 unless
/// `--deny warnings` promotes them; error-level findings exit 1.
fn cmd_lint(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    // `--explain CODE` is a documentation lookup, not a lint run: it
    // needs no spec file and ignores every other flag.
    if let Some(code) = take_value(&mut args, "--explain") {
        let code = code.to_ascii_uppercase();
        match (wave_lint::code_severity(&code), wave_lint::code_explanation(&code)) {
            (Some(severity), Some(explanation)) => {
                let desc = wave_lint::code_description(&code).unwrap_or_default();
                println!("{code} ({severity}): {desc}");
                println!();
                println!("{explanation}");
                return ExitCode::SUCCESS;
            }
            _ => {
                eprintln!("--explain {code}: not a registered diagnostic code");
                return ExitCode::from(2);
            }
        }
    }
    let mut properties = Vec::new();
    while let Some(p) = take_value(&mut args, "--property") {
        // a value naming a readable file is loaded from disk; anything
        // else is inline LTL-FO text
        if std::path::Path::new(&p).is_file() {
            match std::fs::read_to_string(&p) {
                Ok(text) => {
                    properties.push(wave_lint::PropertySource { label: p, text });
                }
                Err(e) => {
                    eprintln!("cannot read property file {p}: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            let label = format!("property#{}", properties.len() + 1);
            properties.push(wave_lint::PropertySource { label, text: p });
        }
    }
    let format = take_value(&mut args, "--format").unwrap_or_else(|| "text".to_string());
    if !matches!(format.as_str(), "text" | "json" | "sarif") {
        eprintln!("--format must be text, json, or sarif, got {format:?}");
        return ExitCode::from(2);
    }
    let mut config = wave_lint::LintConfig::default();
    if let Some(what) = take_value(&mut args, "--deny") {
        if what != "warnings" {
            eprintln!("--deny only understands \"warnings\", got {what:?}");
            return ExitCode::from(2);
        }
        config.deny_warnings = true;
    }
    while let Some(code) = take_value(&mut args, "--allow") {
        match wave_lint::code_severity(&code) {
            Some(wave_lint::Severity::Note | wave_lint::Severity::Warning) => {
                config.allow.insert(code);
            }
            Some(wave_lint::Severity::Error) => {
                eprintln!("--allow {code}: hard errors cannot be allowed");
                return ExitCode::from(2);
            }
            None => {
                eprintln!("--allow {code}: not a registered diagnostic code");
                return ExitCode::from(2);
            }
        }
    }
    let [path] = args.as_slice() else {
        eprintln!("lint needs exactly one spec file, got {args:?}");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let req = wave_lint::LintRequest { spec_path: path.clone(), spec_src: src, properties };
    let diags = config.apply(wave_lint::lint(&req));
    match format.as_str() {
        "json" => print!("{}", wave_lint::render_json(&req, &diags)),
        "sarif" => print!("{}", wave_lint::render_sarif(&req, &diags)),
        _ => {
            print!("{}", wave_lint::render_text(&req, &diags));
            let summary = wave_lint::summary(&diags);
            if summary.is_empty() {
                eprintln!("{path}: no findings");
            } else {
                eprintln!("{path}: {summary}");
            }
        }
    }
    if wave_lint::has_errors(&diags) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// How many trailing events the `--trace-out` flight recorder keeps for
/// the stderr dump on budget exhaustion or panic.
const FLIGHT_RECORDER_CAPACITY: usize = 256;

/// Run one check with a JSONL tracer streaming to `out` and a flight
/// recorder watching the tail. The recorder is dumped to stderr when the
/// search dies (panic) or gives up (budget exhausted) — the last events
/// before the end are exactly what a bug report needs.
fn run_traced(
    verifier: &Verifier,
    property: &wave::ltl::Property,
    out: &str,
) -> Result<wave::Verification, String> {
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut tracer = wave::core::Tee(
        wave::core::JsonlTracer::new(std::io::BufWriter::new(file)),
        wave::core::FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
    );
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        verifier.check_traced(property, &mut tracer)
    }));
    let wave::core::Tee(jsonl, recorder) = tracer;
    let v = match run {
        Ok(result) => result.map_err(|e| e.to_string())?,
        Err(panic) => {
            eprintln!("search panicked; flight recorder tail:\n{}", recorder.dump());
            std::panic::resume_unwind(panic);
        }
    };
    jsonl.finish().map_err(|e| format!("write {out}: {e}"))?;
    if let Verdict::Unknown(b) = &v.verdict {
        eprintln!("budget exhausted ({b:?}); flight recorder tail:\n{}", recorder.dump());
    }
    Ok(v)
}

/// `wave check --fleet`: bind a dispatcher, optionally spawn in-process
/// workers, and verify across whatever connects. The dispatcher's local
/// fallback guarantees completion even if no worker ever shows up.
fn run_fleet(
    addr: &str,
    workers: usize,
    verifier: &Verifier,
    spec_text: &str,
    property_text: &str,
    property: &wave::ltl::Property,
) -> Result<wave::Verification, String> {
    let dispatcher = wave_svc::FleetDispatcher::bind(addr, wave_svc::FleetOptions::default())
        .map_err(|e| format!("cannot bind fleet dispatcher on {addr}: {e}"))?;
    let bound = dispatcher.local_addr().map_err(|e| format!("bound address: {e}"))?;
    eprintln!("wave check: fleet dispatcher listening on {bound}");
    std::thread::scope(|scope| {
        for i in 0..workers {
            let config = wave_svc::WorkerConfig {
                name: format!("local-{i}"),
                ..wave_svc::WorkerConfig::new(bound.to_string())
            };
            scope.spawn(move || {
                if let Err(e) = wave_svc::run_worker(&config) {
                    eprintln!("fleet worker {}: {e}", config.name);
                }
            });
        }
        wave_svc::check_fleet(&dispatcher, verifier, spec_text, property_text, property)
            .map_err(|e| e.to_string())
    })
}

/// `wave worker`: one fleet worker process, run until the dispatcher
/// finishes the session (or the connection is lost).
fn cmd_worker(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let Some(connect) = take_value(&mut args, "--connect") else {
        eprintln!("worker needs --connect <host:port>");
        return ExitCode::from(2);
    };
    let mut config = wave_svc::WorkerConfig::new(connect);
    if let Some(name) = take_value(&mut args, "--name") {
        config.name = name;
    }
    for (flag, slot) in
        [("--max-units", &mut config.max_units), ("--chaos-abort-unit", &mut config.abort_unit)]
    {
        if let Some(n) = take_value(&mut args, flag) {
            match n.parse::<u64>() {
                Ok(n) if n >= 1 => *slot = Some(n),
                _ => {
                    eprintln!("{flag} needs a positive integer, got {n:?}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    if !args.is_empty() {
        eprintln!("worker: unexpected arguments {args:?}");
        return ExitCode::from(2);
    }
    match wave_svc::run_worker(&config) {
        Ok(report) => {
            eprintln!("wave worker: done, {} units completed", report.units_completed);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("worker error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_validate(rest: &[String]) -> ExitCode {
    let [path] = rest else {
        eprintln!("validate needs exactly one spec file");
        return ExitCode::from(2);
    };
    let (spec, _) = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let compiled = match wave::spec::CompiledSpec::compile(spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let s = &compiled.spec;
    println!("specification {:?} is valid", s.name);
    println!(
        "  {} pages (home: {}), {} database / {} state / {} action relations, \
         {} inputs, {} constants",
        s.pages.len(),
        s.home,
        s.database.len(),
        s.states.len(),
        s.actions.len(),
        s.inputs.len(),
        s.all_constants().len(),
    );
    let (plans, interp) = compiled.plan_coverage();
    println!("  {plans} rules compiled to parameterized plans, {interp} interpreted");
    if compiled.is_input_bounded() {
        println!("  input-bounded: complete verification available");
    } else {
        println!("  NOT input-bounded — wave will run as a sound incomplete verifier:");
        for r in &compiled.ib_report {
            match r {
                wave::spec::IbReport::Rule { page, rel, violation } => {
                    println!("    - page {page}, rule for {rel}: {violation}")
                }
                wave::spec::IbReport::OptionRule { page, input, violation } => {
                    println!("    - page {page}, options for {input}: {violation}")
                }
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_fmt(rest: &[String]) -> ExitCode {
    let [path] = rest else {
        eprintln!("fmt needs exactly one spec file");
        return ExitCode::from(2);
    };
    match load_spec(path) {
        Ok((spec, _)) => {
            print!("{}", wave::spec::print_spec(&spec));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Shared `--jobs/--cache-*` parsing for batch and serve.
fn service_config(args: &mut Vec<String>) -> Result<wave_svc::ServiceConfig, String> {
    let mut config = wave_svc::ServiceConfig::default();
    if let Some(n) = take_value(args, "--jobs") {
        config.jobs = n
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| format!("--jobs needs a positive integer, got {n:?}"))?;
    }
    config.cache_dir = take_value(args, "--cache-dir").map(Into::into);
    if take_flag(args, "--no-cache") {
        config.use_cache = false;
    }
    if let Some(n) = take_value(args, "--cache-mem-entries") {
        config.cache_mem_entries = n.parse().map_err(|_| {
            format!("--cache-mem-entries needs an integer (0 = unbounded), got {n:?}")
        })?;
    }
    if let Some(days) = take_value(args, "--cache-gc-days") {
        let days: f64 =
            days.parse().ok().filter(|d: &f64| d.is_finite() && *d >= 0.0).ok_or_else(|| {
                format!("--cache-gc-days needs a non-negative number, got {days:?}")
            })?;
        config.cache_gc_age = Some(Duration::from_secs_f64(days * 86_400.0));
    }
    if let Some(mb) = take_value(args, "--cache-gc-mb") {
        let mb: u64 =
            mb.parse().map_err(|_| format!("--cache-gc-mb needs an integer, got {mb:?}"))?;
        config.cache_gc_bytes = Some(mb.saturating_mul(1 << 20));
    }
    Ok(config)
}

fn cmd_batch(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let config = match service_config(&mut args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let [path] = args.as_slice() else {
        eprintln!("batch needs exactly one jobs.jsonl file, got {args:?}");
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let svc = match wave_svc::VerifyService::new(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start service: {e}");
            return ExitCode::from(2);
        }
    };
    let records = wave_svc::run_batch(&svc, &input);
    print!("{}", wave_svc::render_records(&records));
    eprintln!("{}", wave_svc::summary(&records));
    if records.iter().any(|r| r.verdict == "error") {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_serve(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let service = match service_config(&mut args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut config = wave_svc::ServerConfig {
        jobs: service.jobs,
        use_cache: service.use_cache,
        cache_dir: service.cache_dir,
        cache_mem_entries: service.cache_mem_entries,
        cache_gc_age: service.cache_gc_age,
        cache_gc_bytes: service.cache_gc_bytes,
        ..wave_svc::ServerConfig::default()
    };
    let Some(addr) = take_value(&mut args, "--addr") else {
        eprintln!("serve needs --addr <host:port>");
        return ExitCode::from(2);
    };
    config.addr = addr;
    config.metrics_addr = take_value(&mut args, "--metrics-addr");
    if let Some(n) = take_value(&mut args, "--max-connections") {
        match n.parse::<usize>() {
            Ok(n) if n >= 1 => config.max_connections = n,
            _ => {
                eprintln!("--max-connections needs a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(secs) = take_value(&mut args, "--read-timeout") {
        match secs.parse::<f64>() {
            Ok(s) if s > 0.0 => config.read_timeout = Duration::from_secs_f64(s),
            _ => {
                eprintln!("--read-timeout needs a positive number of seconds");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(secs) = take_value(&mut args, "--write-timeout") {
        match secs.parse::<f64>() {
            Ok(s) if s > 0.0 => config.write_timeout = Duration::from_secs_f64(s),
            _ => {
                eprintln!("--write-timeout needs a positive number of seconds");
                return ExitCode::from(2);
            }
        }
    }
    // undocumented fault-injection switch for the integration tests: a
    // {"cmd":"panic"} request panics its connection handler
    if take_flag(&mut args, "--chaos") {
        config.chaos = true;
    }
    if !args.is_empty() {
        eprintln!("serve: unexpected arguments {args:?}");
        return ExitCode::from(2);
    }
    let server = match wave_svc::Server::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::from(2);
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("wave serve: listening on {addr}"),
        Err(e) => {
            eprintln!("cannot read bound address: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(addr) = server.metrics_addr() {
        eprintln!("wave serve: Prometheus metrics on http://{addr}/metrics");
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_prof(rest: &[String]) -> ExitCode {
    match rest.first().map(String::as_str) {
        Some("flame") => cmd_prof_flame(&rest[1..]),
        _ => {
            eprintln!("usage: wave prof flame <profile.json>");
            ExitCode::from(2)
        }
    }
}

/// Print the folded-stack lines of a `--profile-out` report, one per
/// line — the input format of inferno / flamegraph.pl.
fn cmd_prof_flame(rest: &[String]) -> ExitCode {
    let [path] = rest else {
        eprintln!("prof flame needs exactly one profile.json file, got {rest:?}");
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let profile = match wave_svc::parse_json(&input) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(folded) = profile.get("folded").and_then(wave_svc::Json::as_array) else {
        eprintln!("{path}: no \"folded\" array — not a wave profile");
        return ExitCode::from(2);
    };
    for line in folded {
        match line.as_str() {
            Some(s) => println!("{s}"),
            None => {
                eprintln!("{path}: non-string folded entry");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trace(rest: &[String]) -> ExitCode {
    match rest.first().map(String::as_str) {
        Some("summarize") => cmd_trace_summarize(&rest[1..]),
        _ => {
            eprintln!("usage: wave trace summarize <trace.jsonl> [--top <k>]");
            ExitCode::from(2)
        }
    }
}

/// Summarize a `--trace-out` JSONL file: event counts, an expansion
/// depth histogram, and the top-k most expensive expansions.
fn cmd_trace_summarize(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let top_k = match take_value(&mut args, "--top") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--top needs a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        },
        None => 5,
    };
    let [path] = args.as_slice() else {
        eprintln!("trace summarize needs exactly one trace.jsonl file, got {args:?}");
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut counts: Vec<(String, u64)> = Vec::new(); // first-seen order
    let mut depths: Vec<u64> = Vec::new(); // depth -> expand count
    let mut expansions: Vec<(u64, u64, u64, u64)> = Vec::new(); // (dur_ns, line, depth, succs)
    let mut total = 0u64;
    // v2 roll-ups: memo traffic, hash-join builds, spill/compaction work
    let mut memo = [0u64; 3]; // hits, misses, evictions
    let mut join_builds = 0u64;
    let mut spill = [0u64; 2]; // pairs, segments
                               // spill events carry a compactions delta since v1; dedicated compact
                               // events repeat it since v2 — count each stream separately and
                               // prefer the dedicated one when present
    let mut spill_compactions = 0u64;
    let mut compact_events: Option<u64> = None;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event = match wave_svc::parse_json(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}:{}: not a JSON event: {e}", lineno + 1);
                return ExitCode::from(2);
            }
        };
        // v1 is a strict subset of v2 (v2 added the memo, join_build,
        // and compact kinds), so any version up to ours decodes fine
        let version = event.get("v").and_then(wave_svc::Json::as_u64);
        if !version.is_some_and(|v| (1..=u64::from(wave::core::TRACE_SCHEMA_VERSION)).contains(&v))
        {
            eprintln!(
                "{path}:{}: trace schema version {version:?}, this wave understands 1..={}",
                lineno + 1,
                wave::core::TRACE_SCHEMA_VERSION
            );
            return ExitCode::from(2);
        }
        let Some(tag) = event.get("ev").and_then(wave_svc::Json::as_str) else {
            eprintln!("{path}:{}: event without \"ev\" tag", lineno + 1);
            return ExitCode::from(2);
        };
        total += 1;
        match counts.iter_mut().find(|(t, _)| t == tag) {
            Some((_, n)) => *n += 1,
            None => counts.push((tag.to_string(), 1)),
        }
        let field = |k: &str| event.get(k).and_then(wave_svc::Json::as_u64).unwrap_or(0);
        match tag {
            "expand" => {
                let depth = field("depth");
                let succs = field("succs");
                let dur = field("dur_ns");
                if depths.len() <= depth as usize {
                    depths.resize(depth as usize + 1, 0);
                }
                depths[depth as usize] += 1;
                expansions.push((dur, lineno as u64 + 1, depth, succs));
            }
            "memo" => {
                memo[0] += field("hits");
                memo[1] += field("misses");
                memo[2] += field("evictions");
            }
            "join_build" => join_builds += field("builds"),
            "spill" => {
                spill[0] += field("pairs");
                spill[1] += field("segments");
                spill_compactions += field("compactions");
            }
            "compact" => {
                *compact_events.get_or_insert(0) += field("compactions");
            }
            _ => {}
        }
    }

    println!("{total} events in {path}");
    println!("event counts:");
    for (tag, n) in &counts {
        println!("  {tag:<12} {n}");
    }
    if memo[0] + memo[1] > 0 {
        println!(
            "memo: {} hits / {} misses ({:.1}% hit rate), {} evictions",
            memo[0],
            memo[1],
            memo[0] as f64 / (memo[0] + memo[1]) as f64 * 100.0,
            memo[2],
        );
    }
    if join_builds > 0 {
        println!("joins: {join_builds} hash tables built");
    }
    if spill[0] > 0 {
        println!(
            "spill: {} pairs in {} segments, {} compactions",
            spill[0],
            spill[1],
            compact_events.unwrap_or(spill_compactions),
        );
    }
    if !depths.is_empty() {
        let widest = *depths.iter().max().unwrap();
        println!("expansion depth histogram:");
        for (depth, n) in depths.iter().enumerate() {
            let bar = "#".repeat((n * 40 / widest.max(1)) as usize);
            println!("  depth {depth:>4}: {n:>8} {bar}");
        }
    }
    if !expansions.is_empty() {
        expansions.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        println!("top {} expansions by duration:", top_k.min(expansions.len()));
        for (dur, line, depth, succs) in expansions.iter().take(top_k) {
            println!(
                "  line {line:>6}: {:>10.3} ms, depth {depth}, {succs} successors",
                *dur as f64 / 1e6
            );
        }
    }
    ExitCode::SUCCESS
}

/// Default output of `wave bench` — committed at the repo root, kept
/// fresh by the CI gate (`wave bench --check`).
const BENCH_FILE: &str = "BENCH_store.json";

/// Hot-tier budgets the store bench runs at: a generous budget the
/// suites fit inside (the fast path) and a zero budget that forces every
/// visited pair through the spill path.
const BENCH_BUDGETS_MB: [u64; 2] = [64, 0];

/// Row fields `wave bench --check` compares. Everything the search
/// determines — verdict, work counts, and tier traffic — is in here;
/// `elapsed_ms` is informational and excluded.
const BENCH_DETERMINISTIC_KEYS: [&str; 14] = [
    "suite",
    "prop",
    "mem_mb",
    "verdict",
    "configs",
    "cores",
    "assignments",
    "max_run_len",
    "max_trie",
    "max_resident",
    "max_spilled",
    "spill_pairs",
    "spill_segments",
    "spill_compactions",
];

/// The E1–E4 benchmark suites.
fn bench_suites() -> [wave::apps::AppSuite; 4] {
    [
        wave::apps::e1::suite(),
        wave::apps::e2::suite(),
        wave::apps::e3::suite(),
        wave::apps::e4::suite(),
    ]
}

/// Informational measurement columns shared by both bench files:
/// per-phase wall-time plus the memo/intern hit rates. Excluded from the
/// drift check (timing varies run to run; the hit-rate split varies
/// under the parallel scheduler).
fn bench_measured(v: &wave::Verification) -> Vec<(&'static str, wave_svc::Json)> {
    use wave_svc::Json;
    let p = &v.stats.profile;
    let ms = |ns: u64| Json::from(ns as f64 / 1e6);
    let opt = |r: Option<f64>| r.map(Json::from).unwrap_or(wave_svc::Json::Null);
    vec![
        ("expand_ms", ms(p.expand_ns)),
        ("eval_ms", ms(p.eval_ns)),
        ("intern_ms", ms(p.intern_ns)),
        ("visit_ms", ms(p.visit_ns)),
        ("intern_hit_rate", opt(p.intern_hit_rate())),
        ("memo_hit_rate", opt(p.memo_hit_rate())),
        ("join_builds", Json::from(p.join_builds)),
        ("slice_rules_removed", Json::from(p.slice_rules_removed)),
        ("slice_relations_removed", Json::from(p.slice_relations_removed)),
        ("flow_dead_rules", Json::from(p.flow_dead_rules)),
        ("elapsed_ms", Json::from(v.stats.elapsed.as_secs_f64() * 1e3)),
    ]
}

fn bench_verdict(v: &wave::Verification) -> &'static str {
    match &v.verdict {
        Verdict::Holds => "holds",
        Verdict::Violated(_) => "violated",
        Verdict::Unknown(_) => "unknown",
    }
}

/// Run every E1–E4 property on the tiered store at each bench budget,
/// one JSON row per (suite, budget, property).
fn bench_rows() -> Result<Vec<wave_svc::Json>, String> {
    use wave_svc::Json;
    let mut rows = Vec::new();
    for suite in &bench_suites() {
        for &mb in &BENCH_BUDGETS_MB {
            let options = VerifyOptions {
                state_store: wave::core::StateStoreKind::Tiered(wave::core::TierParams {
                    mem_bytes: mb << 20,
                    spill_dir: None,
                }),
                ..Default::default()
            };
            let verifier = Verifier::with_options(suite.spec.clone(), options)
                .map_err(|e| format!("{}: {e}", suite.name))?;
            for case in &suite.properties {
                let v = verifier
                    .check_str(&case.text)
                    .map_err(|e| format!("{} {}: {e}", suite.name, case.name))?;
                let mut pairs = vec![
                    ("suite", Json::from(suite.name)),
                    ("prop", Json::from(case.name)),
                    ("mem_mb", Json::from(mb)),
                    ("verdict", Json::from(bench_verdict(&v))),
                    ("configs", Json::from(v.stats.configs)),
                    ("cores", Json::from(v.stats.cores)),
                    ("assignments", Json::from(v.stats.assignments)),
                    ("max_run_len", Json::from(v.stats.max_run_len)),
                    ("max_trie", Json::from(v.stats.max_trie)),
                    ("max_resident", Json::from(v.stats.max_resident)),
                    ("max_spilled", Json::from(v.stats.max_spilled)),
                    ("spill_pairs", Json::from(v.stats.profile.spill_pairs)),
                    ("spill_segments", Json::from(v.stats.profile.spill_segments)),
                    ("spill_compactions", Json::from(v.stats.profile.spill_compactions)),
                ];
                pairs.extend(bench_measured(&v));
                rows.push(Json::obj(pairs));
            }
        }
    }
    Ok(rows)
}

/// Default output of the query-engine bench — committed at the repo
/// root next to [`BENCH_FILE`], same freshness gate.
const BENCH_QUERY_FILE: &str = "BENCH_query.json";

/// Deterministic columns of the query bench. Identical between
/// `joins=opt` and `joins=naive` rows of one property — the optimizer
/// and memo are semantics-neutral — so the drift gate doubles as an
/// equivalence check on the committed file.
const BENCH_QUERY_DETERMINISTIC_KEYS: [&str; 9] = [
    "suite",
    "prop",
    "joins",
    "verdict",
    "configs",
    "cores",
    "assignments",
    "max_run_len",
    "max_trie",
];

/// Run every E1–E4 property with the query engine on (`joins=opt`) and
/// off (`joins=naive`, the `--naive-joins` ablation), one row per
/// (suite, property, mode).
fn bench_query_rows() -> Result<Vec<wave_svc::Json>, String> {
    use wave_svc::Json;
    let mut rows = Vec::new();
    for suite in &bench_suites() {
        for naive in [false, true] {
            let options = VerifyOptions { naive_joins: naive, ..Default::default() };
            let verifier = Verifier::with_options(suite.spec.clone(), options)
                .map_err(|e| format!("{}: {e}", suite.name))?;
            for case in &suite.properties {
                let v = verifier
                    .check_str(&case.text)
                    .map_err(|e| format!("{} {}: {e}", suite.name, case.name))?;
                let mut pairs = vec![
                    ("suite", Json::from(suite.name)),
                    ("prop", Json::from(case.name)),
                    ("joins", Json::from(if naive { "naive" } else { "opt" })),
                    ("verdict", Json::from(bench_verdict(&v))),
                    ("configs", Json::from(v.stats.configs)),
                    ("cores", Json::from(v.stats.cores)),
                    ("assignments", Json::from(v.stats.assignments)),
                    ("max_run_len", Json::from(v.stats.max_run_len)),
                    ("max_trie", Json::from(v.stats.max_trie)),
                ];
                pairs.extend(bench_measured(&v));
                rows.push(Json::obj(pairs));
            }
        }
    }
    Ok(rows)
}

/// Default output of the slice bench — committed at the repo root next
/// to [`BENCH_FILE`], same freshness gate.
const BENCH_SLICE_FILE: &str = "BENCH_slice.json";

/// Deterministic columns of the slice bench. Identical between
/// `slice=on` and `slice=off` rows of one property — the slice is
/// runtime-inert (DESIGN.md §14) — so the drift gate doubles as an
/// equivalence check on the committed file. The slice counters are
/// measured columns: they differ between the modes by design.
const BENCH_SLICE_DETERMINISTIC_KEYS: [&str; 9] = [
    "suite",
    "prop",
    "slice",
    "verdict",
    "configs",
    "cores",
    "assignments",
    "max_run_len",
    "max_trie",
];

/// Dead delete rules stamped per page into the slice bench spec.
const SLICE_BENCH_DEAD_RULES: usize = 6;

/// The slice bench workload: a programmatically generated spec whose
/// live core is a two-page navigation loop growing `seen`/`log`, plus
/// statically dead freight for the slice to remove — a value-set-refuted
/// `ghost` writer, a `mirror` relation fed only by `ghost`, per-page
/// batches of refuted delete rules (so both pages take the monotone
/// fast path once sliced), and a `Limbo` page reachable only through a
/// refuted edge.
fn slice_bench_spec() -> String {
    let mut s = String::from(
        "spec slicebench {\n  state { seen(v); log(v); ghost(v); mirror(v); }\n  \
         inputs { pick(v); }\n  home A;\n",
    );
    let options = "    options pick(v) <- v = \"a\" | v = \"b\" | v = \"c\";\n";
    for (page, hop) in [("A", "B"), ("B", "A")] {
        s.push_str(&format!("  page {page} {{\n    inputs {{ pick }}\n"));
        s.push_str(options);
        s.push_str("    insert seen(v) <- pick(v);\n");
        s.push_str("    insert log(v) <- pick(v) & seen(v);\n");
        s.push_str("    insert ghost(v) <- pick(v) & v = \"z\";\n");
        s.push_str("    insert mirror(v) <- ghost(v) & pick(v);\n");
        for k in 0..SLICE_BENCH_DEAD_RULES {
            s.push_str(&format!(
                "    delete log(v) <- seen(v) & pick(v) & v = \"z\" \
                 & exists w{k}: (seen(w{k}) & log(w{k}));\n"
            ));
        }
        s.push_str("    delete seen(v) <- mirror(v) & pick(v);\n");
        s.push_str(&format!("    target {hop} <- pick(\"a\");\n"));
        s.push_str(&format!("    target {page} <- pick(\"b\");\n"));
        s.push_str("    target Limbo <- ghost(\"z\");\n");
        s.push_str("  }\n");
    }
    s.push_str(
        "  page Limbo {\n    inputs { pick }\n    options pick(v) <- v = \"a\";\n    \
         insert log(v) <- pick(v) & exists u: (seen(u) & log(u) & v = u);\n    \
         target A <- pick(\"a\");\n  }\n}\n",
    );
    s
}

/// The slice bench properties: full-exploration PASS properties (where
/// per-configuration savings accumulate) plus one violated property.
const SLICE_BENCH_PROPS: [(&str, &str); 3] =
    [("S1", "G !ghost(\"z\")"), ("S2", "G (log(\"a\") -> seen(\"a\"))"), ("S3", "G !log(\"c\")")];

/// Run the slice bench with slicing on (`slice=on`) and off
/// (`slice=off`, the `--no-slice` ablation), one row per (property,
/// mode).
fn bench_slice_rows() -> Result<Vec<wave_svc::Json>, String> {
    use wave_svc::Json;
    let source = slice_bench_spec();
    let spec = parse_spec(&source).map_err(|e| format!("slicebench: {e}"))?;
    let mut rows = Vec::new();
    for slice in [true, false] {
        let options = VerifyOptions { slice, ..Default::default() };
        let verifier = Verifier::with_options(spec.clone(), options)
            .map_err(|e| format!("slicebench: {e}"))?;
        for (name, text) in SLICE_BENCH_PROPS {
            let v = verifier.check_str(text).map_err(|e| format!("slicebench {name}: {e}"))?;
            let mut pairs = vec![
                ("suite", Json::from("S")),
                ("prop", Json::from(name)),
                ("slice", Json::from(if slice { "on" } else { "off" })),
                ("verdict", Json::from(bench_verdict(&v))),
                ("configs", Json::from(v.stats.configs)),
                ("cores", Json::from(v.stats.cores)),
                ("assignments", Json::from(v.stats.assignments)),
                ("max_run_len", Json::from(v.stats.max_run_len)),
                ("max_trie", Json::from(v.stats.max_trie)),
            ];
            pairs.extend(bench_measured(&v));
            rows.push(Json::obj(pairs));
        }
    }
    Ok(rows)
}

/// One row per line so `BENCH_store.json` diffs review cleanly.
fn render_bench(rows: &[wave_svc::Json]) -> String {
    let mut out = String::from("{\"schema\": 1, \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.to_string());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Compare measured rows against a committed bench file on the given
/// deterministic keys; returns the number of drifted values.
fn bench_drift(out: &str, rows: &[wave_svc::Json], keys: &[&str]) -> Result<usize, String> {
    let committed = std::fs::read_to_string(out)
        .map_err(|e| format!("cannot read {out}: {e} (run `wave bench --record` first)"))?;
    let committed =
        wave_svc::parse_json(&committed).map_err(|e| format!("{out}: not valid JSON: {e}"))?;
    let Some(old_rows) = committed.get("rows").and_then(wave_svc::Json::as_array) else {
        return Err(format!("{out}: no \"rows\" array"));
    };
    let mut drift = 0usize;
    if old_rows.len() != rows.len() {
        eprintln!("{out}: {} committed rows, measured {}", old_rows.len(), rows.len());
        drift += 1;
    }
    for (old, new) in old_rows.iter().zip(rows) {
        for &key in keys {
            if old.get(key) != new.get(key) {
                let tag = |k: &str| new.get(k).map(wave_svc::Json::to_string).unwrap_or_default();
                let mode = if new.get("mem_mb").is_some() {
                    "mem_mb"
                } else if new.get("slice").is_some() {
                    "slice"
                } else {
                    "joins"
                };
                eprintln!(
                    "drift in {}/{} ({mode}={}): {key} was {}, measured {}",
                    new.get("suite").and_then(wave_svc::Json::as_str).unwrap_or("?"),
                    new.get("prop").and_then(wave_svc::Json::as_str).unwrap_or("?"),
                    tag(mode),
                    old.get(key).unwrap_or(&wave_svc::Json::Null),
                    new.get(key).unwrap_or(&wave_svc::Json::Null),
                );
                drift += 1;
            }
        }
    }
    Ok(drift)
}

/// Default run ledger — append-only JSONL at the repo root, one entry
/// per bench kind per `wave bench --record` run.
const LEDGER_FILE: &str = "LEDGER.jsonl";

/// Allowed suite wall-time regression (percent) before the ledger gate
/// fails `wave bench --check`. Generous by default: CI machines are
/// noisy, and the gate is a backstop against order-of-magnitude
/// regressions, not a microbenchmark.
const DEFAULT_MAX_REGRESS_PCT: f64 = 200.0;

/// FNV-1a over `bytes`, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of the benchmark workload: suite sources and property
/// texts. Ledger entries with different fingerprints measured different
/// work, so trend/gate comparisons across them would be meaningless.
fn bench_fingerprint() -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for suite in &bench_suites() {
        h = fnv1a(h, suite.name.as_bytes());
        h = fnv1a(h, suite.source.as_bytes());
        for case in &suite.properties {
            h = fnv1a(h, case.name.as_bytes());
            h = fnv1a(h, case.text.as_bytes());
        }
    }
    h = fnv1a(h, slice_bench_spec().as_bytes());
    for (name, text) in SLICE_BENCH_PROPS {
        h = fnv1a(h, name.as_bytes());
        h = fnv1a(h, text.as_bytes());
    }
    format!("{h:016x}")
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// repository.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One ledger entry: the bench kind, provenance keys, knobs, and the
/// full measured row set.
fn ledger_entry(
    kind: &str,
    rev: &str,
    knobs: wave_svc::Json,
    rows: &[wave_svc::Json],
) -> wave_svc::Json {
    use wave_svc::Json;
    Json::obj([
        ("v", Json::from(1u64)),
        ("kind", Json::from(kind)),
        ("rev", Json::from(rev)),
        ("fingerprint", Json::from(bench_fingerprint())),
        ("knobs", knobs),
        ("rows", Json::Arr(rows.to_vec())),
    ])
}

/// Parse every line of a ledger file. A missing file is an empty ledger.
fn read_ledger(path: &str) -> Result<Vec<wave_svc::Json>, String> {
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    let mut entries = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = wave_svc::parse_json(line)
            .map_err(|e| format!("{path}:{}: not a JSON entry: {e}", lineno + 1))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Append entries to the ledger (creating it when absent).
fn append_ledger(path: &str, entries: &[wave_svc::Json]) -> Result<(), String> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    for entry in entries {
        writeln!(file, "{entry}").map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

/// Stable identity of one bench row across ledger entries.
fn ledger_row_key(row: &wave_svc::Json) -> String {
    let suite = row.get("suite").and_then(wave_svc::Json::as_str).unwrap_or("?");
    let prop = row.get("prop").and_then(wave_svc::Json::as_str).unwrap_or("?");
    if let Some(mb) = row.get("mem_mb").and_then(wave_svc::Json::as_u64) {
        format!("{suite}/{prop} @{mb}MiB")
    } else if let Some(mode) = row.get("slice").and_then(wave_svc::Json::as_str) {
        format!("{suite}/{prop} slice={mode}")
    } else {
        format!(
            "{suite}/{prop} joins={}",
            row.get("joins").and_then(wave_svc::Json::as_str).unwrap_or("?")
        )
    }
}

fn row_elapsed_ms(row: &wave_svc::Json) -> f64 {
    row.get("elapsed_ms").and_then(wave_svc::Json::as_f64).unwrap_or(0.0)
}

/// Sum of `elapsed_ms` over an entry's rows (the gate's scalar).
fn entry_elapsed_ms(entry: &wave_svc::Json) -> f64 {
    entry
        .get("rows")
        .and_then(wave_svc::Json::as_array)
        .map(|rows| rows.iter().map(row_elapsed_ms).sum())
        .unwrap_or(0.0)
}

/// Unicode sparkline of a series, min–max normalized.
fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = series
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    series
        .iter()
        .map(|&v| {
            if hi <= lo {
                BARS[3]
            } else {
                let t = (v - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// `wave bench --trend`: per-property elapsed-time history across the
/// ledger entries of each bench kind.
fn bench_trend(ledger: &str) -> ExitCode {
    let entries = match read_ledger(ledger) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if entries.is_empty() {
        eprintln!("{ledger}: empty ledger — run `wave bench --record` first");
        return ExitCode::from(1);
    }
    for kind in ["store", "query", "slice"] {
        let of_kind: Vec<&wave_svc::Json> = entries
            .iter()
            .filter(|e| e.get("kind").and_then(wave_svc::Json::as_str) == Some(kind))
            .collect();
        if of_kind.is_empty() {
            continue;
        }
        let revs: Vec<&str> = of_kind
            .iter()
            .map(|e| e.get("rev").and_then(wave_svc::Json::as_str).unwrap_or("?"))
            .collect();
        println!("ledger trend — {kind} ({} entries: {})", of_kind.len(), revs.join(" → "));
        // row identities from the newest entry; older entries may miss some
        let Some(latest_rows) =
            of_kind.last().and_then(|e| e.get("rows")).and_then(wave_svc::Json::as_array)
        else {
            continue;
        };
        for row in latest_rows {
            let key = ledger_row_key(row);
            let series: Vec<f64> = of_kind
                .iter()
                .filter_map(|e| {
                    e.get("rows")
                        .and_then(wave_svc::Json::as_array)?
                        .iter()
                        .find(|r| ledger_row_key(r) == key)
                        .map(row_elapsed_ms)
                })
                .collect();
            let (first, last) = match (series.first(), series.last()) {
                (Some(&f), Some(&l)) => (f, l),
                _ => continue,
            };
            let delta = if first > 0.0 {
                format!("{:+.1}%", (last - first) / first * 100.0)
            } else {
                "n/a".to_string()
            };
            println!(
                "  {key:<28} {first:>9.3} → {last:>9.3} ms  ({delta:>7})  {}",
                sparkline(&series)
            );
        }
        let totals: Vec<f64> = of_kind.iter().map(|e| entry_elapsed_ms(e)).collect();
        let first = totals.first().copied().unwrap_or(0.0);
        let last = totals.last().copied().unwrap_or(0.0);
        println!(
            "  {:<28} {first:>9.3} → {last:>9.3} ms  ({:>7})  {}",
            "suite total",
            if first > 0.0 {
                format!("{:+.1}%", (last - first) / first * 100.0)
            } else {
                "n/a".to_string()
            },
            sparkline(&totals)
        );
    }
    ExitCode::SUCCESS
}

/// `wave bench --backfill`: seed the ledger from the committed bench
/// files (no re-run; provenance is recorded as `pre-ledger`).
fn bench_backfill(ledger: &str, out: &str, query_out: &str, slice_out: &str) -> ExitCode {
    use wave_svc::Json;
    let mut entries = Vec::new();
    for (path, kind, knobs) in [
        (
            out,
            "store",
            Json::obj([(
                "budgets_mb",
                Json::Arr(BENCH_BUDGETS_MB.iter().map(|&mb| Json::from(mb)).collect()),
            )]),
        ),
        (
            query_out,
            "query",
            Json::obj([("modes", Json::Arr(vec![Json::from("opt"), Json::from("naive")]))]),
        ),
        (
            slice_out,
            "slice",
            Json::obj([("modes", Json::Arr(vec![Json::from("on"), Json::from("off")]))]),
        ),
    ] {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e} (run `wave bench --record` first)");
                return ExitCode::from(2);
            }
        };
        let committed = match wave_svc::parse_json(&committed) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}: not valid JSON: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(rows) = committed.get("rows").and_then(wave_svc::Json::as_array) else {
            eprintln!("{path}: no \"rows\" array");
            return ExitCode::from(2);
        };
        entries.push(ledger_entry(kind, "pre-ledger", knobs, rows));
    }
    if let Err(e) = append_ledger(ledger, &entries) {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    eprintln!("bench: backfilled {} entries into {ledger}", entries.len());
    ExitCode::SUCCESS
}

/// The ledger regression gate: compare a measured suite's total wall
/// time against the most recent ledger entry of the same kind (and, when
/// available, the same fingerprint).
fn ledger_gate(
    entries: &[wave_svc::Json],
    kind: &str,
    rows: &[wave_svc::Json],
    max_regress_pct: f64,
) -> Result<(), String> {
    let fingerprint = bench_fingerprint();
    let of_kind = |same_fp: bool| {
        entries.iter().rev().find(|e| {
            e.get("kind").and_then(wave_svc::Json::as_str) == Some(kind)
                && (!same_fp
                    || e.get("fingerprint").and_then(wave_svc::Json::as_str)
                        == Some(fingerprint.as_str()))
        })
    };
    let Some(prev) = of_kind(true).or_else(|| of_kind(false)) else {
        eprintln!("bench: no {kind} ledger entry — regression gate skipped");
        return Ok(());
    };
    let prev_ms = entry_elapsed_ms(prev);
    let cur_ms: f64 = rows.iter().map(row_elapsed_ms).sum();
    let rev = prev.get("rev").and_then(wave_svc::Json::as_str).unwrap_or("?");
    if prev_ms > 0.0 && cur_ms > prev_ms * (1.0 + max_regress_pct / 100.0) {
        return Err(format!(
            "ledger gate: {kind} suite took {cur_ms:.1} ms, more than {max_regress_pct}% over \
             the last recorded {prev_ms:.1} ms (rev {rev})"
        ));
    }
    eprintln!(
        "bench: ledger gate ok — {kind} suite {cur_ms:.1} ms vs {prev_ms:.1} ms recorded at {rev} \
         (threshold +{max_regress_pct}%)"
    );
    Ok(())
}

/// `wave bench --record | --check | --trend | --backfill`: measure the
/// tiered store and the query engine on the benchmark suites, gate
/// drift against the committed results, and keep the run ledger.
fn cmd_bench(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let record = take_flag(&mut args, "--record");
    let check = take_flag(&mut args, "--check");
    let trend = take_flag(&mut args, "--trend");
    let backfill = take_flag(&mut args, "--backfill");
    let out = take_value(&mut args, "--out").unwrap_or_else(|| BENCH_FILE.to_string());
    let query_out =
        take_value(&mut args, "--query-out").unwrap_or_else(|| BENCH_QUERY_FILE.to_string());
    let slice_out =
        take_value(&mut args, "--slice-out").unwrap_or_else(|| BENCH_SLICE_FILE.to_string());
    let ledger = take_value(&mut args, "--ledger").unwrap_or_else(|| LEDGER_FILE.to_string());
    let max_regress = match take_value(&mut args, "--max-regress") {
        Some(pct) => match pct.parse::<f64>() {
            Ok(p) if p.is_finite() && p >= 0.0 => p,
            _ => {
                eprintln!("--max-regress needs a non-negative percentage, got {pct:?}");
                return ExitCode::from(2);
            }
        },
        None => DEFAULT_MAX_REGRESS_PCT,
    };
    if !args.is_empty() {
        eprintln!("bench: unexpected arguments {args:?}");
        return ExitCode::from(2);
    }
    if [record, check, trend, backfill].iter().filter(|&&f| f).count() != 1 {
        eprintln!("bench needs exactly one of --record, --check, --trend, or --backfill");
        return ExitCode::from(2);
    }
    if trend {
        return bench_trend(&ledger);
    }
    if backfill {
        return bench_backfill(&ledger, &out, &query_out, &slice_out);
    }
    eprintln!(
        "bench: E1–E4 property suites on the tiered store at {:?} MiB hot-tier budgets",
        BENCH_BUDGETS_MB
    );
    let store_rows = match bench_rows() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("bench: E1–E4 property suites with the query engine on (opt) and off (naive)");
    let query_rows = match bench_query_rows() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("bench: slice workload with property slicing on and off (--no-slice)");
    let slice_rows = match bench_slice_rows() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            return ExitCode::from(2);
        }
    };
    if record {
        for (path, rows) in
            [(&out, &store_rows), (&query_out, &query_rows), (&slice_out, &slice_rows)]
        {
            if let Err(e) = std::fs::write(path, render_bench(rows)) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("bench: wrote {} rows to {path}", rows.len());
        }
        let rev = git_rev();
        let entries = [
            ledger_entry(
                "store",
                &rev,
                wave_svc::Json::obj([(
                    "budgets_mb",
                    wave_svc::Json::Arr(
                        BENCH_BUDGETS_MB.iter().map(|&mb| wave_svc::Json::from(mb)).collect(),
                    ),
                )]),
                &store_rows,
            ),
            ledger_entry(
                "query",
                &rev,
                wave_svc::Json::obj([(
                    "modes",
                    wave_svc::Json::Arr(vec![
                        wave_svc::Json::from("opt"),
                        wave_svc::Json::from("naive"),
                    ]),
                )]),
                &query_rows,
            ),
            ledger_entry(
                "slice",
                &rev,
                wave_svc::Json::obj([(
                    "modes",
                    wave_svc::Json::Arr(vec![
                        wave_svc::Json::from("on"),
                        wave_svc::Json::from("off"),
                    ]),
                )]),
                &slice_rows,
            ),
        ];
        if let Err(e) = append_ledger(&ledger, &entries) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
        eprintln!("bench: appended {} entries to {ledger} (rev {rev})", entries.len());
        return ExitCode::SUCCESS;
    }
    let mut drift = 0usize;
    for (path, rows, keys) in [
        (&out, &store_rows, &BENCH_DETERMINISTIC_KEYS[..]),
        (&query_out, &query_rows, &BENCH_QUERY_DETERMINISTIC_KEYS[..]),
        (&slice_out, &slice_rows, &BENCH_SLICE_DETERMINISTIC_KEYS[..]),
    ] {
        match bench_drift(path, rows, keys) {
            Ok(0) => eprintln!("bench: {path} is fresh ({} rows match)", rows.len()),
            Ok(n) => drift += n,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    let ledger_entries = match read_ledger(&ledger) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut gate_failed = false;
    for (kind, rows) in [("store", &store_rows), ("query", &query_rows), ("slice", &slice_rows)] {
        if let Err(e) = ledger_gate(&ledger_entries, kind, rows, max_regress) {
            eprintln!("{e}");
            gate_failed = true;
        }
    }
    if drift > 0 {
        eprintln!("bench: {drift} drifted values — re-run `wave bench --record` and commit the bench files");
        ExitCode::from(1)
    } else if gate_failed {
        eprintln!("bench: wall-time regression beyond --max-regress {max_regress}% — investigate or re-record the ledger");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_automaton(rest: &[String]) -> ExitCode {
    let mut args = rest.to_vec();
    let Some(text) = take_value(&mut args, "--property") else {
        eprintln!("automaton needs --property \"<LTL-FO>\"");
        return ExitCode::from(2);
    };
    let property = match parse_property(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("property: {e}");
            return ExitCode::from(2);
        }
    };
    let extraction = wave::ltl::extract(&property.body.group_fo());
    println!("FO components:");
    for (i, f) in extraction.components.iter().enumerate() {
        println!("  P{i} := {f}");
    }
    let negated = wave::ltl::nnf(&extraction.aux, true);
    let buchi = wave::ltl::Buchi::from_nnf(&negated, extraction.components.len());
    println!("Buchi automaton for the NEGATED property (what the NDFS hunts):");
    print!("{buchi}");
    ExitCode::SUCCESS
}
