//! # wave — a verifier for interactive, data-driven web applications
//!
//! A from-scratch Rust implementation of the system described in
//! "A Verifier for Interactive, Data-driven Web Applications" (SIGMOD
//! 2005): sound and complete verification of LTL-FO temporal properties
//! for input-bounded, database-driven web application specifications,
//! via a nested depth-first search over pseudoruns with dataflow-based
//! core/extension pruning.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`spec`] — specification model, DSL parser, dataflow analysis,
//! * [`fol`] — first-order formulas, input-boundedness, evaluation,
//! * [`ltl`] — LTL-FO properties, GPVW Büchi construction,
//! * [`core`] — the verifier itself ([`Verifier`]),
//! * [`naive`] — the explicit-state baseline (the paper's "first cut"),
//! * [`apps`] — the four benchmark applications E1–E4,
//! * [`relalg`] — the in-memory relational engine substrate.
//!
//! ## Quickstart
//!
//! ```
//! use wave::{parse_spec, Verifier};
//!
//! let spec = parse_spec(r#"
//!     spec hello {
//!       inputs { button(x); }
//!       home A;
//!       page A {
//!         inputs { button }
//!         options button(x) <- x = "go";
//!         target B <- button("go");
//!       }
//!       page B { target A <- true; }
//!     }
//! "#).unwrap();
//! let verifier = Verifier::new(spec).unwrap();
//! assert!(verifier.check_str("G (@B -> X @A)").unwrap().verdict.holds());
//! ```

pub use wave_apps as apps;
pub use wave_core as core;
pub use wave_fol as fol;
pub use wave_ltl as ltl;
pub use wave_naive as naive;
pub use wave_relalg as relalg;
pub use wave_spec as spec;

pub use wave_core::{
    CancelToken, CounterExample, PreparedCheck, Stats, Verdict, Verification, Verifier,
    VerifyError, VerifyOptions,
};
pub use wave_ltl::{parse_property, Property};
pub use wave_naive::{NaiveOptions, NaiveVerdict, NaiveVerifier};
pub use wave_spec::{parse_spec, Spec};
