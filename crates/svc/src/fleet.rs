//! Fleet v1: distributed verification over the line-JSON protocol.
//!
//! A [`FleetDispatcher`] leases work units — the same `(check, unit,
//! core-range)` items the thread scheduler runs — to remote `wave
//! worker` processes over TCP, and reduces the returned
//! [`UnitOutcome`]s through the scheduler's deterministic settlement
//! pass, so the fleet verdict is **byte-identical to `--jobs 1`** even
//! across a lossy transport. A worker ([`run_worker`]) connects,
//! registers with a heartbeat, receives specs by fingerprint, and
//! executes units shipped as `(spec fingerprint, property, unit
//! ordinal, core range, budget lease)`.
//!
//! # Protocol
//!
//! One JSON object per line, tagged by a `"fleet"` field.
//!
//! Worker → dispatcher:
//!
//! * `{"fleet":"hello","name":N,"v":1}` — registration.
//! * `{"fleet":"hb"}` — heartbeat, every `heartbeat` interval.
//! * `{"fleet":"loaded","key":K,"units":U}` /
//!   `{"fleet":"load_error","key":K,"error":E}` — spec install reply.
//! * `{"fleet":"outcome","key":K,"unit":u,"result":…,"stats":…}` or
//!   `{"fleet":"outcome","key":K,"unit":u,"error":E}` — unit result.
//!
//! Dispatcher → worker:
//!
//! * `{"fleet":"welcome","heartbeat_ms":H}` — accept + cadence.
//! * `{"fleet":"load","key":K,"spec":S,"property":P,"options":O}` —
//!   install a spec under its fingerprint (sent once per connection
//!   per check; `O` is [`crate::service::options_to_json`] form).
//! * `{"fleet":"run","key":K,"unit":u,"ordinal":o,"lo":…,"hi":…,
//!   "lease_steps":…,"lease_ms":…,"chunk":C}` — execute one unit under
//!   a budget lease.
//! * `{"fleet":"bye"}` — session over.
//!
//! # Failure model: lease / heartbeat state machine
//!
//! Every dispatched unit is a *lease*. A lease ends one of three ways:
//!
//! * **outcome** — the worker's result is recorded (first completion
//!   wins; a duplicate from a re-dispatched twin is discarded by
//!   ordinal slot).
//! * **worker death** — EOF, a protocol error, or heartbeat silence
//!   longer than `heartbeat × heartbeat_grace` on the connection. The
//!   unit is re-enqueued with capped exponential backoff
//!   (`retry_base·2^(attempts−1)`, capped at `retry_cap`).
//! * **lease timeout** — the unit has been out longer than
//!   `lease_timeout`. The dispatcher *duplicates* it onto the pending
//!   queue for an idle worker (straggler re-dispatch) without killing
//!   the original lease; whichever copy finishes first is recorded.
//!
//! A worker-reported unit *error* is treated as a transport failure —
//! re-enqueued, never recorded — because a unit search is a pure
//! function of its item: a remote error says nothing about the local
//! outcome. After `max_remote_attempts` failed attempts the unit falls
//! back to the dispatcher's **local executor** (a big-stack thread
//! that runs items exactly like the thread scheduler), which also
//! picks up all work when no worker is connected and any unit stuck
//! pending longer than `lease_timeout`. The local executor is what
//! makes termination unconditional: with zero live workers the fleet
//! degrades to the thread scheduler.
//!
//! # Determinism argument
//!
//! Only `Ok` outcomes are ever recorded, each into its ordinal slot,
//! and the reduction is [`crate::scheduler::settle_checks`]: walk
//! ordinals in order, accept a completed `Clean`/`Violation` whose
//! `configs` fit the exact sequential leftover, re-run anything else
//! locally under precisely that leftover. Completed searches are pure
//! functions of `(unit, core-range, options)` — a worker's `Clean` at
//! ordinal `k` is byte-identical to a local one — so *any* lease
//! policy (kills, retries, duplicates, stragglers) only changes how
//! much settlement re-runs, never the verdict, the counters, or the
//! counterexample. Budget leases ship as exact integers
//! (`lease_steps`, nanosecond time limits in options) so worker-side
//! pool arithmetic matches the dispatcher's bit-for-bit.

use crate::cache::{
    ce_from_json, ce_to_json, fingerprint, profile_from_json, profile_to_json, u64_from_json,
    u64_to_json,
};
use crate::json::{self, Json};
use crate::metrics::SvcMetrics;
use crate::scheduler::{decompose, lock_tolerant, panic_message, CheckSlots, Item};
use crate::service::{options_to_json, parse_options};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wave_core::{
    Budget, BudgetPool, PreparedCheck, SearchLimits, SearchResult, Stats, UnitOutcome,
    Verification, Verifier, VerifyError, VerifyOptions,
};
use wave_ltl::{parse_property, Property};
use wave_spec::parse_spec;

/// Fleet dispatch policy.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Worker heartbeat cadence (the dispatcher tells workers this in
    /// `welcome`).
    pub heartbeat: Duration,
    /// Heartbeat silence tolerated before a connection is declared
    /// dead, as a multiple of `heartbeat`.
    pub heartbeat_grace: u32,
    /// How long a unit may be out on a lease before it is duplicated
    /// onto an idle worker (straggler re-dispatch).
    pub lease_timeout: Duration,
    /// Exponential backoff base for re-enqueued units.
    pub retry_base: Duration,
    /// Backoff cap.
    pub retry_cap: Duration,
    /// Remote attempts per unit before it falls back to the local
    /// executor.
    pub max_remote_attempts: u32,
    /// With zero connected workers, how long the dispatcher waits
    /// before running units locally (gives workers time to connect).
    pub local_fallback_after: Duration,
    /// Decomposition width: how many parallel consumers to split units
    /// for (the thread scheduler's `jobs`). Use the expected fleet
    /// core count.
    pub split_jobs: usize,
    /// Split large units into core sub-ranges (see the scheduler).
    pub split_units: bool,
    /// Fleet gauges and counters (see [`SvcMetrics`]).
    pub metrics: Option<Arc<SvcMetrics>>,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            heartbeat: Duration::from_millis(500),
            heartbeat_grace: 4,
            lease_timeout: Duration::from_secs(30),
            retry_base: Duration::from_millis(50),
            retry_cap: Duration::from_secs(2),
            max_remote_attempts: 3,
            local_fallback_after: Duration::from_secs(5),
            split_jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            split_units: true,
            metrics: None,
        }
    }
}

/// What a check looks like on the wire: the canonical spec text (as
/// `print_spec` renders it — also the fingerprint input) and the
/// property source text.
#[derive(Clone, Debug)]
pub struct CheckSource {
    pub spec: String,
    pub property: String,
}

// ---------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------

fn budget_to_json(b: &Budget) -> Json {
    match b {
        Budget::Steps(n) => Json::obj([("steps", u64_to_json(*n))]),
        Budget::Time(d) => Json::obj([("time_ns", u64_to_json(d.as_nanos() as u64))]),
        Budget::Cancelled => Json::from("cancelled"),
    }
}

fn budget_from_json(v: &Json) -> Option<Budget> {
    if v.as_str() == Some("cancelled") {
        return Some(Budget::Cancelled);
    }
    if let Some(n) = v.get("steps").and_then(u64_from_json) {
        return Some(Budget::Steps(n));
    }
    let ns = v.get("time_ns").and_then(u64_from_json)?;
    Some(Budget::Time(Duration::from_nanos(ns)))
}

fn stats_to_json(s: &Stats) -> Json {
    Json::obj([
        ("elapsed_ns", u64_to_json(s.elapsed.as_nanos() as u64)),
        ("max_run_len", u64_to_json(s.max_run_len as u64)),
        ("max_trie", u64_to_json(s.max_trie as u64)),
        ("max_resident", u64_to_json(s.max_resident as u64)),
        ("max_spilled", u64_to_json(s.max_spilled as u64)),
        ("configs", u64_to_json(s.configs)),
        ("cores", u64_to_json(s.cores)),
        ("assignments", u64_to_json(s.assignments)),
        ("profile", profile_to_json(&s.profile)),
    ])
}

fn stats_from_json(v: &Json) -> Option<Stats> {
    let field = |name: &str| v.get(name).and_then(u64_from_json);
    Some(Stats {
        elapsed: Duration::from_nanos(field("elapsed_ns")?),
        max_run_len: field("max_run_len")? as usize,
        max_trie: field("max_trie")? as usize,
        max_resident: field("max_resident")? as usize,
        max_spilled: field("max_spilled")? as usize,
        configs: field("configs")?,
        cores: field("cores")?,
        assignments: field("assignments")?,
        profile: profile_from_json(v.get("profile")?),
        // per-query attribution only exists on profiled runs, which the
        // fleet never ships
        queries: Vec::new(),
    })
}

/// Encode a unit outcome for the wire. Counterexamples reuse the cache
/// trace codec (raw interned indices — deterministic given the
/// fingerprint key, which is why specs ship as canonical text).
pub(crate) fn unit_outcome_to_json(o: &UnitOutcome) -> Json {
    let result = match &o.result {
        SearchResult::Clean => Json::from("clean"),
        SearchResult::Violation(ce) => Json::obj([(
            "violation",
            Json::obj([
                ("cycle_start", u64_to_json(ce.cycle_start as u64)),
                ("ce", ce_to_json(ce)),
            ]),
        )]),
        SearchResult::Exhausted(b) => Json::obj([("exhausted", budget_to_json(b))]),
    };
    Json::obj([("result", result), ("stats", stats_to_json(&o.stats))])
}

pub(crate) fn unit_outcome_from_json(v: &Json) -> Option<UnitOutcome> {
    let result = v.get("result")?;
    let result = if result.as_str() == Some("clean") {
        SearchResult::Clean
    } else if let Some(violation) = result.get("violation") {
        let cycle_start = violation.get("cycle_start").and_then(u64_from_json)? as usize;
        let mut ce = ce_from_json(violation.get("ce")?)?;
        ce.cycle_start = cycle_start;
        SearchResult::Violation(ce)
    } else if let Some(budget) = result.get("exhausted") {
        SearchResult::Exhausted(budget_from_json(budget)?)
    } else {
        return None;
    };
    Some(UnitOutcome { result, stats: stats_from_json(v.get("stats")?)? })
}

fn send_line(writer: &mut impl Write, msg: &Json) -> io::Result<()> {
    writer.write_all(format!("{msg}\n").as_bytes())?;
    writer.flush()
}

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

/// A unit waiting to be dispatched (or re-dispatched).
struct Pending {
    item: usize,
    /// Failed remote attempts so far.
    attempts: u32,
    /// Backoff gate: not claimable before this instant.
    not_before: Instant,
    queued_at: Instant,
}

/// A unit out on a worker.
struct Lease {
    item: usize,
    attempts: u32,
    since: Instant,
    /// Already duplicated by the straggler monitor.
    redispatched: bool,
}

struct DispatchState {
    pending: Vec<Pending>,
    leases: HashMap<u64, Lease>,
    /// Per check, per ordinal: the recorded outcome (first wins).
    slots: Vec<Vec<Option<Result<UnitOutcome, VerifyError>>>>,
    /// Per check: lowest ordinal with a decisive outcome.
    best: Vec<usize>,
    /// Per check: unrecorded items.
    check_remaining: Vec<usize>,
    /// Per check: wall-clock when its last item recorded.
    done_at: Vec<Option<Duration>>,
    /// Per check: `configs` recorded so far — the lease-sizing charge.
    charged: Vec<u64>,
    /// Total unrecorded items.
    remaining: usize,
    connected: usize,
    shutdown: bool,
}

struct Shared<'s> {
    options: &'s VerifyOptions,
    checks: &'s [PreparedCheck<'s>],
    sources: &'s [CheckSource],
    keys: Vec<String>,
    items: Vec<Item>,
    item_offsets: Vec<usize>,
    pools: Vec<Option<Arc<BudgetPool>>>,
    fopts: FleetOptions,
    state: Mutex<DispatchState>,
    cv: Condvar,
    start: Instant,
    next_lease: AtomicU64,
}

impl Shared<'_> {
    fn metrics(&self) -> Option<&SvcMetrics> {
        self.fopts.metrics.as_deref()
    }
}

fn cancelled_outcome() -> UnitOutcome {
    UnitOutcome { result: SearchResult::Exhausted(Budget::Cancelled), stats: Stats::default() }
}

/// Record into the ordinal slot under the lock. Returns `false` for a
/// duplicate (slot already filled by a faster twin).
fn record_locked(
    shared: &Shared<'_>,
    state: &mut DispatchState,
    item_idx: usize,
    outcome: Result<UnitOutcome, VerifyError>,
) -> bool {
    let item = &shared.items[item_idx];
    let slot = &mut state.slots[item.check][item.ordinal];
    if slot.is_some() {
        return false;
    }
    if let Ok(o) = &outcome {
        state.charged[item.check] += o.stats.configs;
        if !matches!(o.result, SearchResult::Clean) && item.ordinal < state.best[item.check] {
            // decisive: later ordinals of this check are now moot — the
            // pending sweep converts them to zero-cost cancelled records
            state.best[item.check] = item.ordinal;
        }
    } else if item.ordinal < state.best[item.check] {
        state.best[item.check] = item.ordinal;
    }
    *slot = Some(outcome);
    state.check_remaining[item.check] -= 1;
    if state.check_remaining[item.check] == 0 {
        state.done_at[item.check] = Some(shared.start.elapsed());
    }
    state.remaining -= 1;
    shared.cv.notify_all();
    true
}

/// Drop moot pending entries: slot already recorded (re-dispatch twin
/// won), or a lower ordinal already decided the check (record a
/// zero-cost cancelled outcome, exactly like the thread scheduler's
/// skip path).
fn sweep_pending(shared: &Shared<'_>, state: &mut DispatchState) {
    let mut i = 0;
    while i < state.pending.len() {
        let idx = state.pending[i].item;
        let item = &shared.items[idx];
        if state.slots[item.check][item.ordinal].is_some() {
            state.pending.swap_remove(i);
            continue;
        }
        if state.best[item.check] < item.ordinal {
            state.pending.swap_remove(i);
            record_locked(shared, state, idx, Ok(cancelled_outcome()));
            continue;
        }
        i += 1;
    }
}

fn backoff(fopts: &FleetOptions, attempts: u32) -> Duration {
    let factor = 1u32 << attempts.saturating_sub(1).min(16);
    (fopts.retry_base * factor).min(fopts.retry_cap)
}

/// Return a failed lease to the pending queue with backoff — unless its
/// slot was meanwhile filled by a re-dispatched twin.
fn requeue(shared: &Shared<'_>, lease_id: u64) {
    let mut state = lock_tolerant(&shared.state);
    let Some(lease) = state.leases.remove(&lease_id) else { return };
    let item = &shared.items[lease.item];
    if state.slots[item.check][item.ordinal].is_some() {
        return;
    }
    let attempts = lease.attempts + 1;
    let now = Instant::now();
    state.pending.push(Pending {
        item: lease.item,
        attempts,
        not_before: now + backoff(&shared.fopts, attempts),
        queued_at: now,
    });
    shared.cv.notify_all();
}

enum Claim {
    Run {
        item_idx: usize,
        lease_id: u64,
    },
    /// Nothing claimable right now; the caller loops.
    Wait,
    /// Everything recorded — session over.
    Finished,
}

/// Claim the cheapest eligible pending unit for a remote worker, or
/// wait a beat. Mirrors the thread scheduler's cheapest-first pick
/// order (`(cost, check, ordinal)`).
fn claim_remote(shared: &Shared<'_>) -> Claim {
    let mut state = lock_tolerant(&shared.state);
    if state.shutdown {
        return Claim::Finished;
    }
    sweep_pending(shared, &mut state);
    if state.remaining == 0 {
        return Claim::Finished;
    }
    let now = Instant::now();
    let mut best: Option<usize> = None;
    for (pi, p) in state.pending.iter().enumerate() {
        if p.attempts >= shared.fopts.max_remote_attempts || p.not_before > now {
            continue;
        }
        let key = |i: usize| {
            let item = &shared.items[state.pending[i].item];
            (item.cost, item.check, item.ordinal)
        };
        if best.is_none_or(|b| key(pi) < key(b)) {
            best = Some(pi);
        }
    }
    let Some(pi) = best else {
        let (_state, _timeout) = shared
            .cv
            .wait_timeout(state, Duration::from_millis(50))
            .unwrap_or_else(|p| p.into_inner());
        return Claim::Wait;
    };
    let p = state.pending.swap_remove(pi);
    let lease_id = shared.next_lease.fetch_add(1, Ordering::Relaxed);
    state.leases.insert(
        lease_id,
        Lease { item: p.item, attempts: p.attempts, since: now, redispatched: false },
    );
    Claim::Run { item_idx: p.item, lease_id }
}

/// Read worker lines until a non-heartbeat message. `Ok(None)` means
/// the session is over (shutdown observed) — abandon quietly.
fn read_reply(reader: &mut BufReader<TcpStream>, shared: &Shared<'_>) -> io::Result<Option<Json>> {
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "worker closed connection"));
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let msg = json::parse(line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if msg.get("fleet").and_then(Json::as_str) == Some("hb") {
            if let Some(m) = shared.metrics() {
                m.fleet_heartbeats_total.inc();
            }
            let state = lock_tolerant(&shared.state);
            if state.shutdown {
                return Ok(None);
            }
            continue;
        }
        return Ok(Some(msg));
    }
}

/// Serve one worker connection: register, then claim → (load) → run →
/// record until everything settles. Any I/O or protocol failure is a
/// worker death: the in-flight lease is re-enqueued with backoff.
fn serve_worker(stream: TcpStream, shared: &Shared<'_>) {
    let fopts = &shared.fopts;
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(fopts.heartbeat * fopts.heartbeat_grace)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);

    // registration: hello in, welcome out
    let hello = match read_reply(&mut reader, shared) {
        Ok(Some(msg)) if msg.get("fleet").and_then(Json::as_str) == Some("hello") => msg,
        _ => return,
    };
    let _worker_name = hello.get("name").and_then(Json::as_str).unwrap_or("?").to_string();
    let welcome = Json::obj([
        ("fleet", Json::from("welcome")),
        ("heartbeat_ms", u64_to_json(fopts.heartbeat.as_millis() as u64)),
    ]);
    if send_line(&mut writer, &welcome).is_err() {
        return;
    }
    {
        let mut state = lock_tolerant(&shared.state);
        state.connected += 1;
    }
    if let Some(m) = shared.metrics() {
        m.fleet_workers_total.inc();
        m.fleet_workers_connected.inc();
    }

    let mut loaded: HashSet<usize> = HashSet::new();
    let mut death: Option<u64> = None; // lease to requeue on exit
    loop {
        let (item_idx, lease_id) = match claim_remote(shared) {
            Claim::Run { item_idx, lease_id } => (item_idx, lease_id),
            Claim::Wait => continue,
            Claim::Finished => {
                let _ = send_line(&mut writer, &Json::obj([("fleet", Json::from("bye"))]));
                break;
            }
        };
        let item = &shared.items[item_idx];
        let check = item.check;

        // ship the spec once per connection per check
        if !loaded.contains(&check) {
            let load = Json::obj([
                ("fleet", Json::from("load")),
                ("key", Json::from(shared.keys[check].clone())),
                ("spec", Json::from(shared.sources[check].spec.clone())),
                ("property", Json::from(shared.sources[check].property.clone())),
                ("options", options_to_json(shared.options)),
            ]);
            let reply =
                send_line(&mut writer, &load).and_then(|()| read_reply(&mut reader, shared));
            match reply {
                Ok(Some(msg)) if msg.get("fleet").and_then(Json::as_str) == Some("loaded") => {
                    loaded.insert(check);
                }
                Ok(None) => {
                    abandon(shared, lease_id);
                    let _ = send_line(&mut writer, &Json::obj([("fleet", Json::from("bye"))]));
                    break;
                }
                // load_error or transport failure: this worker cannot
                // run the check (version skew, OOM, …) — treat as death
                _ => {
                    death = Some(lease_id);
                    break;
                }
            }
        }

        // budget lease: exactly what the check has left by the recorded
        // charges (settlement re-normalizes, so this is policy only)
        let (lease_steps, lease_ms) = {
            let state = lock_tolerant(&shared.state);
            let steps = shared.options.max_steps.map(|m| m.saturating_sub(state.charged[check]));
            let ms = shared
                .options
                .time_limit
                .map(|t| t.saturating_sub(shared.start.elapsed()).as_millis() as u64);
            (steps, ms)
        };
        let mut run = vec![
            ("fleet", Json::from("run")),
            ("key", Json::from(shared.keys[check].clone())),
            ("unit", u64_to_json(item.unit as u64)),
            ("ordinal", u64_to_json(item.ordinal as u64)),
        ];
        if let Some(range) = &item.cores {
            run.push(("lo", u64_to_json(range.start)));
            run.push(("hi", u64_to_json(range.end)));
        }
        if let Some(steps) = lease_steps {
            run.push(("lease_steps", u64_to_json(steps)));
        }
        if let Some(ms) = lease_ms {
            run.push(("lease_ms", u64_to_json(ms)));
        }
        run.push(("chunk", u64_to_json(shared.options.budget_chunk)));
        if send_line(&mut writer, &Json::obj(run)).is_err() {
            death = Some(lease_id);
            break;
        }
        if let Some(m) = shared.metrics() {
            m.fleet_units_dispatched_total.inc();
        }

        match read_reply(&mut reader, shared) {
            Ok(Some(msg)) if msg.get("fleet").and_then(Json::as_str) == Some("outcome") => {
                if let Some(error) = msg.get("error").and_then(Json::as_str) {
                    // remote errors are transport failures: the unit is
                    // a pure function locally, so never record them —
                    // re-enqueue (backoff), eventually local fallback
                    let _ = error;
                    if let Some(m) = shared.metrics() {
                        m.fleet_worker_errors_total.inc();
                    }
                    requeue(shared, lease_id);
                    continue;
                }
                let Some(outcome) = unit_outcome_from_json(&msg) else {
                    death = Some(lease_id);
                    break;
                };
                let recorded = {
                    let mut state = lock_tolerant(&shared.state);
                    state.leases.remove(&lease_id);
                    record_locked(shared, &mut state, item_idx, Ok(outcome))
                };
                if recorded {
                    if let Some(m) = shared.metrics() {
                        m.fleet_units_completed_total.inc();
                    }
                }
            }
            Ok(None) => {
                abandon(shared, lease_id);
                let _ = send_line(&mut writer, &Json::obj([("fleet", Json::from("bye"))]));
                break;
            }
            _ => {
                death = Some(lease_id);
                break;
            }
        }
    }

    if let Some(lease_id) = death {
        if let Some(m) = shared.metrics() {
            m.fleet_worker_deaths_total.inc();
        }
        requeue(shared, lease_id);
    }
    {
        let mut state = lock_tolerant(&shared.state);
        state.connected -= 1;
        shared.cv.notify_all();
    }
    if let Some(m) = shared.metrics() {
        m.fleet_workers_connected.dec();
    }
}

/// Drop a lease without requeueing (session over, everything recorded).
fn abandon(shared: &Shared<'_>, lease_id: u64) {
    let mut state = lock_tolerant(&shared.state);
    state.leases.remove(&lease_id);
}

/// The straggler monitor: duplicate timed-out leases onto the pending
/// queue so an idle worker can race the slow one.
fn monitor_leases(shared: &Shared<'_>) {
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let mut state = lock_tolerant(&shared.state);
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        let mut dupes: Vec<(u64, usize, u32)> = Vec::new();
        for (&id, lease) in &state.leases {
            if !lease.redispatched && now.duration_since(lease.since) > shared.fopts.lease_timeout {
                dupes.push((id, lease.item, lease.attempts));
            }
        }
        for (id, item, attempts) in dupes {
            let filled = {
                let it = &shared.items[item];
                state.slots[it.check][it.ordinal].is_some()
            };
            if let Some(lease) = state.leases.get_mut(&id) {
                lease.redispatched = true;
            }
            if filled {
                continue;
            }
            state.pending.push(Pending { item, attempts, not_before: now, queued_at: now });
            if let Some(m) = shared.metrics() {
                m.fleet_lease_timeouts_total.inc();
                m.fleet_units_redispatched_total.inc();
            }
            shared.cv.notify_all();
        }
    }
}

/// The local fallback executor: runs units on the dispatcher itself
/// when remote capacity cannot — attempts exhausted, no workers
/// connected, or a unit stuck pending past the lease timeout. This is
/// what guarantees the fleet terminates with zero (or only dead)
/// workers.
fn run_local(shared: &Shared<'_>) {
    loop {
        let claimed = {
            let mut state = lock_tolerant(&shared.state);
            if state.shutdown {
                return;
            }
            sweep_pending(shared, &mut state);
            if state.remaining == 0 {
                return;
            }
            let now = Instant::now();
            let idle_fleet =
                state.connected == 0 && shared.start.elapsed() > shared.fopts.local_fallback_after;
            let mut best: Option<usize> = None;
            for (pi, p) in state.pending.iter().enumerate() {
                let eligible = p.attempts >= shared.fopts.max_remote_attempts
                    || idle_fleet
                    || now.duration_since(p.queued_at) > shared.fopts.lease_timeout;
                if !eligible || p.not_before > now {
                    continue;
                }
                let key = |i: usize| {
                    let item = &shared.items[state.pending[i].item];
                    (item.cost, item.check, item.ordinal)
                };
                if best.is_none_or(|b| key(pi) < key(b)) {
                    best = Some(pi);
                }
            }
            match best {
                Some(pi) => Some(state.pending.swap_remove(pi).item),
                None => {
                    let _ = shared
                        .cv
                        .wait_timeout(state, Duration::from_millis(20))
                        .unwrap_or_else(|p| p.into_inner());
                    None
                }
            }
        };
        let Some(item_idx) = claimed else { continue };
        let item = &shared.items[item_idx];
        let limits = SearchLimits {
            pool: shared.pools[item.check].clone(),
            cancel: shared.options.cancel.clone(),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.checks[item.check].run_unit(item.unit, item.cores.clone(), &limits)
        }))
        .unwrap_or_else(|p| Err(VerifyError::Panic(panic_message(p))));
        let mut state = lock_tolerant(&shared.state);
        if record_locked(shared, &mut state, item_idx, outcome) {
            if let Some(m) = shared.metrics() {
                m.fleet_local_units_total.inc();
            }
        }
    }
}

/// A bound fleet dispatcher. Workers connect to [`local_addr`]
/// (`FleetDispatcher::local_addr`); [`run_checks`]
/// (`FleetDispatcher::run_checks`) runs one dispatch session.
pub struct FleetDispatcher {
    listener: TcpListener,
    options: FleetOptions,
}

impl FleetDispatcher {
    pub fn bind(addr: &str, options: FleetOptions) -> io::Result<FleetDispatcher> {
        Ok(FleetDispatcher { listener: TcpListener::bind(addr)?, options })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Dispatch the prepared checks across whatever workers connect
    /// (plus the local fallback executor), then settle deterministically.
    /// `sources[i]` must be the canonical spec/property text behind
    /// `checks[i]` — it is what workers receive and what keys the specs.
    pub fn run_checks(
        &self,
        options: &VerifyOptions,
        checks: &[PreparedCheck<'_>],
        sources: &[CheckSource],
    ) -> Vec<Result<Verification, VerifyError>> {
        assert_eq!(checks.len(), sources.len(), "one source per check");
        let start = Instant::now();
        let fopts = self.options.clone();
        let pools: Vec<_> = checks.iter().map(|_| options.budget_pool(start)).collect();
        let (items, item_offsets) = decompose(checks, fopts.split_jobs.max(1), fopts.split_units);
        let keys: Vec<String> =
            sources.iter().map(|s| fingerprint(&s.spec, &s.property, options)).collect();
        let counts: Vec<usize> = {
            let mut counts = vec![0usize; checks.len()];
            for item in &items {
                counts[item.check] += 1;
            }
            counts
        };
        let now = Instant::now();
        let state = DispatchState {
            pending: (0..items.len())
                .map(|i| Pending { item: i, attempts: 0, not_before: now, queued_at: now })
                .collect(),
            leases: HashMap::new(),
            slots: counts.iter().map(|&n| (0..n).map(|_| None).collect()).collect(),
            best: vec![usize::MAX; checks.len()],
            check_remaining: counts.clone(),
            done_at: counts
                .iter()
                .map(|&n| if n == 0 { Some(start.elapsed()) } else { None })
                .collect(),
            charged: vec![0; checks.len()],
            remaining: items.len(),
            connected: 0,
            shutdown: false,
        };
        let shared = Shared {
            options,
            checks,
            sources,
            keys,
            items,
            item_offsets,
            pools,
            fopts,
            state: Mutex::new(state),
            cv: Condvar::new(),
            start,
            next_lease: AtomicU64::new(0),
        };
        let accepting = AtomicBool::new(true);

        std::thread::scope(|scope| {
            // accept loop: one serve_worker thread per connection
            let listener = &self.listener;
            let shared_ref = &shared;
            let accepting_ref = &accepting;
            scope.spawn(move || {
                loop {
                    let Ok((stream, _)) = listener.accept() else {
                        if !accepting_ref.load(Ordering::Acquire) {
                            break;
                        }
                        continue;
                    };
                    if !accepting_ref.load(Ordering::Acquire) {
                        break; // the shutdown poke
                    }
                    scope.spawn(move || serve_worker(stream, shared_ref));
                }
            });
            scope.spawn(move || monitor_leases(shared_ref));
            // the local executor runs searches: it needs the big stack
            std::thread::Builder::new()
                .name("wave-fleet-local".into())
                .stack_size(512 << 20)
                .spawn_scoped(scope, move || run_local(shared_ref))
                .expect("spawn local executor");

            // wait for every slot, then shut the session down
            {
                let mut state = lock_tolerant(&shared.state);
                while state.remaining > 0 {
                    state = shared
                        .cv
                        .wait_timeout(state, Duration::from_millis(100))
                        .unwrap_or_else(|p| p.into_inner())
                        .0;
                }
                state.shutdown = true;
                shared.cv.notify_all();
            }
            accepting.store(false, Ordering::Release);
            // poke the accept loop so it observes the flag
            if let Ok(addr) = self.listener.local_addr() {
                let _ = TcpStream::connect(addr);
            }
        });

        let state = shared.state.into_inner().unwrap_or_else(|p| p.into_inner());
        let slots: Vec<CheckSlots> = state
            .slots
            .into_iter()
            .zip(state.done_at)
            .map(|(outcomes, done_at)| CheckSlots { outcomes, done_at })
            .collect();
        crate::scheduler::settle_checks(
            options,
            checks,
            &shared.items,
            &shared.item_offsets,
            &shared.pools,
            slots,
            start,
        )
    }
}

/// Check one property through a fleet dispatcher. `spec_text` must be
/// the canonical (`print_spec`) text of the verifier's spec.
pub fn check_fleet(
    dispatcher: &FleetDispatcher,
    verifier: &Verifier,
    spec_text: &str,
    property_text: &str,
    property: &Property,
) -> Result<Verification, VerifyError> {
    let prepared = verifier.prepare(property)?;
    let source = CheckSource { spec: spec_text.to_string(), property: property_text.to_string() };
    dispatcher
        .run_checks(
            verifier.options(),
            std::slice::from_ref(&prepared),
            std::slice::from_ref(&source),
        )
        .pop()
        .expect("one check in, one verification out")
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// `wave worker` configuration.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Dispatcher address (`host:port`).
    pub connect: String,
    /// Name reported in `hello` (diagnostics only).
    pub name: String,
    /// Keep retrying the initial connect for this long (the dispatcher
    /// may not be up yet).
    pub connect_timeout: Duration,
    /// Fault injection: exit cleanly after completing this many units.
    pub max_units: Option<u64>,
    /// Fault injection: drop the connection (no reply, no goodbye) upon
    /// *receiving* the Nth run command — a worker killed mid-unit.
    pub abort_unit: Option<u64>,
}

impl WorkerConfig {
    pub fn new(connect: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            connect: connect.into(),
            name: "worker".to_string(),
            connect_timeout: Duration::from_secs(10),
            max_units: None,
            abort_unit: None,
        }
    }
}

/// What a worker did before exiting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerReport {
    pub units_completed: u64,
}

fn connect_with_retry(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Run a worker until the dispatcher says bye, the connection drops, or
/// a fault-injection limit fires. Connects, registers, heartbeats on a
/// side thread, and executes units on a big-stack thread.
pub fn run_worker(config: &WorkerConfig) -> io::Result<WorkerReport> {
    let stream = connect_with_retry(&config.connect, config.connect_timeout)?;
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    {
        let mut w = lock_tolerant(&writer);
        send_line(
            &mut *w,
            &Json::obj([
                ("fleet", Json::from("hello")),
                ("name", Json::from(config.name.clone())),
                ("v", Json::from(1u64)),
            ]),
        )?;
    }
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "no welcome"));
    }
    let welcome = json::parse(line.trim())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let heartbeat = welcome
        .get("heartbeat_ms")
        .and_then(u64_from_json)
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(500));

    // heartbeat thread: one hb line per cadence until stopped
    let stop = Arc::new(AtomicBool::new(false));
    let hb_writer = Arc::clone(&writer);
    let hb_stop = Arc::clone(&stop);
    let hb = std::thread::Builder::new()
        .name("wave-worker-hb".into())
        .spawn(move || {
            let hb_line = Json::obj([("fleet", Json::from("hb"))]);
            let mut slept = Duration::ZERO;
            loop {
                std::thread::sleep(Duration::from_millis(25));
                slept += Duration::from_millis(25);
                if hb_stop.load(Ordering::Acquire) {
                    return;
                }
                if slept >= heartbeat {
                    slept = Duration::ZERO;
                    let mut w = lock_tolerant(&hb_writer);
                    if send_line(&mut *w, &hb_line).is_err() {
                        return;
                    }
                }
            }
        })
        .expect("spawn heartbeat thread");

    let result = worker_loop(config, &mut reader, &writer);
    stop.store(true, Ordering::Release);
    let _ = hb.join();
    result
}

fn worker_loop(
    config: &WorkerConfig,
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
) -> io::Result<WorkerReport> {
    let mut specs: HashMap<String, (Verifier, Property)> = HashMap::new();
    let mut report = WorkerReport::default();
    let mut runs_received = 0u64;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(report); // dispatcher went away
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(msg) = json::parse(line) else { continue };
        match msg.get("fleet").and_then(Json::as_str) {
            Some("load") => {
                let reply = load_spec(&msg, &mut specs);
                let mut w = lock_tolerant(writer);
                if send_line(&mut *w, &reply).is_err() {
                    return Ok(report);
                }
            }
            Some("run") => {
                runs_received += 1;
                if config.abort_unit == Some(runs_received) {
                    // injected death: vanish mid-unit, no reply
                    return Ok(report);
                }
                let reply = run_unit_remote(&msg, &specs);
                let mut w = lock_tolerant(writer);
                if send_line(&mut *w, &reply).is_err() {
                    return Ok(report);
                }
                drop(w);
                report.units_completed += 1;
                if config.max_units == Some(report.units_completed) {
                    return Ok(report); // injected exit between units
                }
            }
            Some("bye") => return Ok(report),
            _ => continue,
        }
    }
}

fn load_spec(msg: &Json, specs: &mut HashMap<String, (Verifier, Property)>) -> Json {
    let key = msg.get("key").and_then(Json::as_str).unwrap_or_default().to_string();
    let fail = |key: &str, error: String| {
        Json::obj([
            ("fleet", Json::from("load_error")),
            ("key", Json::from(key)),
            ("error", Json::from(error)),
        ])
    };
    let Some(spec_text) = msg.get("spec").and_then(Json::as_str) else {
        return fail(&key, "load without spec".to_string());
    };
    let Some(property_text) = msg.get("property").and_then(Json::as_str) else {
        return fail(&key, "load without property".to_string());
    };
    let options = match parse_options(msg.get("options")) {
        Ok(o) => o,
        Err(e) => return fail(&key, e),
    };
    let spec = match parse_spec(spec_text) {
        Ok(s) => s,
        Err(e) => return fail(&key, e.to_string()),
    };
    let property = match parse_property(property_text) {
        Ok(p) => p,
        Err(e) => return fail(&key, e.to_string()),
    };
    let verifier = match Verifier::with_options(spec, options) {
        Ok(v) => v,
        Err(e) => return fail(&key, e.to_string()),
    };
    let units = match verifier.prepare(&property) {
        Ok(prepared) => prepared.num_units(),
        Err(e) => return fail(&key, e.to_string()),
    };
    specs.insert(key.clone(), (verifier, property));
    Json::obj([
        ("fleet", Json::from("loaded")),
        ("key", Json::from(key)),
        ("units", u64_to_json(units as u64)),
    ])
}

fn run_unit_remote(msg: &Json, specs: &HashMap<String, (Verifier, Property)>) -> Json {
    let key = msg.get("key").and_then(Json::as_str).unwrap_or_default().to_string();
    let unit = msg.get("unit").and_then(u64_from_json).unwrap_or(0) as usize;
    let fail = |error: String| {
        Json::obj([
            ("fleet", Json::from("outcome")),
            ("key", Json::from(key.clone())),
            ("unit", u64_to_json(unit as u64)),
            ("error", Json::from(error)),
        ])
    };
    let Some((verifier, property)) = specs.get(&key) else {
        return fail(format!("unknown spec key {key:?}"));
    };
    let cores = match (msg.get("lo").and_then(u64_from_json), msg.get("hi").and_then(u64_from_json))
    {
        (Some(lo), Some(hi)) => Some(lo..hi),
        _ => None,
    };
    let lease_steps = msg.get("lease_steps").and_then(u64_from_json);
    let lease_time = msg.get("lease_ms").and_then(u64_from_json).map(Duration::from_millis);
    let chunk = msg.get("chunk").and_then(u64_from_json).unwrap_or(wave_core::DEFAULT_BUDGET_CHUNK);
    let pool = BudgetPool::new(lease_steps, lease_time, chunk, Instant::now());
    let limits = SearchLimits { pool, cancel: None };

    // the NDFS recurses: give the search its big stack, and catch
    // panics so a poisoned unit reports an error instead of killing
    // the worker process
    let outcome = std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("wave-worker-unit".into())
            .stack_size(512 << 20)
            .spawn_scoped(scope, || {
                catch_unwind(AssertUnwindSafe(|| {
                    let prepared = verifier.prepare(property)?;
                    prepared.run_unit(unit, cores.clone(), &limits)
                }))
                .unwrap_or_else(|p| Err(VerifyError::Panic(panic_message(p))))
            })
            .expect("spawn unit thread")
            .join()
            .expect("unit thread panicked")
    });
    match outcome {
        Ok(o) => {
            let encoded = unit_outcome_to_json(&o);
            let mut pairs = vec![
                ("fleet".to_string(), Json::from("outcome")),
                ("key".to_string(), Json::from(key)),
                ("unit".to_string(), u64_to_json(unit as u64)),
            ];
            if let Json::Obj(inner) = encoded {
                pairs.extend(inner);
            }
            Json::Obj(pairs)
        }
        Err(e) => fail(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use wave_core::{CounterExample, PseudoConfig, TraceStep};
    use wave_relalg::{RelId, Tuple, Value};
    use wave_spec::PageId;

    fn sample_stats() -> Stats {
        Stats {
            elapsed: Duration::from_nanos(123_456_789_012),
            max_run_len: 7,
            max_trie: 1000,
            max_resident: 900,
            max_spilled: 100,
            configs: u64::MAX - 5, // exercises the string fallback
            cores: 42,
            assignments: 6,
            profile: wave_core::SearchProfile { expand_ns: 9, memo_hits: 3, ..Default::default() },
            queries: Vec::new(),
        }
    }

    fn sample_ce() -> CounterExample {
        let facts = |rows: &[(u32, &[u32])]| {
            rows.iter()
                .map(|(rel, vals)| {
                    (RelId(*rel), Tuple::from(vals.iter().map(|v| Value(*v)).collect::<Vec<_>>()))
                })
                .collect()
        };
        CounterExample {
            steps: vec![TraceStep {
                auto_state: 2,
                assignment: u64::MAX - 1,
                config: PseudoConfig {
                    page: PageId(1),
                    ext: StdArc::new(facts(&[(0, &[1, 2])])),
                    input: StdArc::new(facts(&[(1, &[4])])),
                    prev: StdArc::new(facts(&[])),
                    state: StdArc::new(facts(&[(2, &[5])])),
                    actions: StdArc::new(facts(&[])),
                },
            }],
            cycle_start: 0,
            core: facts(&[(0, &[1, 2])]),
            assignment: vec![("x".to_string(), Value(7))],
        }
    }

    #[test]
    fn unit_outcome_wire_round_trips() {
        for outcome in [
            UnitOutcome { result: SearchResult::Clean, stats: sample_stats() },
            UnitOutcome { result: SearchResult::Violation(sample_ce()), stats: sample_stats() },
            UnitOutcome {
                result: SearchResult::Exhausted(Budget::Steps(u64::MAX)),
                stats: Stats::default(),
            },
            UnitOutcome {
                result: SearchResult::Exhausted(Budget::Time(Duration::new(1, 999_999_999))),
                stats: Stats::default(),
            },
            UnitOutcome {
                result: SearchResult::Exhausted(Budget::Cancelled),
                stats: Stats::default(),
            },
        ] {
            let encoded = unit_outcome_to_json(&outcome);
            // through the actual wire form: print → parse
            let parsed = json::parse(&encoded.to_string()).unwrap();
            let back = unit_outcome_from_json(&parsed).expect("decodes");
            assert_eq!(format!("{:?}", back.result), format!("{:?}", outcome.result));
            assert_eq!(back.stats.configs, outcome.stats.configs);
            assert_eq!(back.stats.elapsed, outcome.stats.elapsed);
            assert_eq!(back.stats.max_trie, outcome.stats.max_trie);
            assert_eq!(back.stats.profile, outcome.stats.profile);
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let fopts = FleetOptions {
            retry_base: Duration::from_millis(50),
            retry_cap: Duration::from_secs(2),
            ..FleetOptions::default()
        };
        assert_eq!(backoff(&fopts, 1), Duration::from_millis(50));
        assert_eq!(backoff(&fopts, 2), Duration::from_millis(100));
        assert_eq!(backoff(&fopts, 3), Duration::from_millis(200));
        assert_eq!(backoff(&fopts, 7), Duration::from_secs(2), "capped");
        assert_eq!(backoff(&fopts, 60), Duration::from_secs(2), "no shift overflow");
    }
}
