//! The TCP front-end (`wave serve`): a line-JSON verification server
//! hand-rolled over `std::net::TcpListener`.
//!
//! Protocol: the client sends one JSON object per line and receives one
//! JSON response line per request, in order.
//!
//! * `{"cmd":"ping"}` → `{"ok":true,"pong":true}`
//! * `{"cmd":"metrics"}` → `{"ok":true,"metrics":{…instrument name →
//!   value…}}` (see [`crate::metrics::SvcMetrics::to_json`]),
//! * `{"cmd":"shutdown"}` → `{"ok":true,"bye":true}`, then the server
//!   stops accepting and `run` returns once in-flight handlers finish,
//! * any job object (see [`crate::service`]) →
//!   `{"ok":true,"results":[…one record per property…]}`,
//! * anything else → `{"ok":false,"error":"…"}`.
//!
//! The accept loop is bounded: at most `max_connections` handler threads
//! run at once, further clients queue in the OS backlog. Each connection
//! gets a read *and* a write timeout, so neither an idle client nor one
//! that stops reading its responses can pin a handler slot; timed-out
//! connections are dropped and counted
//! ([`crate::metrics::SvcMetrics::conn_timeouts_total`]). A handler that
//! panics releases its slot through a drop guard and is counted too
//! ([`crate::metrics::SvcMetrics::handler_panics_total`]) — the server
//! keeps accepting and the shutdown drain still completes.
//!
//! With [`ServerConfig::metrics_addr`] set, a second listener serves the
//! same metrics as Prometheus text exposition (`GET /metrics`) for
//! scraping; see [`wave_obs::MetricsServer`].

use crate::json::{self, Json};
use crate::service::VerifyService;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks an ephemeral
    /// port; read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads per verification job.
    pub jobs: usize,
    /// Concurrent connection handlers (the accept-queue bound).
    pub max_connections: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-connection write timeout: bounds how long a handler blocks on
    /// a client that stops reading its responses.
    pub write_timeout: Duration,
    /// Fault-injection hook: honor `{"cmd":"panic"}` by panicking inside
    /// the connection handler. Tests use it to pin the slot-release
    /// guard; production configs leave it off.
    pub chaos: bool,
    pub use_cache: bool,
    pub cache_dir: Option<PathBuf>,
    /// In-memory result-cache entry bound (`0` = unbounded).
    pub cache_mem_entries: usize,
    /// Startup GC: drop disk cache entries older than this.
    pub cache_gc_age: Option<Duration>,
    /// Startup GC: shrink the disk cache below this many bytes.
    pub cache_gc_bytes: Option<u64>,
    /// Bind a Prometheus text-exposition listener here (e.g.
    /// `127.0.0.1:9090`); `None` disables it.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            jobs: crate::scheduler::ParallelOptions::default().jobs,
            max_connections: 16,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            chaos: false,
            use_cache: true,
            cache_dir: None,
            cache_mem_entries: crate::cache::DEFAULT_MEM_ENTRIES,
            cache_gc_age: None,
            cache_gc_bytes: None,
            metrics_addr: None,
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    svc: Arc<VerifyService>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    metrics_listener: Option<wave_obs::MetricsServer>,
}

impl Server {
    /// Bind the listener and build the service (cache directory included).
    /// When `metrics_addr` is set the Prometheus listener is bound here
    /// too, so bind errors surface before the server starts.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let svc = Arc::new(VerifyService::new(crate::service::ServiceConfig {
            jobs: config.jobs,
            use_cache: config.use_cache,
            cache_dir: config.cache_dir.clone(),
            cache_mem_entries: config.cache_mem_entries,
            cache_gc_age: config.cache_gc_age,
            cache_gc_bytes: config.cache_gc_bytes,
        })?);
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                Some(wave_obs::MetricsServer::bind(addr, Arc::clone(svc.metrics().registry()))?)
            }
            None => None,
        };
        Ok(Server {
            listener,
            svc,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics_listener,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound Prometheus listener address, when `metrics_addr` was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().and_then(|m| m.local_addr().ok())
    }

    /// Accept and serve until a `shutdown` request arrives.
    pub fn run(mut self) -> io::Result<()> {
        let local = self.local_addr()?;
        if let Some(metrics) = self.metrics_listener.take() {
            // scrape listener: detached; exits with the process
            metrics.spawn();
        }
        // (active handler count, all-idle signal): the bounded queue
        let slots = Arc::new((Mutex::new(0usize), Condvar::new()));
        loop {
            // wait for a free handler slot before accepting
            {
                let (count, cv) = &*slots;
                let mut active = count.lock().unwrap();
                while *active >= self.config.max_connections {
                    active = cv.wait(active).unwrap();
                }
                *active += 1;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(_) => {
                    // transient accept errors (e.g. ECONNABORTED) are not fatal
                    release(&slots);
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                }
            };
            if self.shutdown.load(Ordering::Acquire) {
                release(&slots);
                break;
            }
            let svc = Arc::clone(&self.svc);
            let shutdown = Arc::clone(&self.shutdown);
            let config = self.config.clone();
            let slots_for_handler = Arc::clone(&slots);
            std::thread::Builder::new()
                .name("wave-serve-conn".to_string())
                .spawn(move || {
                    // Drop guard: the slot is released even when the
                    // handler panics — a leaked slot would eventually
                    // wedge the accept loop and deadlock the drain
                    let _slot = SlotGuard(slots_for_handler);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(stream, &svc, &shutdown, &config, local)
                    }));
                    match outcome {
                        Err(_) => svc.metrics().handler_panics_total.inc(),
                        Ok(Err(e))
                            if matches!(
                                e.kind(),
                                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                            ) =>
                        {
                            // read timeouts surface as WouldBlock on unix,
                            // TimedOut on windows; write timeouts likewise
                            svc.metrics().conn_timeouts_total.inc()
                        }
                        _ => {}
                    }
                })
                .expect("spawn connection handler");
        }
        // drain: wait until every in-flight handler released its slot
        let (count, cv) = &*slots;
        let mut active = count.lock().unwrap();
        while *active > 0 {
            active = cv.wait(active).unwrap();
        }
        Ok(())
    }
}

fn release(slots: &Arc<(Mutex<usize>, Condvar)>) {
    let (count, cv) = &**slots;
    // tolerate poison: a panicked sibling handler must not stop this
    // slot from being returned to the accept loop
    let mut count = count.lock().unwrap_or_else(|p| p.into_inner());
    *count -= 1;
    cv.notify_all();
}

/// Releases a handler slot on drop — panic-proof, unlike a trailing call.
struct SlotGuard(Arc<(Mutex<usize>, Condvar)>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        release(&self.0);
    }
}

fn handle_connection(
    stream: TcpStream,
    svc: &VerifyService,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    local: SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    svc.metrics().connections_active.inc();
    // dec on every exit path, including `?` returns
    let _guard = ConnectionGuard(svc);
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?; // timeout or disconnect ends the session
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        svc.metrics().requests_total.inc();
        let (response, stop) = process(svc, line, config.chaos);
        writer.write_all(format!("{response}\n").as_bytes())?;
        writer.flush()?;
        if stop {
            shutdown.store(true, Ordering::Release);
            // poke the accept loop so it observes the flag
            let _ = TcpStream::connect(local);
            break;
        }
    }
    Ok(())
}

struct ConnectionGuard<'a>(&'a VerifyService);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.metrics().connections_active.dec();
    }
}

/// Handle one request line; the flag is true for `shutdown`.
fn process(svc: &VerifyService, line: &str, chaos: bool) -> (Json, bool) {
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return (
                Json::obj([("ok", Json::from(false)), ("error", Json::from(e.to_string()))]),
                false,
            )
        }
    };
    match request.get("cmd").and_then(Json::as_str) {
        Some("ping") => (Json::obj([("ok", Json::from(true)), ("pong", Json::from(true))]), false),
        Some("metrics") => {
            (Json::obj([("ok", Json::from(true)), ("metrics", svc.metrics().to_json())]), false)
        }
        Some("shutdown") => {
            (Json::obj([("ok", Json::from(true)), ("bye", Json::from(true))]), true)
        }
        // fault injection, enabled only by ServerConfig::chaos
        Some("panic") if chaos => panic!("chaos: injected connection-handler panic"),
        Some(other) => (
            Json::obj([
                ("ok", Json::from(false)),
                ("error", Json::from(format!("unknown command {other:?}"))),
            ]),
            false,
        ),
        None => {
            let records = svc.run_request(&request, "job");
            let results: Vec<Json> = records.iter().map(|r| r.to_json()).collect();
            (Json::obj([("ok", Json::from(true)), ("results", Json::Arr(results))]), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(stream: &mut TcpStream, line: &str) -> Json {
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        json::parse(response.trim()).unwrap()
    }

    #[test]
    fn serves_ping_job_and_shutdown() {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        let mut client = TcpStream::connect(addr).unwrap();
        let pong = send(&mut client, r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

        let job = r#"{"spec":"spec m { inputs { b(x); } home A; page A { inputs { b } options b(x) <- x = \"g\"; target B <- b(\"g\"); } page B { target A <- true; } }","property":"G (@B -> X @A)"}"#;
        let reply = send(&mut client, job);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        let results = reply.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("verdict").and_then(Json::as_str), Some("holds"));

        let garbage = send(&mut client, "not json");
        assert_eq!(garbage.get("ok").and_then(Json::as_bool), Some(false));

        let metrics = send(&mut client, r#"{"cmd":"metrics"}"#);
        assert_eq!(metrics.get("ok").and_then(Json::as_bool), Some(true));
        let metrics = metrics.get("metrics").unwrap();
        assert_eq!(metrics.get("wave_checks_total").and_then(Json::as_u64), Some(1));
        assert!(metrics.get("wave_requests_total").and_then(Json::as_u64).unwrap() >= 3);
        assert_eq!(metrics.get("wave_connections_active").and_then(Json::as_f64), Some(1.0));

        let bye = send(&mut client, r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
        drop(client);
        handle.join().unwrap().unwrap();
    }
}
