//! The verification result cache.
//!
//! Results are keyed by a fingerprint of the *canonical* specification
//! text (as `wave fmt` prints it, so formatting differences don't miss),
//! the property source text, and the semantically relevant
//! [`VerifyOptions`] fields (the cancellation token is excluded — it is
//! scheduling state, not semantics).
//!
//! The cache stores the verdict summary, not the counterexample trace: a
//! cached `violated` hit reports the lasso shape (step count and cycle
//! start) but cannot be replayed. Re-run with the cache disabled to
//! regenerate the full trace. Cache hits report zeroed search counters
//! (`Stats.cores == 0`), which is how callers can tell a hit from a
//! fresh run.

use crate::json::{self, Json};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;
use wave_core::{Budget, Verdict, Verification, VerifyOptions};

/// Compute the cache key: 128 hex-encoded bits of FNV-1a over the three
/// fingerprint components, NUL-separated.
pub fn fingerprint(spec_text: &str, property: &str, options: &VerifyOptions) -> String {
    let opts = format!(
        "h1={} h2={} pruning={:?} param={:?} max_steps={:?} time_limit={:?} plans={}",
        options.heuristic1,
        options.heuristic2,
        options.pruning,
        options.param_mode,
        options.max_steps,
        options.time_limit,
        options.use_plans,
    );
    let mut bytes = Vec::with_capacity(spec_text.len() + property.len() + opts.len() + 2);
    bytes.extend_from_slice(spec_text.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(property.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(opts.as_bytes());
    // two FNV-1a passes with distinct offset bases; the second also folds
    // in the position, so the halves are independent enough for a cache
    let h1 = fnv1a(&bytes, 0xcbf29ce484222325);
    let h2 = fnv1a_pos(&bytes, 0x6c62272e07bb0142);
    format!("{h1:016x}{h2:016x}")
}

fn fnv1a(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fnv1a_pos(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for (i, &b) in bytes.iter().enumerate() {
        h ^= (b as u64) ^ ((i as u64) << 8);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A cacheable verdict summary.
#[derive(Clone, Debug, PartialEq)]
pub enum CachedVerdict {
    Holds,
    /// Lasso shape of the counterexample (the trace itself is not kept).
    Violated {
        steps: usize,
        cycle_start: usize,
    },
    Unknown {
        budget: String,
    },
}

/// What the cache stores per key.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    pub verdict: CachedVerdict,
    pub complete: bool,
    /// Wall-clock of the original run, reported for reference.
    pub elapsed: Duration,
}

impl CachedResult {
    /// Summarize a verification for caching. `None` for cancelled runs:
    /// cancellation is scheduling state, not a reproducible verdict.
    pub fn from_verification(v: &Verification) -> Option<CachedResult> {
        let verdict = match &v.verdict {
            Verdict::Holds => CachedVerdict::Holds,
            Verdict::Violated(ce) => {
                CachedVerdict::Violated { steps: ce.steps.len(), cycle_start: ce.cycle_start }
            }
            Verdict::Unknown(Budget::Cancelled) => return None,
            Verdict::Unknown(Budget::Steps(n)) => {
                CachedVerdict::Unknown { budget: format!("steps:{n}") }
            }
            Verdict::Unknown(Budget::Time(d)) => {
                CachedVerdict::Unknown { budget: format!("time:{}", d.as_secs_f64()) }
            }
        };
        Some(CachedResult { verdict, complete: v.complete, elapsed: v.stats.elapsed })
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![];
        match &self.verdict {
            CachedVerdict::Holds => pairs.push(("verdict", Json::from("holds"))),
            CachedVerdict::Violated { steps, cycle_start } => {
                pairs.push(("verdict", Json::from("violated")));
                pairs.push(("steps", Json::from(*steps)));
                pairs.push(("cycle_start", Json::from(*cycle_start)));
            }
            CachedVerdict::Unknown { budget } => {
                pairs.push(("verdict", Json::from("unknown")));
                pairs.push(("budget", Json::from(budget.clone())));
            }
        }
        pairs.push(("complete", Json::from(self.complete)));
        pairs.push(("elapsed_s", Json::from(self.elapsed.as_secs_f64())));
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Option<CachedResult> {
        let verdict = match v.get("verdict")?.as_str()? {
            "holds" => CachedVerdict::Holds,
            "violated" => CachedVerdict::Violated {
                steps: v.get("steps")?.as_u64()? as usize,
                cycle_start: v.get("cycle_start")?.as_u64()? as usize,
            },
            "unknown" => CachedVerdict::Unknown { budget: v.get("budget")?.as_str()?.to_string() },
            _ => return None,
        };
        Some(CachedResult {
            verdict,
            complete: v.get("complete")?.as_bool()?,
            elapsed: Duration::from_secs_f64(v.get("elapsed_s")?.as_f64()?.max(0.0)),
        })
    }
}

/// In-memory result cache with an optional on-disk mirror (one
/// `<fingerprint>.json` file per entry).
pub struct ResultCache {
    mem: Mutex<HashMap<String, CachedResult>>,
    dir: Option<PathBuf>,
}

impl ResultCache {
    pub fn in_memory() -> ResultCache {
        ResultCache { mem: Mutex::new(HashMap::new()), dir: None }
    }

    /// Cache backed by `dir` (created if missing).
    pub fn with_dir(dir: PathBuf) -> io::Result<ResultCache> {
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { mem: Mutex::new(HashMap::new()), dir: Some(dir) })
    }

    pub fn get(&self, key: &str) -> Option<CachedResult> {
        if let Some(hit) = self.mem.lock().unwrap().get(key) {
            return Some(hit.clone());
        }
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join(format!("{key}.json"))).ok()?;
        let result = CachedResult::from_json(&json::parse(&text).ok()?)?;
        self.mem.lock().unwrap().insert(key.to_string(), result.clone());
        Some(result)
    }

    /// Insert into memory and (best-effort) onto disk.
    pub fn put(&self, key: &str, result: &CachedResult) {
        self.mem.lock().unwrap().insert(key.to_string(), result.clone());
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{key}.json"));
            let tmp = dir.join(format!("{key}.json.tmp"));
            let body = format!("{}\n", result.to_json());
            // atomic publish so concurrent readers never see a torn file
            if std::fs::write(&tmp, body).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.mem.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> VerifyOptions {
        VerifyOptions::default()
    }

    #[test]
    fn fingerprint_separates_inputs() {
        let a = fingerprint("spec a {}", "G p", &options());
        let b = fingerprint("spec b {}", "G p", &options());
        let c = fingerprint("spec a {}", "F p", &options());
        let mut opts = options();
        opts.heuristic1 = false;
        let d = fingerprint("spec a {}", "G p", &opts);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, fingerprint("spec a {}", "G p", &options()));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn cancel_token_does_not_affect_fingerprint() {
        let mut opts = options();
        opts.cancel = Some(wave_core::CancelToken::new());
        assert_eq!(fingerprint("s", "p", &options()), fingerprint("s", "p", &opts));
    }

    #[test]
    fn memory_round_trip() {
        let cache = ResultCache::in_memory();
        let result = CachedResult {
            verdict: CachedVerdict::Violated { steps: 7, cycle_start: 2 },
            complete: true,
            elapsed: Duration::from_millis(120),
        };
        assert!(cache.get("k").is_none());
        cache.put("k", &result);
        assert_eq!(cache.get("k"), Some(result));
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("wave-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let result = CachedResult {
            verdict: CachedVerdict::Unknown { budget: "steps:100".to_string() },
            complete: false,
            elapsed: Duration::from_secs(1),
        };
        {
            let cache = ResultCache::with_dir(dir.clone()).unwrap();
            cache.put("deadbeef", &result);
        }
        // a fresh cache instance reads it back from disk
        let cache = ResultCache::with_dir(dir.clone()).unwrap();
        assert_eq!(cache.get("deadbeef"), Some(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_runs_are_not_cacheable() {
        let v = Verification {
            verdict: Verdict::Unknown(Budget::Cancelled),
            stats: Default::default(),
            complete: true,
        };
        assert!(CachedResult::from_verification(&v).is_none());
    }
}
