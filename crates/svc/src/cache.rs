//! The verification result cache.
//!
//! Results are keyed by a fingerprint of the *canonical* specification
//! text (as `wave fmt` prints it, so formatting differences don't miss),
//! the property source text, and the semantically relevant
//! [`VerifyOptions`] fields (the cancellation token is excluded — it is
//! scheduling state, not semantics).
//!
//! A cached `violated` entry carries the *full* counterexample trace
//! (every pseudorun step with its configuration, the database core, and
//! the parameter assignment), so a hit can be replayed and re-validated
//! exactly like a fresh run — the trace is a pure function of the
//! fingerprint key, so the interned `Value` indices it stores are stable
//! across runs. Budget and elapsed figures round-trip *exactly* (steps
//! as integers, time as integer nanoseconds); entries written by older
//! versions (string budgets, `elapsed_s`, shape-only counterexamples)
//! still read back, minus the trace. The original run's
//! [`SearchProfile`] is kept (memory and disk tiers) and returned on
//! hit; search counters stay zeroed (`Stats.cores == 0`), which is how
//! callers tell a hit from a fresh run.
//!
//! When built [`ResultCache::with_metrics`], the cache counts hits,
//! misses, and memory-tier evictions into the service metrics registry.

use crate::json::{self, Json};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};
use wave_core::{
    Budget, CounterExample, Facts, PseudoConfig, SearchProfile, TraceStep, Verdict, Verification,
    VerifyOptions,
};
use wave_obs::Counter;
use wave_relalg::{RelId, Tuple, Value};
use wave_spec::PageId;

/// Default bound on in-memory cache entries (see [`ResultCache`]).
pub const DEFAULT_MEM_ENTRIES: usize = 256;

/// Compute the cache key: 128 hex-encoded bits of FNV-1a over the three
/// fingerprint components, NUL-separated.
///
/// Only *semantic* option fields participate: `cancel` (scheduling
/// state), `state_store` (a speed/memory knob — both backends produce
/// identical verdicts, traces and statistics), `naive_joins` (a query
/// ablation knob — optimized and naive plans compute identical
/// relations) and `budget_chunk` (a contention knob — the exhaustion
/// point is chunk-independent) are deliberately excluded, so runs under
/// any of those settings share cache entries.
pub fn fingerprint(spec_text: &str, property: &str, options: &VerifyOptions) -> String {
    let opts = format!(
        "h1={} h2={} pruning={:?} param={:?} max_steps={:?} time_limit={:?} plans={} slice={}",
        options.heuristic1,
        options.heuristic2,
        options.pruning,
        options.param_mode,
        options.max_steps,
        options.time_limit,
        options.use_plans,
        options.slice,
    );
    let mut bytes = Vec::with_capacity(spec_text.len() + property.len() + opts.len() + 2);
    bytes.extend_from_slice(spec_text.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(property.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(opts.as_bytes());
    // two FNV-1a passes with distinct offset bases; the second also folds
    // in the position, so the halves are independent enough for a cache
    let h1 = fnv1a(&bytes, 0xcbf29ce484222325);
    let h2 = fnv1a_pos(&bytes, 0x6c62272e07bb0142);
    format!("{h1:016x}{h2:016x}")
}

fn fnv1a(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fnv1a_pos(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for (i, &b) in bytes.iter().enumerate() {
        h ^= (b as u64) ^ ((i as u64) << 8);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// An exhausted budget, stored losslessly: steps as the exact integer,
/// time as integer nanoseconds. `Unknown(Cancelled)` is deliberately
/// unrepresentable — cancellation is scheduling state, not a
/// reproducible verdict, so such runs never reach the cache (and a
/// legacy `"cancelled"` string on disk reads back as a miss).
#[derive(Clone, Debug, PartialEq)]
pub enum CachedBudget {
    Steps(u64),
    Time(Duration),
}

impl CachedBudget {
    fn from_budget(b: &Budget) -> Option<CachedBudget> {
        match b {
            Budget::Steps(n) => Some(CachedBudget::Steps(*n)),
            Budget::Time(d) => Some(CachedBudget::Time(*d)),
            Budget::Cancelled => None,
        }
    }

    /// Back to the verifier's [`Budget`] (exact round-trip).
    pub fn to_budget(&self) -> Budget {
        match self {
            CachedBudget::Steps(n) => Budget::Steps(*n),
            CachedBudget::Time(d) => Budget::Time(*d),
        }
    }
}

/// A cacheable verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum CachedVerdict {
    Holds,
    /// The counterexample: lasso shape plus — for entries written by this
    /// version — the full replayable trace. `trace` is `None` only for
    /// entries persisted before traces were cached.
    Violated {
        steps: usize,
        cycle_start: usize,
        trace: Option<CounterExample>,
    },
    Unknown {
        budget: CachedBudget,
    },
}

/// What the cache stores per key.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    pub verdict: CachedVerdict,
    pub complete: bool,
    /// Wall-clock of the original run, reported for reference.
    pub elapsed: Duration,
    /// Per-phase profile of the original run, served back on hit (the
    /// record's `profile_source` field says `"cached"` then).
    pub profile: SearchProfile,
}

impl CachedResult {
    /// Summarize a verification for caching. `None` for cancelled runs:
    /// cancellation is scheduling state, not a reproducible verdict.
    pub fn from_verification(v: &Verification) -> Option<CachedResult> {
        let verdict = match &v.verdict {
            Verdict::Holds => CachedVerdict::Holds,
            Verdict::Violated(ce) => CachedVerdict::Violated {
                steps: ce.steps.len(),
                cycle_start: ce.cycle_start,
                trace: Some(ce.clone()),
            },
            Verdict::Unknown(b) => CachedVerdict::Unknown { budget: CachedBudget::from_budget(b)? },
        };
        Some(CachedResult {
            verdict,
            complete: v.complete,
            elapsed: v.stats.elapsed,
            profile: v.stats.profile.clone(),
        })
    }

    /// The full counterexample trace, when this entry carries one.
    pub fn counterexample(&self) -> Option<&CounterExample> {
        match &self.verdict {
            CachedVerdict::Violated { trace, .. } => trace.as_ref(),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![];
        match &self.verdict {
            CachedVerdict::Holds => pairs.push(("verdict", Json::from("holds"))),
            CachedVerdict::Violated { steps, cycle_start, trace } => {
                pairs.push(("verdict", Json::from("violated")));
                pairs.push(("steps", Json::from(*steps)));
                pairs.push(("cycle_start", Json::from(*cycle_start)));
                if let Some(ce) = trace {
                    pairs.push(("ce", ce_to_json(ce)));
                }
            }
            CachedVerdict::Unknown { budget } => {
                pairs.push(("verdict", Json::from("unknown")));
                let budget = match budget {
                    CachedBudget::Steps(n) => Json::obj([("steps", u64_to_json(*n))]),
                    CachedBudget::Time(d) => {
                        Json::obj([("time_ns", u64_to_json(d.as_nanos() as u64))])
                    }
                };
                pairs.push(("budget", budget));
            }
        }
        pairs.push(("complete", Json::from(self.complete)));
        pairs.push(("elapsed_ns", u64_to_json(self.elapsed.as_nanos() as u64)));
        pairs.push(("profile", profile_to_json(&self.profile)));
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Option<CachedResult> {
        let verdict = match v.get("verdict")?.as_str()? {
            "holds" => CachedVerdict::Holds,
            "violated" => {
                let cycle_start = v.get("cycle_start")?.as_u64()? as usize;
                // entries written before traces were persisted have no
                // "ce"; they read back shape-only
                let trace = v.get("ce").and_then(ce_from_json).map(|mut ce| {
                    ce.cycle_start = cycle_start;
                    ce
                });
                CachedVerdict::Violated {
                    steps: v.get("steps")?.as_u64()? as usize,
                    cycle_start,
                    trace,
                }
            }
            "unknown" => CachedVerdict::Unknown { budget: budget_from_json(v.get("budget")?)? },
            _ => return None,
        };
        // entries written before profiles were persisted have no
        // "profile" object; they read back with a zeroed profile
        let profile = v.get("profile").map(profile_from_json).unwrap_or_default();
        let elapsed = match v.get("elapsed_ns").and_then(u64_from_json) {
            Some(ns) => Duration::from_nanos(ns),
            // legacy entries stored lossy fractional seconds
            None => Duration::from_secs_f64(v.get("elapsed_s")?.as_f64()?.max(0.0)),
        };
        Some(CachedResult { verdict, complete: v.get("complete")?.as_bool()?, elapsed, profile })
    }
}

/// Serialize a `u64` exactly: a plain JSON number while `f64` represents
/// it losslessly, a decimal string beyond 2^53 (the hand-rolled [`Json`]
/// stores all numbers as `f64`). Shared with the fleet wire codecs.
pub(crate) fn u64_to_json(n: u64) -> Json {
    if n <= (1u64 << 53) {
        Json::from(n)
    } else {
        Json::Str(n.to_string())
    }
}

pub(crate) fn u64_from_json(v: &Json) -> Option<u64> {
    v.as_u64().or_else(|| v.as_str()?.parse().ok())
}

/// Encode a [`SearchProfile`] field-for-field (all counters fit f64 at
/// realistic magnitudes; the fleet and the cache share this layout).
pub(crate) fn profile_to_json(p: &SearchProfile) -> Json {
    Json::obj([
        ("canon_ns", Json::from(p.canon_ns)),
        ("intern_ns", Json::from(p.intern_ns)),
        ("expand_ns", Json::from(p.expand_ns)),
        ("eval_ns", Json::from(p.eval_ns)),
        ("visit_ns", Json::from(p.visit_ns)),
        ("intern_hits", Json::from(p.intern_hits)),
        ("intern_misses", Json::from(p.intern_misses)),
        ("steps_leased", Json::from(p.steps_leased)),
        ("steps_refunded", Json::from(p.steps_refunded)),
        ("spill_pairs", Json::from(p.spill_pairs)),
        ("spill_segments", Json::from(p.spill_segments)),
        ("spill_compactions", Json::from(p.spill_compactions)),
        ("bloom_skips", Json::from(p.bloom_skips)),
        ("cold_probes", Json::from(p.cold_probes)),
        ("memo_hits", Json::from(p.memo_hits)),
        ("memo_misses", Json::from(p.memo_misses)),
        ("join_builds", Json::from(p.join_builds)),
        ("slice_rules_removed", Json::from(p.slice_rules_removed)),
        ("slice_relations_removed", Json::from(p.slice_relations_removed)),
        ("flow_dead_rules", Json::from(p.flow_dead_rules)),
    ])
}

/// Decode a profile object; absent fields read back zero, so entries
/// written by older versions (pre-tiered-store, pre-query-engine) parse.
pub(crate) fn profile_from_json(p: &Json) -> SearchProfile {
    let ns = |field: &str| p.get(field).and_then(Json::as_u64).unwrap_or(0);
    SearchProfile {
        canon_ns: ns("canon_ns"),
        intern_ns: ns("intern_ns"),
        expand_ns: ns("expand_ns"),
        eval_ns: ns("eval_ns"),
        visit_ns: ns("visit_ns"),
        intern_hits: ns("intern_hits"),
        intern_misses: ns("intern_misses"),
        steps_leased: ns("steps_leased"),
        steps_refunded: ns("steps_refunded"),
        spill_pairs: ns("spill_pairs"),
        spill_segments: ns("spill_segments"),
        spill_compactions: ns("spill_compactions"),
        bloom_skips: ns("bloom_skips"),
        cold_probes: ns("cold_probes"),
        memo_hits: ns("memo_hits"),
        memo_misses: ns("memo_misses"),
        join_builds: ns("join_builds"),
        slice_rules_removed: ns("slice_rules_removed"),
        slice_relations_removed: ns("slice_relations_removed"),
        flow_dead_rules: ns("flow_dead_rules"),
    }
}

/// Parse a stored budget: the structured object written by this version,
/// or the legacy `"steps:N"` / `"time:SECONDS"` strings. A legacy
/// `"cancelled"` string (or anything else unparseable) invalidates the
/// entry — the old writer serialized cancelled verdicts it should have
/// dropped, and there is nothing sound to serve for them.
fn budget_from_json(v: &Json) -> Option<CachedBudget> {
    if let Some(n) = v.get("steps").and_then(u64_from_json) {
        return Some(CachedBudget::Steps(n));
    }
    if let Some(ns) = v.get("time_ns").and_then(u64_from_json) {
        return Some(CachedBudget::Time(Duration::from_nanos(ns)));
    }
    let s = v.as_str()?;
    if let Some(n) = s.strip_prefix("steps:") {
        return n.parse().ok().map(CachedBudget::Steps);
    }
    if let Some(secs) = s.strip_prefix("time:") {
        let secs: f64 = secs.parse().ok()?;
        return (secs.is_finite() && secs >= 0.0)
            .then(|| CachedBudget::Time(Duration::from_secs_f64(secs)));
    }
    None
}

/// Encode a canonical fact list as `[[rel, v0, v1, …], …]` of raw
/// interned indices. The indices are deterministic given the fingerprint
/// key (canonical spec + property + semantic options), which is what
/// makes a persisted trace replayable.
fn facts_to_json(facts: &Facts) -> Json {
    Json::Arr(
        facts
            .iter()
            .map(|(rel, tuple)| {
                let mut row = vec![Json::from(u64::from(rel.0))];
                row.extend(tuple.values().iter().map(|v| Json::from(u64::from(v.0))));
                Json::Arr(row)
            })
            .collect(),
    )
}

fn facts_from_json(v: &Json) -> Option<Facts> {
    v.as_array()?
        .iter()
        .map(|row| {
            let row = row.as_array()?;
            let rel = RelId(u32::try_from(row.first()?.as_u64()?).ok()?);
            let values = row[1..]
                .iter()
                .map(|c| c.as_u64().and_then(|n| u32::try_from(n).ok()).map(Value))
                .collect::<Option<Vec<Value>>>()?;
            Some((rel, Tuple::from(values)))
        })
        .collect()
}

pub(crate) fn ce_to_json(ce: &CounterExample) -> Json {
    let params = Json::Arr(
        ce.assignment
            .iter()
            .map(|(name, v)| Json::Arr(vec![Json::from(name.clone()), Json::from(u64::from(v.0))]))
            .collect(),
    );
    let steps = Json::Arr(
        ce.steps
            .iter()
            .map(|step| {
                Json::obj([
                    ("auto", Json::from(step.auto_state)),
                    // the component bitmask is a full u64: go through a
                    // string to stay exact beyond f64's 2^53
                    ("assign", Json::from(step.assignment.to_string())),
                    ("page", Json::from(u64::from(step.config.page.0))),
                    ("ext", facts_to_json(&step.config.ext)),
                    ("input", facts_to_json(&step.config.input)),
                    ("prev", facts_to_json(&step.config.prev)),
                    ("state", facts_to_json(&step.config.state)),
                    ("actions", facts_to_json(&step.config.actions)),
                ])
            })
            .collect(),
    );
    Json::obj([("core", facts_to_json(&ce.core)), ("params", params), ("steps", steps)])
}

pub(crate) fn ce_from_json(v: &Json) -> Option<CounterExample> {
    let core = facts_from_json(v.get("core")?)?;
    let assignment = v
        .get("params")?
        .as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            let name = pair.first()?.as_str()?.to_string();
            let value = Value(u32::try_from(pair.get(1)?.as_u64()?).ok()?);
            Some((name, value))
        })
        .collect::<Option<Vec<_>>>()?;
    let steps = v
        .get("steps")?
        .as_array()?
        .iter()
        .map(|step| {
            let config = PseudoConfig {
                page: PageId(u32::try_from(step.get("page")?.as_u64()?).ok()?),
                ext: Arc::new(facts_from_json(step.get("ext")?)?),
                input: Arc::new(facts_from_json(step.get("input")?)?),
                prev: Arc::new(facts_from_json(step.get("prev")?)?),
                state: Arc::new(facts_from_json(step.get("state")?)?),
                actions: Arc::new(facts_from_json(step.get("actions")?)?),
            };
            Some(TraceStep {
                auto_state: step.get("auto")?.as_u64()? as usize,
                config,
                assignment: step.get("assign")?.as_str()?.parse().ok()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    // the outer record's cycle_start is authoritative; from_json patches
    // it in after parsing
    Some(CounterExample { steps, cycle_start: 0, core, assignment })
}

/// The in-memory tier: an LRU-bounded map from fingerprint to result.
///
/// Recency is a monotone tick stamped on every get/put; eviction scans
/// for the minimum tick. The scan is O(entries), which at the bounded
/// sizes this cache runs at (hundreds) is cheaper than maintaining an
/// ordered structure on every hit.
struct MemCache {
    entries: HashMap<String, (CachedResult, u64)>,
    tick: u64,
    /// Maximum resident entries; `0` means unbounded.
    cap: usize,
}

impl MemCache {
    fn touch(&mut self, key: &str) -> Option<CachedResult> {
        self.tick += 1;
        let tick = self.tick;
        let (result, stamp) = self.entries.get_mut(key)?;
        *stamp = tick;
        Some(result.clone())
    }

    /// Insert, returning whether an LRU entry was evicted to make room.
    fn insert(&mut self, key: &str, result: CachedResult) -> bool {
        self.tick += 1;
        self.entries.insert(key.to_string(), (result, self.tick));
        if self.cap > 0 && self.entries.len() > self.cap {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, (_, t))| *t).map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                return true;
            }
        }
        false
    }
}

/// Hit/miss/eviction/persist-failure counters the cache feeds (see
/// [`crate::metrics::SvcMetrics`]).
#[derive(Clone)]
pub struct CacheMetrics {
    pub hits: Arc<Counter>,
    pub misses: Arc<Counter>,
    pub evictions: Arc<Counter>,
    pub persist_errors: Arc<Counter>,
}

/// In-memory LRU result cache with an optional on-disk mirror (one
/// `<fingerprint>.json` file per entry). Memory holds at most
/// [`DEFAULT_MEM_ENTRIES`] entries (configurable; long-running `wave
/// serve` processes stay bounded) — evicted entries are still served
/// from disk when a directory is configured.
pub struct ResultCache {
    mem: Mutex<MemCache>,
    dir: Option<PathBuf>,
    metrics: Option<CacheMetrics>,
}

impl ResultCache {
    pub fn in_memory() -> ResultCache {
        Self::bounded(DEFAULT_MEM_ENTRIES, None)
    }

    /// Cache backed by `dir` (created if missing).
    pub fn with_dir(dir: PathBuf) -> io::Result<ResultCache> {
        std::fs::create_dir_all(&dir)?;
        Ok(Self::bounded(DEFAULT_MEM_ENTRIES, Some(dir)))
    }

    /// Cache with an explicit in-memory entry bound (`0` = unbounded).
    /// The directory, when given, must already exist.
    pub fn bounded(mem_entries: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            mem: Mutex::new(MemCache { entries: HashMap::new(), tick: 0, cap: mem_entries }),
            dir,
            metrics: None,
        }
    }

    /// Feed hit/miss/eviction counts into `metrics` from now on.
    pub fn with_metrics(mut self, metrics: CacheMetrics) -> ResultCache {
        self.metrics = Some(metrics);
        self
    }

    pub fn get(&self, key: &str) -> Option<CachedResult> {
        let result = self.lookup(key);
        if let Some(m) = &self.metrics {
            if result.is_some() {
                m.hits.inc();
            } else {
                m.misses.inc();
            }
        }
        result
    }

    fn lookup(&self, key: &str) -> Option<CachedResult> {
        if let Some(hit) = self.mem.lock().unwrap().touch(key) {
            return Some(hit);
        }
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join(format!("{key}.json"))).ok()?;
        let result = CachedResult::from_json(&json::parse(&text).ok()?)?;
        self.insert_mem(key, result.clone());
        Some(result)
    }

    fn insert_mem(&self, key: &str, result: CachedResult) {
        let evicted = self.mem.lock().unwrap().insert(key, result);
        if evicted {
            if let Some(m) = &self.metrics {
                m.evictions.inc();
            }
        }
    }

    /// Insert into memory and onto disk. The disk write is crash-durable
    /// and atomic: the tmp file is fsynced before the rename publishes
    /// it, and the directory is fsynced after, so a power cut leaves
    /// either the old entry or the new one — never a torn or vanished
    /// file. A persist failure keeps the entry memory-only and is
    /// counted in [`CacheMetrics::persist_errors`].
    pub fn put(&self, key: &str, result: &CachedResult) {
        self.insert_mem(key, result.clone());
        if let Some(dir) = &self.dir {
            if self.persist(dir, key, result).is_err() {
                if let Some(m) = &self.metrics {
                    m.persist_errors.inc();
                }
            }
        }
    }

    fn persist(&self, dir: &Path, key: &str, result: &CachedResult) -> io::Result<()> {
        use std::io::Write;
        let path = dir.join(format!("{key}.json"));
        let tmp = dir.join(format!("{key}.json.tmp"));
        let body = format!("{}\n", result.to_json());
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(body.as_bytes())?;
        // fsync-then-rename: the data must be on disk before the rename
        // makes the entry visible, else a crash can publish an empty file
        file.sync_all()?;
        drop(file);
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // fsync the directory so the rename itself survives a crash
        std::fs::File::open(dir)?.sync_all()
    }

    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mem.lock().unwrap().entries.is_empty()
    }
}

/// What [`gc_dir`] removed and kept.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    pub removed: usize,
    pub kept: usize,
    pub bytes_freed: u64,
    pub bytes_kept: u64,
}

/// Garbage-collect a cache directory: drop `.json` entries older than
/// `max_age` (by modification time), then — if the survivors still
/// exceed `max_bytes` — drop oldest-first until under the size cap.
/// Leftover `.json.tmp` files from interrupted writes are always
/// removed. Unreadable entries are skipped, not errors.
pub fn gc_dir(
    dir: &Path,
    max_age: Option<Duration>,
    max_bytes: Option<u64>,
) -> io::Result<GcReport> {
    let now = SystemTime::now();
    // (modification time, size, path) per surviving entry
    let mut entries: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
    let mut report = GcReport::default();
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".json.tmp") {
            let _ = std::fs::remove_file(&path);
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta.modified().unwrap_or(now);
        let age = now.duration_since(mtime).unwrap_or(Duration::ZERO);
        if max_age.is_some_and(|limit| age > limit) {
            if std::fs::remove_file(&path).is_ok() {
                report.removed += 1;
                report.bytes_freed += meta.len();
            }
            continue;
        }
        entries.push((mtime, meta.len(), path));
    }
    if let Some(limit) = max_bytes {
        let mut total: u64 = entries.iter().map(|(_, size, _)| size).sum();
        entries.sort_by_key(|(mtime, _, _)| *mtime); // oldest first
        let mut cut = 0;
        while total > limit && cut < entries.len() {
            let (_, size, path) = &entries[cut];
            if std::fs::remove_file(path).is_ok() {
                report.removed += 1;
                report.bytes_freed += size;
                total -= size;
            }
            cut += 1;
        }
        entries.drain(..cut);
    }
    report.kept = entries.len();
    report.bytes_kept = entries.iter().map(|(_, size, _)| size).sum();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> VerifyOptions {
        VerifyOptions::default()
    }

    #[test]
    fn fingerprint_separates_inputs() {
        let a = fingerprint("spec a {}", "G p", &options());
        let b = fingerprint("spec b {}", "G p", &options());
        let c = fingerprint("spec a {}", "F p", &options());
        let mut opts = options();
        opts.heuristic1 = false;
        let d = fingerprint("spec a {}", "G p", &opts);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, fingerprint("spec a {}", "G p", &options()));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn cancel_token_does_not_affect_fingerprint() {
        let mut opts = options();
        opts.cancel = Some(wave_core::CancelToken::new());
        assert_eq!(fingerprint("s", "p", &options()), fingerprint("s", "p", &opts));
    }

    #[test]
    fn state_store_backend_does_not_affect_fingerprint() {
        let base = fingerprint("s", "p", &options());
        let mut opts = options();
        opts.state_store = wave_core::StateStoreKind::ByteKeys;
        assert_eq!(base, fingerprint("s", "p", &opts));
        opts.state_store = wave_core::StateStoreKind::Tiered(wave_core::TierParams {
            mem_bytes: 4 << 20,
            spill_dir: Some(std::path::PathBuf::from("/tmp/spill")),
        });
        assert_eq!(base, fingerprint("s", "p", &opts), "tier sizing is a tuning knob");
    }

    #[test]
    fn naive_joins_ablation_does_not_affect_fingerprint() {
        let mut opts = options();
        opts.naive_joins = true;
        assert_eq!(fingerprint("s", "p", &options()), fingerprint("s", "p", &opts));
    }

    /// A small but fully populated counterexample exercising every
    /// serialized field, including a component bitmask above 2^53 that
    /// would corrupt if routed through an f64.
    fn sample_ce() -> CounterExample {
        let facts = |rows: &[(u32, &[u32])]| -> Facts {
            rows.iter()
                .map(|(rel, vals)| {
                    (RelId(*rel), Tuple::from(vals.iter().map(|v| Value(*v)).collect::<Vec<_>>()))
                })
                .collect()
        };
        let step = |auto: usize, assign: u64, page: u32| TraceStep {
            auto_state: auto,
            assignment: assign,
            config: PseudoConfig {
                page: PageId(page),
                ext: Arc::new(facts(&[(0, &[1, 2]), (3, &[])])),
                input: Arc::new(facts(&[(1, &[4])])),
                prev: Arc::new(facts(&[])),
                state: Arc::new(facts(&[(2, &[5, 6, 7])])),
                actions: Arc::new(facts(&[(4, &[8])])),
            },
        };
        CounterExample {
            steps: vec![step(0, u64::MAX - 1, 0), step(1, 3, 1), step(2, 0, 0)],
            cycle_start: 1,
            core: facts(&[(0, &[1, 2]), (5, &[9])]),
            assignment: vec![("x".to_string(), Value(7)), ("y".to_string(), Value(0))],
        }
    }

    #[test]
    fn memory_round_trip() {
        let cache = ResultCache::in_memory();
        let result = CachedResult {
            verdict: CachedVerdict::Violated { steps: 7, cycle_start: 2, trace: Some(sample_ce()) },
            complete: true,
            elapsed: Duration::from_millis(120),
            profile: SearchProfile { expand_ns: 42, intern_misses: 3, ..Default::default() },
        };
        assert!(cache.get("k").is_none());
        cache.put("k", &result);
        assert_eq!(cache.get("k"), Some(result));
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("wave-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let result = CachedResult {
            verdict: CachedVerdict::Unknown { budget: CachedBudget::Steps(100) },
            complete: false,
            elapsed: Duration::from_secs(1),
            profile: SearchProfile {
                canon_ns: 1,
                intern_ns: 2,
                expand_ns: 3,
                eval_ns: 4,
                visit_ns: 5,
                intern_hits: 6,
                intern_misses: 7,
                steps_leased: 8,
                steps_refunded: 9,
                spill_pairs: 10,
                spill_segments: 11,
                spill_compactions: 12,
                bloom_skips: 13,
                cold_probes: 14,
                memo_hits: 15,
                memo_misses: 16,
                join_builds: 17,
                slice_rules_removed: 18,
                slice_relations_removed: 19,
                flow_dead_rules: 20,
            },
        };
        {
            let cache = ResultCache::with_dir(dir.clone()).unwrap();
            cache.put("deadbeef", &result);
        }
        // a fresh cache instance reads it back from disk
        let cache = ResultCache::with_dir(dir.clone()).unwrap();
        assert_eq!(cache.get("deadbeef"), Some(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counterexample_trace_survives_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("wave-cache-ce-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ce = sample_ce();
        let result = CachedResult {
            verdict: CachedVerdict::Violated {
                steps: ce.steps.len(),
                cycle_start: ce.cycle_start,
                trace: Some(ce.clone()),
            },
            complete: true,
            elapsed: Duration::from_nanos(1),
            profile: SearchProfile::default(),
        };
        {
            let cache = ResultCache::with_dir(dir.clone()).unwrap();
            cache.put("cafe", &result);
        }
        let cache = ResultCache::with_dir(dir.clone()).unwrap();
        let back = cache.get("cafe").expect("disk hit");
        assert_eq!(back.counterexample(), Some(&ce), "trace must round-trip exactly");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgets_and_elapsed_round_trip_exactly() {
        // values chosen to be unrepresentable after an f64-seconds round
        // trip: the old format lost the low nanoseconds of both
        for budget in [
            CachedBudget::Steps(u64::MAX),
            CachedBudget::Time(Duration::new(1_000_000, 123_456_789)),
            CachedBudget::Time(Duration::from_nanos(1)),
        ] {
            let result = CachedResult {
                verdict: CachedVerdict::Unknown { budget: budget.clone() },
                complete: false,
                elapsed: Duration::new(3_600_000, 999_999_999),
                profile: SearchProfile::default(),
            };
            let json = result.to_json().to_string();
            let back = CachedResult::from_json(&json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, result, "lossy round trip for {budget:?}");
        }
    }

    #[test]
    fn legacy_string_budgets_and_elapsed_still_parse() {
        let old = r#"{"verdict":"unknown","budget":"steps:100","complete":false,"elapsed_s":0.5}"#;
        let parsed = CachedResult::from_json(&json::parse(old).unwrap()).unwrap();
        assert_eq!(parsed.verdict, CachedVerdict::Unknown { budget: CachedBudget::Steps(100) });
        assert_eq!(parsed.elapsed, Duration::from_millis(500));

        let old = r#"{"verdict":"unknown","budget":"time:1.5","complete":false,"elapsed_s":1}"#;
        let parsed = CachedResult::from_json(&json::parse(old).unwrap()).unwrap();
        assert_eq!(
            parsed.verdict,
            CachedVerdict::Unknown { budget: CachedBudget::Time(Duration::from_millis(1500)) }
        );
    }

    #[test]
    fn legacy_cancelled_budget_invalidates_the_entry() {
        // the old writer cached cancelled runs it shouldn't have; those
        // entries must read back as a miss, not as a bogus verdict
        let old = r#"{"verdict":"unknown","budget":"cancelled","complete":false,"elapsed_s":1}"#;
        assert!(CachedResult::from_json(&json::parse(old).unwrap()).is_none());
    }

    #[test]
    fn legacy_shape_only_violations_read_back_without_a_trace() {
        let old =
            r#"{"verdict":"violated","steps":7,"cycle_start":2,"complete":true,"elapsed_s":1}"#;
        let parsed = CachedResult::from_json(&json::parse(old).unwrap()).unwrap();
        assert_eq!(
            parsed.verdict,
            CachedVerdict::Violated { steps: 7, cycle_start: 2, trace: None }
        );
        assert_eq!(parsed.counterexample(), None);
    }

    fn result(tag: usize) -> CachedResult {
        CachedResult {
            verdict: CachedVerdict::Violated { steps: tag, cycle_start: 0, trace: None },
            complete: true,
            elapsed: Duration::from_millis(1),
            profile: SearchProfile::default(),
        }
    }

    #[test]
    fn records_without_a_profile_read_back_zeroed() {
        // a disk entry written before profiles were persisted
        let old = r#"{"verdict":"holds","complete":true,"elapsed_s":0.5}"#;
        let parsed = CachedResult::from_json(&json::parse(old).unwrap()).unwrap();
        assert_eq!(parsed.verdict, CachedVerdict::Holds);
        assert!(parsed.profile.is_zero());
    }

    fn test_metrics() -> CacheMetrics {
        CacheMetrics {
            hits: Arc::new(Counter::default()),
            misses: Arc::new(Counter::default()),
            evictions: Arc::new(Counter::default()),
            persist_errors: Arc::new(Counter::default()),
        }
    }

    #[test]
    fn failed_persist_is_counted_and_entry_stays_memory_only() {
        let dir = std::env::temp_dir().join(format!("wave-cache-perr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // a directory squatting on the tmp path makes File::create fail
        // (EISDIR) regardless of privileges — chmod tricks don't work
        // when the tests run as root
        std::fs::create_dir_all(dir.join("kk.json.tmp")).unwrap();
        let metrics = test_metrics();
        let cache = ResultCache::bounded(8, Some(dir.clone())).with_metrics(metrics.clone());
        cache.put("kk", &result(1));
        assert_eq!(metrics.persist_errors.get(), 1, "failed persist is surfaced");
        assert!(!dir.join("kk.json").exists(), "nothing was published");
        assert_eq!(cache.get("kk"), Some(result(1)), "memory tier still serves it");
        // an unobstructed key persists durably on the same cache
        cache.put("ok", &result(2));
        assert_eq!(metrics.persist_errors.get(), 1, "healthy persist not counted");
        assert!(dir.join("ok.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_count_hits_misses_and_evictions() {
        let metrics = test_metrics();
        let cache = ResultCache::bounded(1, None).with_metrics(metrics.clone());
        assert!(cache.get("a").is_none());
        cache.put("a", &result(1));
        assert!(cache.get("a").is_some());
        cache.put("b", &result(2)); // cap 1: evicts a
        assert_eq!(metrics.hits.get(), 1);
        assert_eq!(metrics.misses.get(), 1);
        assert_eq!(metrics.evictions.get(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::bounded(2, None);
        cache.put("a", &result(1));
        cache.put("b", &result(2));
        assert!(cache.get("a").is_some()); // refresh a: b is now oldest
        cache.put("c", &result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn zero_cap_means_unbounded() {
        let cache = ResultCache::bounded(0, None);
        for i in 0..500 {
            cache.put(&format!("k{i}"), &result(i));
        }
        assert_eq!(cache.len(), 500);
    }

    #[test]
    fn evicted_entries_are_reloaded_from_disk() {
        let dir = std::env::temp_dir().join(format!("wave-cache-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = ResultCache::bounded(1, Some(dir.clone()));
        cache.put("aa", &result(1));
        cache.put("bb", &result(2)); // evicts aa from memory
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("aa"), Some(result(1)), "disk tier still serves it");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_by_size_drops_oldest_first_and_sweeps_tmp() {
        let dir = std::env::temp_dir().join(format!("wave-cache-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let body = "x".repeat(100);
        for (i, name) in ["old", "mid", "new"].iter().enumerate() {
            let path = dir.join(format!("{name}.json"));
            std::fs::write(&path, &body).unwrap();
            // well-separated mtimes without sleeping
            let t = std::time::SystemTime::now() - Duration::from_secs(300 - 100 * i as u64);
            let f = std::fs::File::options().write(true).open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        std::fs::write(dir.join("leftover.json.tmp"), "torn").unwrap();
        // keep ≤ 250 bytes: the two newest 100-byte entries survive
        let report = gc_dir(&dir, None, Some(250)).unwrap();
        assert_eq!(report.removed, 1, "{report:?}");
        assert_eq!(report.kept, 2);
        assert_eq!(report.bytes_kept, 200);
        assert!(!dir.join("old.json").exists());
        assert!(dir.join("mid.json").exists() && dir.join("new.json").exists());
        assert!(!dir.join("leftover.json.tmp").exists(), "tmp files are swept");

        // age-based pass: everything is older than a few seconds except
        // nothing — cut at 150s, dropping "mid" (200s old), keeping "new"
        let report = gc_dir(&dir, Some(Duration::from_secs(150)), None).unwrap();
        assert_eq!(report.removed, 1, "{report:?}");
        assert!(dir.join("new.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slice_ablation_changes_the_fingerprint() {
        // unlike naive_joins, the slice changes the *profile counters*
        // served back on a hit, so runs with it off must not share
        // entries with default runs
        let mut opts = options();
        opts.slice = false;
        assert_ne!(fingerprint("s", "p", &options()), fingerprint("s", "p", &opts));
    }

    #[test]
    fn budget_chunk_does_not_affect_fingerprint() {
        let mut opts = options();
        opts.budget_chunk = 1;
        assert_eq!(fingerprint("s", "p", &options()), fingerprint("s", "p", &opts));
    }

    #[test]
    fn cancelled_runs_are_not_cacheable() {
        let v = Verification {
            verdict: Verdict::Unknown(Budget::Cancelled),
            stats: Default::default(),
            complete: true,
        };
        assert!(CachedResult::from_verification(&v).is_none());
    }
}
