//! The verification result cache.
//!
//! Results are keyed by a fingerprint of the *canonical* specification
//! text (as `wave fmt` prints it, so formatting differences don't miss),
//! the property source text, and the semantically relevant
//! [`VerifyOptions`] fields (the cancellation token is excluded — it is
//! scheduling state, not semantics).
//!
//! The cache stores the verdict summary, not the counterexample trace: a
//! cached `violated` hit reports the lasso shape (step count and cycle
//! start) but cannot be replayed. Re-run with the cache disabled to
//! regenerate the full trace. The original run's [`SearchProfile`] *is*
//! kept (memory and disk tiers) and returned on hit; search counters
//! stay zeroed (`Stats.cores == 0`), which is how callers tell a hit
//! from a fresh run.
//!
//! When built [`ResultCache::with_metrics`], the cache counts hits,
//! misses, and memory-tier evictions into the service metrics registry.

use crate::json::{self, Json};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};
use wave_core::{Budget, SearchProfile, Verdict, Verification, VerifyOptions};
use wave_obs::Counter;

/// Default bound on in-memory cache entries (see [`ResultCache`]).
pub const DEFAULT_MEM_ENTRIES: usize = 256;

/// Compute the cache key: 128 hex-encoded bits of FNV-1a over the three
/// fingerprint components, NUL-separated.
///
/// Only *semantic* option fields participate: `cancel` (scheduling
/// state) and `state_store` (a speed/memory knob — both backends produce
/// identical verdicts, traces and statistics) are deliberately excluded,
/// so runs under either backend share cache entries.
pub fn fingerprint(spec_text: &str, property: &str, options: &VerifyOptions) -> String {
    let opts = format!(
        "h1={} h2={} pruning={:?} param={:?} max_steps={:?} time_limit={:?} plans={}",
        options.heuristic1,
        options.heuristic2,
        options.pruning,
        options.param_mode,
        options.max_steps,
        options.time_limit,
        options.use_plans,
    );
    let mut bytes = Vec::with_capacity(spec_text.len() + property.len() + opts.len() + 2);
    bytes.extend_from_slice(spec_text.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(property.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(opts.as_bytes());
    // two FNV-1a passes with distinct offset bases; the second also folds
    // in the position, so the halves are independent enough for a cache
    let h1 = fnv1a(&bytes, 0xcbf29ce484222325);
    let h2 = fnv1a_pos(&bytes, 0x6c62272e07bb0142);
    format!("{h1:016x}{h2:016x}")
}

fn fnv1a(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fnv1a_pos(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for (i, &b) in bytes.iter().enumerate() {
        h ^= (b as u64) ^ ((i as u64) << 8);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A cacheable verdict summary.
#[derive(Clone, Debug, PartialEq)]
pub enum CachedVerdict {
    Holds,
    /// Lasso shape of the counterexample (the trace itself is not kept).
    Violated {
        steps: usize,
        cycle_start: usize,
    },
    Unknown {
        budget: String,
    },
}

/// What the cache stores per key.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    pub verdict: CachedVerdict,
    pub complete: bool,
    /// Wall-clock of the original run, reported for reference.
    pub elapsed: Duration,
    /// Per-phase profile of the original run, served back on hit (the
    /// record's `profile_source` field says `"cached"` then).
    pub profile: SearchProfile,
}

impl CachedResult {
    /// Summarize a verification for caching. `None` for cancelled runs:
    /// cancellation is scheduling state, not a reproducible verdict.
    pub fn from_verification(v: &Verification) -> Option<CachedResult> {
        let verdict = match &v.verdict {
            Verdict::Holds => CachedVerdict::Holds,
            Verdict::Violated(ce) => {
                CachedVerdict::Violated { steps: ce.steps.len(), cycle_start: ce.cycle_start }
            }
            Verdict::Unknown(Budget::Cancelled) => return None,
            Verdict::Unknown(Budget::Steps(n)) => {
                CachedVerdict::Unknown { budget: format!("steps:{n}") }
            }
            Verdict::Unknown(Budget::Time(d)) => {
                CachedVerdict::Unknown { budget: format!("time:{}", d.as_secs_f64()) }
            }
        };
        Some(CachedResult {
            verdict,
            complete: v.complete,
            elapsed: v.stats.elapsed,
            profile: v.stats.profile.clone(),
        })
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![];
        match &self.verdict {
            CachedVerdict::Holds => pairs.push(("verdict", Json::from("holds"))),
            CachedVerdict::Violated { steps, cycle_start } => {
                pairs.push(("verdict", Json::from("violated")));
                pairs.push(("steps", Json::from(*steps)));
                pairs.push(("cycle_start", Json::from(*cycle_start)));
            }
            CachedVerdict::Unknown { budget } => {
                pairs.push(("verdict", Json::from("unknown")));
                pairs.push(("budget", Json::from(budget.clone())));
            }
        }
        pairs.push(("complete", Json::from(self.complete)));
        pairs.push(("elapsed_s", Json::from(self.elapsed.as_secs_f64())));
        let p = &self.profile;
        pairs.push((
            "profile",
            Json::obj([
                ("canon_ns", Json::from(p.canon_ns)),
                ("intern_ns", Json::from(p.intern_ns)),
                ("expand_ns", Json::from(p.expand_ns)),
                ("eval_ns", Json::from(p.eval_ns)),
                ("visit_ns", Json::from(p.visit_ns)),
                ("intern_hits", Json::from(p.intern_hits)),
                ("intern_misses", Json::from(p.intern_misses)),
            ]),
        ));
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Option<CachedResult> {
        let verdict = match v.get("verdict")?.as_str()? {
            "holds" => CachedVerdict::Holds,
            "violated" => CachedVerdict::Violated {
                steps: v.get("steps")?.as_u64()? as usize,
                cycle_start: v.get("cycle_start")?.as_u64()? as usize,
            },
            "unknown" => CachedVerdict::Unknown { budget: v.get("budget")?.as_str()?.to_string() },
            _ => return None,
        };
        // entries written before profiles were persisted have no
        // "profile" object; they read back with a zeroed profile
        let profile = v
            .get("profile")
            .map(|p| {
                let ns = |field: &str| p.get(field).and_then(Json::as_u64).unwrap_or(0);
                SearchProfile {
                    canon_ns: ns("canon_ns"),
                    intern_ns: ns("intern_ns"),
                    expand_ns: ns("expand_ns"),
                    eval_ns: ns("eval_ns"),
                    visit_ns: ns("visit_ns"),
                    intern_hits: ns("intern_hits"),
                    intern_misses: ns("intern_misses"),
                }
            })
            .unwrap_or_default();
        Some(CachedResult {
            verdict,
            complete: v.get("complete")?.as_bool()?,
            elapsed: Duration::from_secs_f64(v.get("elapsed_s")?.as_f64()?.max(0.0)),
            profile,
        })
    }
}

/// The in-memory tier: an LRU-bounded map from fingerprint to result.
///
/// Recency is a monotone tick stamped on every get/put; eviction scans
/// for the minimum tick. The scan is O(entries), which at the bounded
/// sizes this cache runs at (hundreds) is cheaper than maintaining an
/// ordered structure on every hit.
struct MemCache {
    entries: HashMap<String, (CachedResult, u64)>,
    tick: u64,
    /// Maximum resident entries; `0` means unbounded.
    cap: usize,
}

impl MemCache {
    fn touch(&mut self, key: &str) -> Option<CachedResult> {
        self.tick += 1;
        let tick = self.tick;
        let (result, stamp) = self.entries.get_mut(key)?;
        *stamp = tick;
        Some(result.clone())
    }

    /// Insert, returning whether an LRU entry was evicted to make room.
    fn insert(&mut self, key: &str, result: CachedResult) -> bool {
        self.tick += 1;
        self.entries.insert(key.to_string(), (result, self.tick));
        if self.cap > 0 && self.entries.len() > self.cap {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, (_, t))| *t).map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                return true;
            }
        }
        false
    }
}

/// Hit/miss/eviction counters the cache feeds (see
/// [`crate::metrics::SvcMetrics`]).
#[derive(Clone)]
pub struct CacheMetrics {
    pub hits: Arc<Counter>,
    pub misses: Arc<Counter>,
    pub evictions: Arc<Counter>,
}

/// In-memory LRU result cache with an optional on-disk mirror (one
/// `<fingerprint>.json` file per entry). Memory holds at most
/// [`DEFAULT_MEM_ENTRIES`] entries (configurable; long-running `wave
/// serve` processes stay bounded) — evicted entries are still served
/// from disk when a directory is configured.
pub struct ResultCache {
    mem: Mutex<MemCache>,
    dir: Option<PathBuf>,
    metrics: Option<CacheMetrics>,
}

impl ResultCache {
    pub fn in_memory() -> ResultCache {
        Self::bounded(DEFAULT_MEM_ENTRIES, None)
    }

    /// Cache backed by `dir` (created if missing).
    pub fn with_dir(dir: PathBuf) -> io::Result<ResultCache> {
        std::fs::create_dir_all(&dir)?;
        Ok(Self::bounded(DEFAULT_MEM_ENTRIES, Some(dir)))
    }

    /// Cache with an explicit in-memory entry bound (`0` = unbounded).
    /// The directory, when given, must already exist.
    pub fn bounded(mem_entries: usize, dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            mem: Mutex::new(MemCache { entries: HashMap::new(), tick: 0, cap: mem_entries }),
            dir,
            metrics: None,
        }
    }

    /// Feed hit/miss/eviction counts into `metrics` from now on.
    pub fn with_metrics(mut self, metrics: CacheMetrics) -> ResultCache {
        self.metrics = Some(metrics);
        self
    }

    pub fn get(&self, key: &str) -> Option<CachedResult> {
        let result = self.lookup(key);
        if let Some(m) = &self.metrics {
            if result.is_some() {
                m.hits.inc();
            } else {
                m.misses.inc();
            }
        }
        result
    }

    fn lookup(&self, key: &str) -> Option<CachedResult> {
        if let Some(hit) = self.mem.lock().unwrap().touch(key) {
            return Some(hit);
        }
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(dir.join(format!("{key}.json"))).ok()?;
        let result = CachedResult::from_json(&json::parse(&text).ok()?)?;
        self.insert_mem(key, result.clone());
        Some(result)
    }

    fn insert_mem(&self, key: &str, result: CachedResult) {
        let evicted = self.mem.lock().unwrap().insert(key, result);
        if evicted {
            if let Some(m) = &self.metrics {
                m.evictions.inc();
            }
        }
    }

    /// Insert into memory and (best-effort) onto disk.
    pub fn put(&self, key: &str, result: &CachedResult) {
        self.insert_mem(key, result.clone());
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{key}.json"));
            let tmp = dir.join(format!("{key}.json.tmp"));
            let body = format!("{}\n", result.to_json());
            // atomic publish so concurrent readers never see a torn file
            if std::fs::write(&tmp, body).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mem.lock().unwrap().entries.is_empty()
    }
}

/// What [`gc_dir`] removed and kept.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    pub removed: usize,
    pub kept: usize,
    pub bytes_freed: u64,
    pub bytes_kept: u64,
}

/// Garbage-collect a cache directory: drop `.json` entries older than
/// `max_age` (by modification time), then — if the survivors still
/// exceed `max_bytes` — drop oldest-first until under the size cap.
/// Leftover `.json.tmp` files from interrupted writes are always
/// removed. Unreadable entries are skipped, not errors.
pub fn gc_dir(
    dir: &Path,
    max_age: Option<Duration>,
    max_bytes: Option<u64>,
) -> io::Result<GcReport> {
    let now = SystemTime::now();
    // (modification time, size, path) per surviving entry
    let mut entries: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
    let mut report = GcReport::default();
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".json.tmp") {
            let _ = std::fs::remove_file(&path);
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta.modified().unwrap_or(now);
        let age = now.duration_since(mtime).unwrap_or(Duration::ZERO);
        if max_age.is_some_and(|limit| age > limit) {
            if std::fs::remove_file(&path).is_ok() {
                report.removed += 1;
                report.bytes_freed += meta.len();
            }
            continue;
        }
        entries.push((mtime, meta.len(), path));
    }
    if let Some(limit) = max_bytes {
        let mut total: u64 = entries.iter().map(|(_, size, _)| size).sum();
        entries.sort_by_key(|(mtime, _, _)| *mtime); // oldest first
        let mut cut = 0;
        while total > limit && cut < entries.len() {
            let (_, size, path) = &entries[cut];
            if std::fs::remove_file(path).is_ok() {
                report.removed += 1;
                report.bytes_freed += size;
                total -= size;
            }
            cut += 1;
        }
        entries.drain(..cut);
    }
    report.kept = entries.len();
    report.bytes_kept = entries.iter().map(|(_, size, _)| size).sum();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options() -> VerifyOptions {
        VerifyOptions::default()
    }

    #[test]
    fn fingerprint_separates_inputs() {
        let a = fingerprint("spec a {}", "G p", &options());
        let b = fingerprint("spec b {}", "G p", &options());
        let c = fingerprint("spec a {}", "F p", &options());
        let mut opts = options();
        opts.heuristic1 = false;
        let d = fingerprint("spec a {}", "G p", &opts);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, fingerprint("spec a {}", "G p", &options()));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn cancel_token_does_not_affect_fingerprint() {
        let mut opts = options();
        opts.cancel = Some(wave_core::CancelToken::new());
        assert_eq!(fingerprint("s", "p", &options()), fingerprint("s", "p", &opts));
    }

    #[test]
    fn memory_round_trip() {
        let cache = ResultCache::in_memory();
        let result = CachedResult {
            verdict: CachedVerdict::Violated { steps: 7, cycle_start: 2 },
            complete: true,
            elapsed: Duration::from_millis(120),
            profile: SearchProfile { expand_ns: 42, intern_misses: 3, ..Default::default() },
        };
        assert!(cache.get("k").is_none());
        cache.put("k", &result);
        assert_eq!(cache.get("k"), Some(result));
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("wave-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let result = CachedResult {
            verdict: CachedVerdict::Unknown { budget: "steps:100".to_string() },
            complete: false,
            elapsed: Duration::from_secs(1),
            profile: SearchProfile {
                canon_ns: 1,
                intern_ns: 2,
                expand_ns: 3,
                eval_ns: 4,
                visit_ns: 5,
                intern_hits: 6,
                intern_misses: 7,
            },
        };
        {
            let cache = ResultCache::with_dir(dir.clone()).unwrap();
            cache.put("deadbeef", &result);
        }
        // a fresh cache instance reads it back from disk
        let cache = ResultCache::with_dir(dir.clone()).unwrap();
        assert_eq!(cache.get("deadbeef"), Some(result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn result(tag: usize) -> CachedResult {
        CachedResult {
            verdict: CachedVerdict::Violated { steps: tag, cycle_start: 0 },
            complete: true,
            elapsed: Duration::from_millis(1),
            profile: SearchProfile::default(),
        }
    }

    #[test]
    fn records_without_a_profile_read_back_zeroed() {
        // a disk entry written before profiles were persisted
        let old = r#"{"verdict":"holds","complete":true,"elapsed_s":0.5}"#;
        let parsed = CachedResult::from_json(&json::parse(old).unwrap()).unwrap();
        assert_eq!(parsed.verdict, CachedVerdict::Holds);
        assert!(parsed.profile.is_zero());
    }

    #[test]
    fn metrics_count_hits_misses_and_evictions() {
        let metrics = CacheMetrics {
            hits: Arc::new(Counter::default()),
            misses: Arc::new(Counter::default()),
            evictions: Arc::new(Counter::default()),
        };
        let cache = ResultCache::bounded(1, None).with_metrics(metrics.clone());
        assert!(cache.get("a").is_none());
        cache.put("a", &result(1));
        assert!(cache.get("a").is_some());
        cache.put("b", &result(2)); // cap 1: evicts a
        assert_eq!(metrics.hits.get(), 1);
        assert_eq!(metrics.misses.get(), 1);
        assert_eq!(metrics.evictions.get(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::bounded(2, None);
        cache.put("a", &result(1));
        cache.put("b", &result(2));
        assert!(cache.get("a").is_some()); // refresh a: b is now oldest
        cache.put("c", &result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn zero_cap_means_unbounded() {
        let cache = ResultCache::bounded(0, None);
        for i in 0..500 {
            cache.put(&format!("k{i}"), &result(i));
        }
        assert_eq!(cache.len(), 500);
    }

    #[test]
    fn evicted_entries_are_reloaded_from_disk() {
        let dir = std::env::temp_dir().join(format!("wave-cache-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = ResultCache::bounded(1, Some(dir.clone()));
        cache.put("aa", &result(1));
        cache.put("bb", &result(2)); // evicts aa from memory
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("aa"), Some(result(1)), "disk tier still serves it");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_by_size_drops_oldest_first_and_sweeps_tmp() {
        let dir = std::env::temp_dir().join(format!("wave-cache-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let body = "x".repeat(100);
        for (i, name) in ["old", "mid", "new"].iter().enumerate() {
            let path = dir.join(format!("{name}.json"));
            std::fs::write(&path, &body).unwrap();
            // well-separated mtimes without sleeping
            let t = std::time::SystemTime::now() - Duration::from_secs(300 - 100 * i as u64);
            let f = std::fs::File::options().write(true).open(&path).unwrap();
            f.set_modified(t).unwrap();
        }
        std::fs::write(dir.join("leftover.json.tmp"), "torn").unwrap();
        // keep ≤ 250 bytes: the two newest 100-byte entries survive
        let report = gc_dir(&dir, None, Some(250)).unwrap();
        assert_eq!(report.removed, 1, "{report:?}");
        assert_eq!(report.kept, 2);
        assert_eq!(report.bytes_kept, 200);
        assert!(!dir.join("old.json").exists());
        assert!(dir.join("mid.json").exists() && dir.join("new.json").exists());
        assert!(!dir.join("leftover.json.tmp").exists(), "tmp files are swept");

        // age-based pass: everything is older than a few seconds except
        // nothing — cut at 150s, dropping "mid" (200s old), keeping "new"
        let report = gc_dir(&dir, Some(Duration::from_secs(150)), None).unwrap();
        assert_eq!(report.removed, 1, "{report:?}");
        assert!(dir.join("new.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_store_backend_does_not_affect_fingerprint() {
        let mut opts = options();
        opts.state_store = wave_core::StateStoreKind::ByteKeys;
        assert_eq!(fingerprint("s", "p", &options()), fingerprint("s", "p", &opts));
    }

    #[test]
    fn cancelled_runs_are_not_cacheable() {
        let v = Verification {
            verdict: Verdict::Unknown(Budget::Cancelled),
            stats: Default::default(),
            complete: true,
        };
        assert!(CachedResult::from_verification(&v).is_none());
    }
}
