//! A minimal JSON value model, parser, and writer.
//!
//! The service speaks JSON lines on its batch and TCP front-ends; the
//! workspace is dependency-free, so this is a small hand-rolled
//! implementation rather than serde. Objects keep insertion order (a
//! `Vec` of pairs), which makes every emitted record deterministic.

use std::fmt;

/// A JSON value. Numbers are `f64` (integers up to 2^53 round-trip).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as `u64`, requiring an exact integral value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for object literals.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl fmt::Display for Json {
    /// Single-line serialization (no newlines — safe for line protocols).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse error with a byte offset into the input.
#[derive(Clone, Debug)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // surrogate pairs are not needed for our own
                            // records; map lone surrogates to U+FFFD
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar verbatim
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_record() {
        let src =
            r#"{"name":"P5","verdict":"holds","steps":12,"ok":true,"note":null,"tags":["a","b"]}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("P5"));
        assert_eq!(v.get("steps").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Json::Str("a\"b\\c\nd".to_string());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(parse("17").unwrap().as_u64(), Some(17));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
