//! The JSON-lines batch front-end (`wave batch <jobs.jsonl>`).
//!
//! Input: one JSON job object per line (blank lines and `#` comment
//! lines are skipped). Each job produces one output record per verified
//! property — a whole-suite job expands to one record per property — in
//! input order. Malformed lines become `error` records; the batch keeps
//! going.

use crate::json::{self, Json};
use crate::service::{JobRecord, VerifyService};

/// Run every job in `input` (the jobs.jsonl contents), in order.
pub fn run_batch(svc: &VerifyService, input: &str) -> Vec<JobRecord> {
    let mut records = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let default_name = format!("job-{}", lineno + 1);
        match json::parse(line) {
            Ok(request) => records.extend(svc.run_request(&request, &default_name)),
            Err(e) => {
                records.push(JobRecord::error(&default_name, format!("line {}: {e}", lineno + 1)))
            }
        }
    }
    records
}

/// Render records as JSON lines (the batch output format).
pub fn render_records(records: &[JobRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Summary line: `ok` is false when any record is an error or a verdict
/// mismatch would be reported by exit status (the CLI maps this).
pub fn summary(records: &[JobRecord]) -> Json {
    let count = |v: &str| records.iter().filter(|r| r.verdict == v).count();
    Json::obj([
        ("jobs", Json::from(records.len())),
        ("holds", Json::from(count("holds"))),
        ("violated", Json::from(count("violated"))),
        ("unknown", Json::from(count("unknown"))),
        ("errors", Json::from(count("error"))),
        ("cached", Json::from(records.iter().filter(|r| r.cached).count())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn batch_runs_lines_in_order_and_survives_bad_ones() {
        let svc = VerifyService::new(ServiceConfig { jobs: 2, ..Default::default() }).unwrap();
        let spec = r#"spec m { inputs { b(x); } home A; page A { inputs { b } options b(x) <- x = \"g\"; target B <- b(\"g\"); } page B { target A <- true; } }"#;
        let input = format!(
            "# a comment\n\
             {{\"spec\":\"{spec}\",\"property\":\"G (@B -> X @A)\",\"name\":\"first\"}}\n\
             \n\
             not json\n\
             {{\"spec\":\"{spec}\",\"property\":\"G !@B\",\"name\":\"second\"}}\n"
        );
        let records = run_batch(&svc, &input);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "first");
        assert_eq!(records[0].verdict, "holds");
        assert_eq!(records[1].verdict, "error");
        assert!(records[1].error.as_deref().unwrap().contains("line 4"));
        assert_eq!(records[2].name, "second");
        assert_eq!(records[2].verdict, "violated");

        let rendered = render_records(&records);
        assert_eq!(rendered.lines().count(), 3);
        let s = summary(&records);
        assert_eq!(s.get("jobs").unwrap().as_u64(), Some(3));
        assert_eq!(s.get("errors").unwrap().as_u64(), Some(1));
    }
}
