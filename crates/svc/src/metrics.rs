//! Service-level metrics: the typed handle bundle every svc subsystem
//! shares.
//!
//! One [`SvcMetrics`] is created per service (or per `wave serve`
//! process) and threaded by `Arc` into the scheduler, the result cache,
//! and the TCP front-end. The instruments live in a
//! [`wave_obs::MetricsRegistry`], so the same state renders two ways:
//! line-JSON for the `{"cmd":"metrics"}` socket command
//! ([`SvcMetrics::to_json`]) and Prometheus text exposition for the
//! optional `--metrics-addr` scrape listener
//! ([`wave_obs::render_prometheus`]).

use crate::json::Json;
use std::sync::Arc;
use wave_obs::{Counter, Gauge, Histogram, MetricKind, MetricsRegistry};

/// Typed handles into the service's metrics registry. Field order is
/// registration order, which is also the exposition order.
pub struct SvcMetrics {
    registry: Arc<MetricsRegistry>,
    /// Checks started (fresh runs, not cache hits).
    pub checks_total: Arc<Counter>,
    /// Checks currently running on the scheduler.
    pub checks_inflight: Arc<Gauge>,
    /// Result-cache lookups that were served from memory or disk.
    pub cache_hits: Arc<Counter>,
    /// Result-cache lookups that missed both tiers.
    pub cache_misses: Arc<Counter>,
    /// Entries evicted from the in-memory LRU tier.
    pub cache_evictions: Arc<Counter>,
    /// Work items waiting for a scheduler worker.
    pub queue_depth: Arc<Gauge>,
    /// Wall-time per scheduler work unit (one core-range scan), ns.
    pub unit_latency_ns: Arc<Histogram>,
    /// Visited pairs written to spill segments by the tiered store.
    pub spill_pairs_total: Arc<Counter>,
    /// Spill segments written by the tiered store (compaction outputs
    /// included).
    pub spill_segments_total: Arc<Counter>,
    /// Cold-tier merge compactions run by the tiered store.
    pub spill_compactions_total: Arc<Counter>,
    /// High-water mark of visited pairs resident in memory across all
    /// completed work units (gauge; only ever ratchets up via
    /// [`Gauge::set_max`]).
    pub store_max_resident: Arc<Gauge>,
    /// High-water mark of visited pairs spilled to disk across all
    /// completed work units (gauge; ratchets up like `store_max_resident`).
    pub store_max_spilled: Arc<Gauge>,
    /// Rule/target evaluations answered from the delta-driven query memo.
    pub memo_hits_total: Arc<Counter>,
    /// Memoized rule/target evaluations that executed their plan.
    pub memo_misses_total: Arc<Counter>,
    /// Hash tables built by lowered hash-join operators.
    pub join_builds_total: Arc<Counter>,
    /// Rules (targets included) the wave-flow slice removed from
    /// completed checks (summed per check, not per unit).
    pub slice_rules_removed_total: Arc<Counter>,
    /// Relations statically proven always-empty across completed checks.
    pub slice_relations_removed_total: Arc<Counter>,
    /// Rules whose guard the flow analysis refuted across completed
    /// checks.
    pub flow_dead_rules_total: Arc<Counter>,
    /// Open `wave serve` connections.
    pub connections_active: Arc<Gauge>,
    /// Request lines processed by the server.
    pub requests_total: Arc<Counter>,
    /// Connection handlers that panicked (slot released by guard).
    pub handler_panics_total: Arc<Counter>,
    /// Connections dropped on a socket read/write timeout.
    pub conn_timeouts_total: Arc<Counter>,
    /// Disk-cache persist attempts that failed (tmp write, fsync, or
    /// rename); the entry stays memory-only.
    pub cache_persist_errors_total: Arc<Counter>,
    /// Scheduler work units whose search panicked (recorded as failed
    /// outcomes, re-run by the settlement pass when budgeted).
    pub unit_panics_total: Arc<Counter>,
    /// Fleet workers currently registered with the dispatcher.
    pub fleet_workers_connected: Arc<Gauge>,
    /// Fleet workers that ever registered.
    pub fleet_workers_total: Arc<Counter>,
    /// Work-unit leases sent to fleet workers (re-dispatches included).
    pub fleet_units_dispatched_total: Arc<Counter>,
    /// Work-unit outcomes accepted from fleet workers.
    pub fleet_units_completed_total: Arc<Counter>,
    /// Straggler units duplicated onto a second worker.
    pub fleet_units_redispatched_total: Arc<Counter>,
    /// Leases that exceeded the lease timeout.
    pub fleet_lease_timeouts_total: Arc<Counter>,
    /// Workers declared dead (heartbeat loss, EOF, or protocol error).
    pub fleet_worker_deaths_total: Arc<Counter>,
    /// Worker-reported unit errors (re-queued, never recorded).
    pub fleet_worker_errors_total: Arc<Counter>,
    /// Units the dispatcher ran locally (fallback executor).
    pub fleet_local_units_total: Arc<Counter>,
    /// Heartbeat lines received from fleet workers.
    pub fleet_heartbeats_total: Arc<Counter>,
}

impl std::fmt::Debug for SvcMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SvcMetrics")
            .field("checks_total", &self.checks_total.get())
            .field("checks_inflight", &self.checks_inflight.get())
            .finish_non_exhaustive()
    }
}

impl SvcMetrics {
    pub fn new() -> Arc<SvcMetrics> {
        let registry = Arc::new(MetricsRegistry::new());
        Arc::new(SvcMetrics {
            checks_total: registry
                .counter("wave_checks_total", "Verification checks started (cache hits excluded)"),
            checks_inflight: registry
                .gauge("wave_checks_inflight", "Verification checks currently running"),
            cache_hits: registry
                .counter("wave_cache_hits_total", "Result cache hits (memory or disk tier)"),
            cache_misses: registry.counter("wave_cache_misses_total", "Result cache misses"),
            cache_evictions: registry
                .counter("wave_cache_evictions_total", "Entries evicted from the memory tier"),
            queue_depth: registry
                .gauge("wave_scheduler_queue_depth", "Work items waiting for a scheduler worker"),
            unit_latency_ns: registry
                .histogram("wave_unit_latency_ns", "Scheduler work-unit wall time (ns)"),
            spill_pairs_total: registry.counter(
                "wave_spill_pairs_total",
                "Visited pairs written to spill segments by the tiered store",
            ),
            spill_segments_total: registry.counter(
                "wave_spill_segments_total",
                "Spill segments written by the tiered store (compactions included)",
            ),
            spill_compactions_total: registry
                .counter("wave_spill_compactions_total", "Cold-tier merge compactions run"),
            store_max_resident: registry.gauge(
                "wave_store_max_resident",
                "High-water mark of visited pairs resident in memory",
            ),
            store_max_spilled: registry.gauge(
                "wave_store_max_spilled",
                "High-water mark of visited pairs spilled to disk",
            ),
            memo_hits_total: registry.counter(
                "wave_memo_hits_total",
                "Rule evaluations answered from the delta-driven query memo",
            ),
            memo_misses_total: registry.counter(
                "wave_memo_misses_total",
                "Memoized rule evaluations that executed their plan",
            ),
            join_builds_total: registry.counter(
                "wave_join_builds_total",
                "Hash tables built by lowered hash-join operators",
            ),
            slice_rules_removed_total: registry.counter(
                "wave_slice_rules_removed_total",
                "Rules removed by the wave-flow slice across completed checks",
            ),
            slice_relations_removed_total: registry.counter(
                "wave_slice_relations_removed_total",
                "Relations statically proven always-empty across completed checks",
            ),
            flow_dead_rules_total: registry.counter(
                "wave_flow_dead_rules_total",
                "Rules with statically unsatisfiable guards across completed checks",
            ),
            connections_active: registry
                .gauge("wave_connections_active", "Open wave serve connections"),
            requests_total: registry
                .counter("wave_requests_total", "Request lines processed by wave serve"),
            handler_panics_total: registry
                .counter("wave_handler_panics_total", "Connection handlers that panicked"),
            conn_timeouts_total: registry.counter(
                "wave_conn_timeouts_total",
                "Connections dropped on a socket read/write timeout",
            ),
            cache_persist_errors_total: registry.counter(
                "wave_cache_persist_errors_total",
                "Disk-cache persist attempts that failed",
            ),
            unit_panics_total: registry
                .counter("wave_unit_panics_total", "Scheduler work units whose search panicked"),
            fleet_workers_connected: registry.gauge(
                "wave_fleet_workers_connected",
                "Fleet workers currently registered with the dispatcher",
            ),
            fleet_workers_total: registry
                .counter("wave_fleet_workers_total", "Fleet workers that ever registered"),
            fleet_units_dispatched_total: registry.counter(
                "wave_fleet_units_dispatched_total",
                "Work-unit leases sent to fleet workers (re-dispatches included)",
            ),
            fleet_units_completed_total: registry.counter(
                "wave_fleet_units_completed_total",
                "Work-unit outcomes accepted from fleet workers",
            ),
            fleet_units_redispatched_total: registry.counter(
                "wave_fleet_units_redispatched_total",
                "Straggler units duplicated onto a second worker",
            ),
            fleet_lease_timeouts_total: registry
                .counter("wave_fleet_lease_timeouts_total", "Leases that exceeded the timeout"),
            fleet_worker_deaths_total: registry.counter(
                "wave_fleet_worker_deaths_total",
                "Workers declared dead (heartbeat loss, EOF, or protocol error)",
            ),
            fleet_worker_errors_total: registry.counter(
                "wave_fleet_worker_errors_total",
                "Worker-reported unit errors (re-queued, never recorded)",
            ),
            fleet_local_units_total: registry.counter(
                "wave_fleet_local_units_total",
                "Units the dispatcher ran locally (fallback executor)",
            ),
            fleet_heartbeats_total: registry
                .counter("wave_fleet_heartbeats_total", "Heartbeat lines received from workers"),
            registry,
        })
    }

    /// The backing registry (for Prometheus exposition).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Snapshot as a JSON object: counters and gauges as numbers,
    /// histograms as `{"count":…,"sum":…}` objects.
    pub fn to_json(&self) -> Json {
        let pairs = self
            .registry
            .snapshot()
            .into_iter()
            .map(|snap| {
                let value = match snap.kind {
                    MetricKind::Counter => Json::from(snap.value),
                    MetricKind::Gauge => Json::from(snap.gauge as f64),
                    MetricKind::Histogram => Json::obj([
                        ("count", Json::from(snap.hist_count)),
                        ("sum", Json::from(snap.hist_sum)),
                    ]),
                };
                (snap.name, value)
            })
            .collect();
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_snapshot_has_every_instrument() {
        let m = SvcMetrics::new();
        m.checks_total.inc();
        m.checks_inflight.set(2);
        m.unit_latency_ns.observe(1_000);
        let json = m.to_json();
        assert_eq!(json.get("wave_checks_total").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("wave_checks_inflight").unwrap().as_f64(), Some(2.0));
        let hist = json.get("wave_unit_latency_ns").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(1_000));
        for name in [
            "wave_cache_hits_total",
            "wave_cache_misses_total",
            "wave_cache_evictions_total",
            "wave_scheduler_queue_depth",
            "wave_spill_pairs_total",
            "wave_spill_segments_total",
            "wave_spill_compactions_total",
            "wave_store_max_resident",
            "wave_store_max_spilled",
            "wave_memo_hits_total",
            "wave_memo_misses_total",
            "wave_join_builds_total",
            "wave_slice_rules_removed_total",
            "wave_slice_relations_removed_total",
            "wave_flow_dead_rules_total",
            "wave_connections_active",
            "wave_requests_total",
            "wave_handler_panics_total",
            "wave_conn_timeouts_total",
            "wave_cache_persist_errors_total",
            "wave_unit_panics_total",
            "wave_fleet_workers_connected",
            "wave_fleet_workers_total",
            "wave_fleet_units_dispatched_total",
            "wave_fleet_units_completed_total",
            "wave_fleet_units_redispatched_total",
            "wave_fleet_lease_timeouts_total",
            "wave_fleet_worker_deaths_total",
            "wave_fleet_worker_errors_total",
            "wave_fleet_local_units_total",
            "wave_fleet_heartbeats_total",
        ] {
            assert!(json.get(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn prometheus_render_covers_the_registry() {
        let m = SvcMetrics::new();
        m.requests_total.add(7);
        let text = wave_obs::render_prometheus(m.registry());
        assert!(text.contains("# TYPE wave_requests_total counter"), "{text}");
        assert!(text.contains("wave_requests_total 7"), "{text}");
        assert!(text.contains("# TYPE wave_unit_latency_ns histogram"), "{text}");
        assert!(text.contains("# TYPE wave_fleet_workers_connected gauge"), "{text}");
        assert!(text.contains("# TYPE wave_fleet_lease_timeouts_total counter"), "{text}");
    }
}
