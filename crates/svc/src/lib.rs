//! `wave-svc`: the concurrent verification service.
//!
//! Turns the [`wave_core`] verifier into a service:
//!
//! * [`scheduler`] — a work scheduler that decomposes one check into
//!   independent units (per `C_∃` assignment, and per core-range within
//!   large assignments) and runs them on a `std::thread` worker pool,
//!   with cooperative cancellation so the first counterexample cancels
//!   its siblings. Verdicts are byte-identical to sequential runs (see
//!   the module docs for the determinism argument).
//! * [`service`] — suites and single checks as JSON jobs and records.
//! * [`cache`] — an in-memory + optional on-disk result cache keyed by
//!   a fingerprint of (canonical spec, property text, options).
//! * [`batch`] — the `wave batch <jobs.jsonl>` front-end.
//! * [`server`] — the `wave serve` line-JSON TCP front-end.
//! * [`fleet`] — distributed verification: a dispatcher that leases
//!   work units to remote `wave worker` processes with heartbeats,
//!   lease timeouts, straggler re-dispatch, and a local fallback
//!   executor, settling to verdicts byte-identical to `--jobs 1`.
//! * [`json`] — the dependency-free JSON model they all share.
//! * [`metrics`] — the service metrics bundle ([`SvcMetrics`]) backed by
//!   a [`wave_obs::MetricsRegistry`], exposed over the socket
//!   (`{"cmd":"metrics"}`) and an optional Prometheus listener.

pub mod batch;
pub mod cache;
pub mod fleet;
pub mod json;
pub mod metrics;
pub mod scheduler;
pub mod server;
pub mod service;

pub use batch::{render_records, run_batch, summary};
pub use cache::{
    fingerprint, CacheMetrics, CachedBudget, CachedResult, CachedVerdict, ResultCache,
};
pub use fleet::{
    check_fleet, run_worker, CheckSource, FleetDispatcher, FleetOptions, WorkerConfig, WorkerReport,
};
pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::SvcMetrics;
pub use scheduler::{check_parallel, run_prepared, ParallelOptions};
pub use server::{Server, ServerConfig};
pub use service::{
    lint_records, lookup_suite, parse_options, DiagnosticRecord, JobRecord, ServiceConfig,
    VerifyService,
};
