//! The work scheduler: runs prepared checks as independent work units on
//! a `std::thread` worker pool.
//!
//! A check decomposes into one unit per `C_∃` assignment
//! ([`PreparedCheck::num_units`]); when that yields less parallelism than
//! the pool width, large units are further split into bitmap-counter
//! core ranges. Each unit search is a pure function of `(unit, range)`
//! and the verifier options, which gives the scheduler a simple
//! determinism argument:
//!
//! * every item gets its own [`CancelToken`] (chained to the caller's,
//!   so external cancellation still reaches every worker),
//! * the first *decisive* (non-clean) outcome at ordinal `k` cancels only
//!   items with ordinal `> k` of the same check — items the sequential
//!   loop would never have reached,
//! * the reducer walks ordinals in order and stops at the first decisive
//!   outcome, which is exactly the outcome the sequential scan stops at.
//!
//! # Budgeted runs: the shared pool and the settlement pass
//!
//! A step budget (`--max-steps`) is *global to a check*: every worker
//! item of a check leases steps from one shared
//! [`wave_core::BudgetPool`], so the total work charged equals the
//! configured limit, never `limit × items`. That bounds the work, but
//! worker timing still decides *which* items the pool starves — a
//! sibling that the sequential scan would never have reached can drain
//! steps a lower-ordinal item was entitled to. The reducer therefore
//! runs a deterministic *settlement* pass per check, threading the exact
//! sequential leftover through the ordinals:
//!
//! * a recorded `Clean` or `Violation` whose `configs` fit the leftover
//!   is accepted as-is — a completed search is a pure function of the
//!   item, so it is byte-identical to what the sequential scan produces
//!   (a completed parallel search charged exactly `configs` steps, and
//!   the exhaustion point of a lease is chunk-size independent);
//! * anything else (an exhausted or cancel-starved item, an error, a
//!   result that overran the leftover, or a unit whose worker died
//!   before recording anything) is re-run sequentially on the spot under
//!   a fresh pool granting *exactly* the leftover — which reproduces the
//!   sequential outcome for that item by construction.
//!
//! Total settlement work is bounded by the budget itself (re-runs charge
//! at most the leftover). Exhaustion reports carry the configured global
//! limit (`Budget::Steps(K)`) and deadline reports the actual elapsed
//! time, on both the sequential and parallel paths — so budgeted
//! verdicts, `Unknown` attributions, and counterexamples are
//! byte-identical to [`Verifier::check`] at any `--jobs` count.
//! Wall-clock budgets remain best-effort: which `Unknown(Time)` item
//! trips first depends on real time, never the verdict between `Holds`
//! and `Violated`.
//!
//! The settlement pass is shared with the distributed fleet dispatcher
//! ([`crate::fleet`]): the fleet records remote `UnitOutcome`s into the
//! same per-ordinal slots and reduces through [`settle_checks`], which is
//! what makes the fleet verdict byte-identical to `--jobs 1` across a
//! lossy transport — any unit a worker lost, starved, or overran is
//! simply re-run under the exact sequential leftover.
//!
//! Stats counters (`configs`, `cores`, `assignments`, maxima) are
//! deterministic too: the reducer merges exactly the ordinals the
//! sequential scan would have run (everything up to and including the
//! decisive one), never timing-dependent sibling work. Interner
//! hit/miss profile counters do vary with the split factor (each item
//! gets its own store arena), as do the lease accounting counters.
//!
//! # Fault tolerance
//!
//! A panic inside a unit search is caught at the worker and recorded as
//! a failed outcome ([`VerifyError::Panic`]) instead of unwinding
//! through the pool: sibling checks still settle, and on budgeted runs
//! the settlement pass re-runs the panicked unit (a transient panic
//! heals; a deterministic one reproduces as the check's error). All
//! shared-state locks are poison-tolerant — a worker that died mid-
//! record can no longer cascade into orchestrator panics.

use crate::metrics::SvcMetrics;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use wave_core::{
    Budget, BudgetPool, CancelToken, PreparedCheck, SearchLimits, SearchResult, Stats, UnitOutcome,
    Verdict, Verification, Verifier, VerifyError, VerifyOptions,
};
use wave_ltl::Property;

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct ParallelOptions {
    /// Worker threads.
    pub jobs: usize,
    /// Split large units into core sub-ranges when there are fewer units
    /// than workers.
    pub split_units: bool,
    /// When set, the scheduler feeds its queue-depth gauge and per-unit
    /// latency histogram (see [`SvcMetrics`]).
    pub metrics: Option<Arc<SvcMetrics>>,
    /// Fault-injection hook: panic inside the worker running the item at
    /// `(check index, ordinal)`. Tests use it to pin the panic-hardening
    /// behavior; production callers leave it `None`.
    pub chaos_panic_unit: Option<(usize, usize)>,
}

impl ParallelOptions {
    pub fn with_jobs(jobs: usize) -> ParallelOptions {
        ParallelOptions { jobs: jobs.max(1), ..ParallelOptions::default() }
    }
}

impl Default for ParallelOptions {
    fn default() -> ParallelOptions {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        ParallelOptions { jobs, split_units: true, metrics: None, chaos_panic_unit: None }
    }
}

/// One schedulable piece of work: a core range of one unit of one check.
/// Shared with the fleet dispatcher, which leases items to remote
/// workers instead of local threads.
pub(crate) struct Item {
    pub(crate) check: usize,
    /// Position in the check's sequential scan order.
    pub(crate) ordinal: usize,
    pub(crate) unit: usize,
    pub(crate) cores: Option<Range<u64>>,
    /// Estimated cost: the number of database cores the item scans.
    pub(crate) cost: u64,
}

/// The order workers pick items in: cheapest first (by core-count
/// estimate), ties broken by `(check, ordinal)` so the order is
/// deterministic. Runs the quick items before the long tails, so a
/// property suite reports its easy verdicts early and the pool stays
/// busy — while the *reduction* still happens in ordinal order, keeping
/// verdicts identical to the sequential scan.
pub(crate) fn execution_order(items: &[Item]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (items[i].cost, items[i].check, items[i].ordinal));
    order
}

/// Decompose prepared checks into schedulable items: one per unit, plus
/// core-range splits when the plain unit count leaves `jobs` workers
/// idle. Returns the items and, per check, the offset of its ordinal 0
/// in the item vector (`items[item_offsets[ci] + ordinal]`).
pub(crate) fn decompose(
    checks: &[PreparedCheck<'_>],
    jobs: usize,
    split_units: bool,
) -> (Vec<Item>, Vec<usize>) {
    let total_units: usize = checks.iter().map(|c| c.num_units()).sum();
    let split_into = if split_units && total_units < 2 * jobs && total_units > 0 {
        (2 * jobs).div_ceil(total_units)
    } else {
        1
    };
    let mut items = Vec::new();
    let mut item_offsets: Vec<usize> = Vec::with_capacity(checks.len());
    for (ci, check) in checks.iter().enumerate() {
        item_offsets.push(items.len());
        let mut ordinal = 0;
        let mut push = |unit: usize, cores: Option<Range<u64>>, cost: u64, ordinal: &mut usize| {
            items.push(Item { check: ci, ordinal: *ordinal, unit, cores, cost });
            *ordinal += 1;
        };
        for unit in 0..check.num_units() {
            // core_count probes the universe (it also prices the item for
            // the cheapest-first pick order); on overflow fall back to an
            // unsplit unit, which reports the same error when it runs
            let cores = check.core_count(unit).unwrap_or(1);
            let chunks = if split_into > 1 { (split_into as u64).min(cores).max(1) } else { 1 };
            if chunks == 1 {
                push(unit, None, cores, &mut ordinal);
            } else {
                let size = cores.div_ceil(chunks);
                let mut lo = 0;
                while lo < cores {
                    let hi = (lo + size).min(cores);
                    push(unit, Some(lo..hi), hi - lo, &mut ordinal);
                    lo = hi;
                }
            }
        }
    }
    (items, item_offsets)
}

/// Render a caught panic payload for [`VerifyError::Panic`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lock that recovers from a poisoned mutex: a worker that panicked
/// while holding it left data the settlement pass can still repair
/// (unfilled outcome slots are re-run), so propagating the poison would
/// only turn one dead unit into a dead orchestrator.
pub(crate) fn lock_tolerant<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-check reduction input: the recorded outcome slots (one per
/// ordinal; `None` when no worker ever recorded the item) and the
/// wall-clock at which the check's last item completed.
pub(crate) struct CheckSlots {
    pub(crate) outcomes: Vec<Option<Result<UnitOutcome, VerifyError>>>,
    pub(crate) done_at: Option<Duration>,
}

/// The deterministic reduction: settle each check in ordinal order,
/// threading the exact sequential leftover budget through the ordinals
/// and re-running (on a big-stack thread, since re-runs recurse like any
/// search) every item whose recorded outcome the leftover cannot vouch
/// for — including items nobody recorded at all. Shared by the thread
/// scheduler and the fleet dispatcher; see the module docs for the
/// argument that the result is byte-identical to the sequential scan.
pub(crate) fn settle_checks(
    options: &VerifyOptions,
    checks: &[PreparedCheck<'_>],
    items: &[Item],
    item_offsets: &[usize],
    pools: &[Option<Arc<BudgetPool>>],
    states: Vec<CheckSlots>,
    start: Instant,
) -> Vec<Result<Verification, VerifyError>> {
    let settle = move || {
        checks
            .iter()
            .enumerate()
            .zip(states)
            .map(|((ci, check), state)| {
                // leftover step budget the sequential scan would have at
                // the current ordinal (None: no step budget configured)
                let mut leftover = options.max_steps;
                let mut reran = false;
                let mut stats = Stats::default();
                let mut verdict = Verdict::Holds;
                for (ordinal, slot) in state.outcomes.into_iter().enumerate() {
                    // a completed search that fits the leftover is exactly
                    // what the sequential scan produces for this item;
                    // anything else must be replayed under the precise
                    // leftover allowance
                    let accepted = match (&slot, leftover) {
                        (Some(Ok(o)), Some(left)) => {
                            matches!(o.result, SearchResult::Clean | SearchResult::Violation(_))
                                && o.stats.configs <= left
                        }
                        (Some(Ok(_)), None) => true,
                        (Some(Err(_)), _) => leftover.is_none(),
                        (None, _) => false,
                    };
                    let outcome = if accepted {
                        slot.expect("accepted implies recorded")
                    } else {
                        reran = true;
                        let item = &items[item_offsets[ci] + ordinal];
                        let pool = match (&pools[ci], leftover) {
                            (Some(p), Some(left)) => Some(p.for_rerun(left)),
                            (Some(p), None) => Some(Arc::clone(p)),
                            (None, _) => None,
                        };
                        let limits = SearchLimits { pool, cancel: options.cancel.clone() };
                        catch_unwind(AssertUnwindSafe(|| {
                            check.run_unit(item.unit, item.cores.clone(), &limits)
                        }))
                        .unwrap_or_else(|p| Err(VerifyError::Panic(panic_message(p))))
                    };
                    match outcome {
                        Ok(o) => {
                            stats.merge(&o.stats);
                            match o.result {
                                SearchResult::Clean => {
                                    if let Some(left) = &mut leftover {
                                        *left -= o.stats.configs;
                                    }
                                }
                                SearchResult::Violation(ce) => {
                                    verdict = Verdict::Violated(ce);
                                    break;
                                }
                                SearchResult::Exhausted(b) => {
                                    verdict = Verdict::Unknown(b);
                                    break;
                                }
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
                let done_at = if reran {
                    start.elapsed()
                } else {
                    state.done_at.unwrap_or_else(|| start.elapsed())
                };
                stats.elapsed = done_at;
                // stamped once per check, like Verifier::check — the
                // per-unit outcomes merged above carry zeros
                let slice = check.slice();
                stats.profile.slice_rules_removed = slice.rules_removed;
                stats.profile.slice_relations_removed = slice.relations_removed;
                stats.profile.flow_dead_rules = slice.dead_rules;
                Ok(Verification { verdict, stats, complete: check.complete })
            })
            .collect::<Vec<_>>()
    };
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("wave-settle".into())
            // settlement re-runs recurse once per pseudorun step
            .stack_size(512 << 20)
            .spawn_scoped(scope, settle)
            .expect("spawn settle thread")
            .join()
            .expect("settle thread panicked")
    })
}

struct CheckState {
    /// Per-ordinal outcome slots, filled as items complete.
    outcomes: Vec<Option<Result<UnitOutcome, VerifyError>>>,
    /// Lowest ordinal with a decisive (non-clean) outcome.
    best: usize,
    /// Items not yet recorded; when it reaches zero the check is done.
    remaining: usize,
    /// Wall-clock time (from scheduler start) at which the check finished.
    done_at: Option<Duration>,
}

/// Check one property on a worker pool. Spawns the pool even for a
/// single-unit check (the NDFS needs the big stack anyway).
pub fn check_parallel(
    verifier: &Verifier,
    property: &Property,
    popts: &ParallelOptions,
) -> Result<Verification, VerifyError> {
    let prepared = verifier.prepare(property)?;
    run_prepared(verifier.options(), std::slice::from_ref(&prepared), popts)
        .pop()
        .expect("one check in, one verification out")
}

/// Run several prepared checks (typically a property suite over one spec)
/// concurrently, returning one [`Verification`] per check, in order.
pub fn run_prepared(
    options: &VerifyOptions,
    checks: &[PreparedCheck<'_>],
    popts: &ParallelOptions,
) -> Vec<Result<Verification, VerifyError>> {
    let start = Instant::now();
    let jobs = popts.jobs.max(1);
    // One shared budget pool per check (`None` when unbudgeted): all of
    // a check's items lease from it, so the step budget is global.
    let pools: Vec<_> = checks.iter().map(|_| options.budget_pool(start)).collect();

    let (items, item_offsets) = decompose(checks, jobs, popts.split_units);
    // one cancel token per item, chained to the caller's
    let tokens: Vec<CancelToken> = items
        .iter()
        .map(|_| match &options.cancel {
            Some(parent) => parent.child(),
            None => CancelToken::new(),
        })
        .collect();
    let order = execution_order(&items);
    let metrics = popts.metrics.as_deref();
    if let Some(m) = metrics {
        m.queue_depth.add(items.len() as i64);
    }

    let counts: Vec<usize> = {
        let mut counts = vec![0usize; checks.len()];
        for item in &items {
            counts[item.check] += 1;
        }
        counts
    };
    let states = Mutex::new(
        counts
            .iter()
            .map(|&n| CheckState {
                outcomes: (0..n).map(|_| None).collect(),
                best: usize::MAX,
                remaining: n,
                done_at: if n == 0 { Some(start.elapsed()) } else { None },
            })
            .collect::<Vec<_>>(),
    );
    let cursor = AtomicUsize::new(0);

    let record = |item: &Item, outcome: Result<UnitOutcome, VerifyError>| {
        if let (Some(m), Ok(o)) = (metrics, &outcome) {
            m.spill_pairs_total.add(o.stats.profile.spill_pairs);
            m.spill_segments_total.add(o.stats.profile.spill_segments);
            m.spill_compactions_total.add(o.stats.profile.spill_compactions);
            m.memo_hits_total.add(o.stats.profile.memo_hits);
            m.memo_misses_total.add(o.stats.profile.memo_misses);
            m.join_builds_total.add(o.stats.profile.join_builds);
            m.store_max_resident.set_max(o.stats.max_resident as i64);
            m.store_max_spilled.set_max(o.stats.max_spilled as i64);
        }
        let mut states = lock_tolerant(&states);
        let state = &mut states[item.check];
        let decisive = !matches!(&outcome, Ok(UnitOutcome { result: SearchResult::Clean, .. }));
        state.outcomes[item.ordinal] = Some(outcome);
        state.remaining -= 1;
        if state.remaining == 0 {
            state.done_at = Some(start.elapsed());
        }
        if decisive && item.ordinal < state.best {
            state.best = item.ordinal;
            // cancel exactly the items the sequential scan would not
            // reach: sibling items of this check with a higher ordinal
            for (i, other) in items.iter().enumerate() {
                if other.check == item.check && other.ordinal > item.ordinal {
                    tokens[i].cancel();
                }
            }
        }
    };

    let worker = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&idx) = order.get(i) else { break };
        let item = &items[idx];
        // picked up by a worker: no longer queued
        if let Some(m) = metrics {
            m.queue_depth.dec();
        }
        let skip = {
            let states = lock_tolerant(&states);
            states[item.check].best < item.ordinal
        };
        if skip {
            // a lower ordinal already decided this check; charge nothing
            let outcome = UnitOutcome {
                result: SearchResult::Exhausted(Budget::Cancelled),
                stats: Stats::default(),
            };
            record(item, Ok(outcome));
            continue;
        }
        let limits =
            SearchLimits { pool: pools[item.check].clone(), cancel: Some(tokens[idx].clone()) };
        let t0 = Instant::now();
        // a panic inside the search (or the chaos hook) becomes a failed
        // outcome, not a dead worker thread
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if popts.chaos_panic_unit == Some((item.check, item.ordinal)) {
                panic!("chaos: injected panic in unit ({}, {})", item.check, item.ordinal);
            }
            checks[item.check].run_unit(item.unit, item.cores.clone(), &limits)
        }))
        .unwrap_or_else(|payload| {
            if let Some(m) = metrics {
                m.unit_panics_total.inc();
            }
            Err(VerifyError::Panic(panic_message(payload)))
        });
        if let Some(m) = metrics {
            m.unit_latency_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        record(item, outcome);
    };

    std::thread::scope(|scope| {
        let threads = jobs.min(items.len());
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(
                std::thread::Builder::new()
                    .name(format!("wave-worker-{t}"))
                    // the nested DFS recurses once per pseudorun step
                    .stack_size(512 << 20)
                    .spawn_scoped(scope, worker)
                    .expect("spawn worker thread"),
            );
        }
        for h in handles {
            // a panicked worker left unrecorded slots; the settlement
            // pass re-runs them, so the join failure is not fatal
            let _ = h.join();
        }
    });

    // Reduce: settle each check in ordinal order (see module docs). The
    // mutex may be poisoned if a worker died mid-record; the slots it
    // did fill are still sound, and unfilled ones are re-run.
    let states = states.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner());
    let states: Vec<CheckSlots> = states
        .into_iter()
        .map(|s| CheckSlots { outcomes: s.outcomes, done_at: s.done_at })
        .collect();
    // slice counters are per *check* (stamped by settle, zero in units),
    // so they feed the registry here rather than in `record`
    if let Some(m) = metrics {
        for check in checks {
            let slice = check.slice();
            m.slice_rules_removed_total.add(slice.rules_removed);
            m.slice_relations_removed_total.add(slice.relations_removed);
            m.flow_dead_rules_total.add(slice.dead_rules);
        }
    }
    settle_checks(options, checks, &items, &item_offsets, &pools, states, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_ltl::parse_property;
    use wave_spec::parse_spec;

    fn shop() -> Verifier {
        // two universal variables over a relevant constant set gives the
        // check several C_∃ assignment units
        Verifier::new(
            parse_spec(
                r#"
            spec minishop {
              database { stock(item); }
              state { cart(item); }
              inputs { pick(x); button(x); }
              home A;
              page A {
                inputs { pick, button }
                options button(x) <- x = "add";
                options pick(x) <- stock(x);
                insert cart(x) <- pick(x) & button("add");
                target B <- (exists x: pick(x)) & button("add");
              }
              page B { target A <- true; }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn execution_order_is_cheapest_first_and_deterministic() {
        let item = |check, ordinal, cost| Item { check, ordinal, unit: ordinal, cores: None, cost };
        let items = vec![item(0, 0, 9), item(0, 1, 1), item(1, 0, 1), item(1, 1, 4), item(0, 2, 1)];
        // cost ascending; equal costs by (check, ordinal)
        assert_eq!(execution_order(&items), vec![1, 4, 2, 3, 0]);
        assert_eq!(execution_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn parallel_matches_sequential_verdicts() {
        let verifier = shop();
        let popts = ParallelOptions { jobs: 4, ..ParallelOptions::default() };
        for text in [
            "forall x: G (cart(x) -> F cart(x))",
            "forall x: G !cart(x)",
            "G !@B",
            "G (@A -> X (@A | @B))",
        ] {
            let prop = parse_property(text).unwrap();
            let seq = verifier.check(&prop).unwrap();
            let par = check_parallel(&verifier, &prop, &popts).unwrap();
            assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", par.verdict), "{text}");
        }
    }

    #[test]
    fn clean_runs_have_deterministic_counters() {
        let verifier = shop();
        let prop = parse_property("forall x: G (cart(x) -> F cart(x))").unwrap();
        let seq = verifier.check(&prop).unwrap();
        for jobs in [1, 2, 4] {
            let par =
                check_parallel(&verifier, &prop, &ParallelOptions { jobs, ..Default::default() })
                    .unwrap();
            assert!(par.verdict.holds());
            assert_eq!(seq.stats.cores, par.stats.cores, "jobs={jobs}");
            assert_eq!(seq.stats.configs, par.stats.configs, "jobs={jobs}");
            assert_eq!(seq.stats.assignments, par.stats.assignments, "jobs={jobs}");
        }
    }

    #[test]
    fn budgeted_runs_match_sequential_exactly() {
        // pick budgets spanning "exhausted immediately" through "almost
        // done": the parallel verdict, the reported budget, AND the
        // search counters must equal the sequential leftover semantics
        let unbudgeted = shop();
        let texts = ["forall x: G !cart(x)", "forall x: G (cart(x) -> F cart(x))", "G !@B"];
        for text in texts {
            let prop = parse_property(text).unwrap();
            let full = unbudgeted.check(&prop).unwrap().stats.configs;
            for budget in [1, 2, full / 2, full.saturating_sub(1), full, full + 1].into_iter() {
                let mut verifier = shop();
                verifier.options_mut().max_steps = Some(budget);
                let seq = verifier.check(&prop).unwrap();
                for jobs in [1, 2, 4] {
                    for chunk in [1, 7, 1024] {
                        let mut verifier = shop();
                        verifier.options_mut().max_steps = Some(budget);
                        verifier.options_mut().budget_chunk = chunk;
                        let popts = ParallelOptions { jobs, ..Default::default() };
                        let par = check_parallel(&verifier, &prop, &popts).unwrap();
                        let tag = format!("{text} budget={budget} jobs={jobs} chunk={chunk}");
                        assert_eq!(
                            format!("{:?}", seq.verdict),
                            format!("{:?}", par.verdict),
                            "{tag}"
                        );
                        assert_eq!(seq.complete, par.complete, "{tag}");
                        assert_eq!(seq.stats.configs, par.stats.configs, "{tag}");
                        assert_eq!(seq.stats.cores, par.stats.cores, "{tag}");
                        assert_eq!(seq.stats.assignments, par.stats.assignments, "{tag}");
                    }
                }
            }
        }
    }

    #[test]
    fn pre_cancelled_check_reports_cancelled() {
        let mut verifier = shop();
        let token = CancelToken::new();
        token.cancel();
        verifier.options_mut().cancel = Some(token);
        let prop = parse_property("G !@B").unwrap();
        let v = check_parallel(&verifier, &prop, &ParallelOptions::with_jobs(2)).unwrap();
        assert!(matches!(v.verdict, Verdict::Unknown(Budget::Cancelled)), "{:?}", v.verdict);
    }

    #[test]
    fn scheduler_feeds_metrics() {
        let metrics = crate::metrics::SvcMetrics::new();
        let verifier = shop();
        let prop = parse_property("G (@B -> X @A)").unwrap();
        let popts =
            ParallelOptions { jobs: 2, metrics: Some(Arc::clone(&metrics)), ..Default::default() };
        let v = check_parallel(&verifier, &prop, &popts).unwrap();
        assert!(v.verdict.holds());
        assert_eq!(metrics.queue_depth.get(), 0, "every queued item was picked up");
        assert!(metrics.unit_latency_ns.count() > 0, "unit latencies were observed");
        assert!(metrics.unit_latency_ns.sum() > 0, "unit latencies are nonzero wall time");
    }

    #[test]
    fn run_prepared_handles_many_properties() {
        let verifier = shop();
        let texts = ["G !@B", "forall x: G !cart(x)", "G (@B -> X @A)"];
        let props: Vec<_> = texts.iter().map(|t| parse_property(t).unwrap()).collect();
        let checks: Vec<_> = props.iter().map(|p| verifier.prepare(p).unwrap()).collect();
        let results = run_prepared(verifier.options(), &checks, &ParallelOptions::with_jobs(4));
        assert_eq!(results.len(), 3);
        for (text, (prop, result)) in texts.iter().zip(props.iter().zip(results)) {
            let seq = verifier.check(prop).unwrap();
            let par = result.unwrap();
            assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", par.verdict), "{text}");
        }
    }

    #[test]
    fn unit_panic_becomes_a_failed_outcome_not_an_orchestrator_panic() {
        // unbudgeted: the panicked unit's error surfaces as that check's
        // result, while sibling checks still settle normally
        let verifier = shop();
        let texts = ["forall x: G (cart(x) -> F cart(x))", "G (@B -> X @A)"];
        let props: Vec<_> = texts.iter().map(|t| parse_property(t).unwrap()).collect();
        let checks: Vec<_> = props.iter().map(|p| verifier.prepare(p).unwrap()).collect();
        let popts = ParallelOptions {
            jobs: 2,
            chaos_panic_unit: Some((0, 0)),
            metrics: Some(crate::metrics::SvcMetrics::new()),
            ..Default::default()
        };
        let results = run_prepared(verifier.options(), &checks, &popts);
        let err = results[0].as_ref().expect_err("panicked check errors");
        assert!(
            matches!(err, VerifyError::Panic(msg) if msg.contains("chaos")),
            "unexpected error: {err}"
        );
        let sibling = results[1].as_ref().expect("sibling check unaffected");
        assert!(sibling.verdict.holds());
        assert_eq!(popts.metrics.as_ref().unwrap().unit_panics_total.get(), 1);
    }

    #[test]
    fn budgeted_runs_self_heal_transient_panics() {
        // with a step budget, the settlement pass re-runs the panicked
        // unit under the exact sequential leftover — a transient panic
        // leaves the verdict and counters byte-identical to sequential
        let prop = parse_property("forall x: G (cart(x) -> F cart(x))").unwrap();
        let full = shop().check(&prop).unwrap().stats.configs;
        for budget in [full / 2, full, full + 1] {
            let mut verifier = shop();
            verifier.options_mut().max_steps = Some(budget);
            let seq = verifier.check(&prop).unwrap();
            let popts =
                ParallelOptions { jobs: 2, chaos_panic_unit: Some((0, 0)), ..Default::default() };
            let par = check_parallel(&verifier, &prop, &popts).unwrap();
            let tag = format!("budget={budget}");
            assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", par.verdict), "{tag}");
            assert_eq!(seq.stats.configs, par.stats.configs, "{tag}");
            assert_eq!(seq.stats.cores, par.stats.cores, "{tag}");
        }
    }
}
