//! The verification service: job descriptions in, result records out.
//!
//! A *job* names a specification (inline text, a `.wave` file path, or
//! one of the built-in benchmark suites E1–E4) plus a property — or a
//! whole suite, which expands to one record per property. The service
//! runs each job on the [`crate::scheduler`] worker pool, consults the
//! [`crate::cache`] first, and renders records as JSON objects shared by
//! `wave batch`, `wave serve`, and `wave check --json`.

use crate::cache::{fingerprint, gc_dir, CacheMetrics, CachedResult, CachedVerdict, ResultCache};
use crate::json::Json;
use crate::metrics::SvcMetrics;
use crate::scheduler::{self, ParallelOptions};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use wave_apps::AppSuite;
use wave_core::{Budget, Stats, Verdict, Verification, Verifier, VerifyOptions};
use wave_ltl::parse_property;
use wave_spec::{parse_spec, print_spec, Spec};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads per job.
    pub jobs: usize,
    /// Consult/populate the result cache.
    pub use_cache: bool,
    /// On-disk cache directory (memory-only when `None`).
    pub cache_dir: Option<PathBuf>,
    /// In-memory cache entry bound (`0` = unbounded).
    pub cache_mem_entries: usize,
    /// Garbage-collect disk cache entries older than this at startup.
    pub cache_gc_age: Option<Duration>,
    /// Shrink the disk cache below this many bytes at startup
    /// (oldest entries go first).
    pub cache_gc_bytes: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            jobs: ParallelOptions::default().jobs,
            use_cache: true,
            cache_dir: None,
            cache_mem_entries: crate::cache::DEFAULT_MEM_ENTRIES,
            cache_gc_age: None,
            cache_gc_bytes: None,
        }
    }
}

/// One result record (one property of one job).
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub name: String,
    /// `holds`, `violated`, `unknown`, or `error`.
    pub verdict: String,
    pub error: Option<String>,
    pub complete: bool,
    /// Served from the result cache (search counters are zero).
    pub cached: bool,
    /// Exhausted budget (`steps:N`, `time:S`, `cancelled`) when unknown.
    pub budget: Option<String>,
    /// Counterexample lasso shape when violated.
    pub ce: Option<(usize, usize)>,
    /// Lint pre-pass findings over the spec and property. Recomputed on
    /// every run (never cached — lint is cheap and its rules evolve).
    pub diagnostics: Vec<DiagnosticRecord>,
    pub stats: Stats,
}

/// One lint finding, resolved to file/line/column for JSON embedding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagnosticRecord {
    pub code: String,
    /// `warning` or `error`.
    pub severity: String,
    pub message: String,
    /// Artifact the finding is anchored to (spec path or property label).
    pub file: String,
    /// 1-based `(line, col, end_line, end_col)` when the finding has a span.
    pub pos: Option<(usize, usize, usize, usize)>,
    pub notes: Vec<String>,
}

impl DiagnosticRecord {
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("code", Json::from(self.code.clone())),
            ("severity", Json::from(self.severity.clone())),
            ("message", Json::from(self.message.clone())),
            ("file", Json::from(self.file.clone())),
        ];
        if let Some((line, col, end_line, end_col)) = self.pos {
            pairs.push(("line", Json::from(line)));
            pairs.push(("col", Json::from(col)));
            pairs.push(("end_line", Json::from(end_line)));
            pairs.push(("end_col", Json::from(end_col)));
        }
        if !self.notes.is_empty() {
            pairs.push((
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::from(n.clone())).collect()),
            ));
        }
        Json::obj(pairs)
    }
}

/// Run the lint pre-pass over a request and resolve every finding to a
/// flat [`DiagnosticRecord`]. Informational notes (severity
/// [`wave_lint::Severity::Note`], e.g. N0604 monotonicity hints) stay
/// out of job records — they describe verifier behavior, not spec
/// defects, and would churn cached record bytes.
pub fn lint_records(req: &wave_lint::LintRequest) -> Vec<DiagnosticRecord> {
    let diags = wave_lint::lint(req);
    let sources = wave_lint::SourceSet::new(req);
    diags
        .iter()
        .filter(|d| d.severity > wave_lint::Severity::Note)
        .map(|d| DiagnosticRecord {
            code: d.code.to_string(),
            severity: d.severity.to_string(),
            message: d.message.clone(),
            file: sources.file(d.origin).to_string(),
            pos: sources
                .resolve(d)
                .map(|loc| (loc.start.line, loc.start.col, loc.end.line, loc.end.col)),
            notes: d.notes.clone(),
        })
        .collect()
}

/// The canonical textual form of an exhausted budget, used by both fresh
/// and cached records so the two are byte-identical in `--json` output.
pub fn budget_label(b: &Budget) -> String {
    match b {
        Budget::Steps(n) => format!("steps:{n}"),
        Budget::Time(d) => format!("time:{}", d.as_secs_f64()),
        Budget::Cancelled => "cancelled".to_string(),
    }
}

impl JobRecord {
    pub fn error(name: &str, message: impl std::fmt::Display) -> JobRecord {
        JobRecord {
            name: name.to_string(),
            verdict: "error".to_string(),
            error: Some(message.to_string()),
            complete: false,
            cached: false,
            budget: None,
            ce: None,
            diagnostics: Vec::new(),
            stats: Stats::default(),
        }
    }

    /// Record for a fresh verification.
    pub fn from_verification(name: &str, v: &Verification) -> JobRecord {
        let (verdict, budget, ce) = match &v.verdict {
            Verdict::Holds => ("holds", None, None),
            Verdict::Violated(ce) => ("violated", None, Some((ce.steps.len(), ce.cycle_start))),
            Verdict::Unknown(b) => ("unknown", Some(budget_label(b)), None),
        };
        JobRecord {
            name: name.to_string(),
            verdict: verdict.to_string(),
            error: None,
            complete: v.complete,
            cached: false,
            budget,
            ce,
            diagnostics: Vec::new(),
            stats: v.stats.clone(),
        }
    }

    /// Record for a cache hit: verdict fields match the original run,
    /// search counters are zero (`stats.cores == 0` marks the hit), but
    /// the search profile is the one persisted from the original run.
    pub fn from_cached(name: &str, hit: &CachedResult) -> JobRecord {
        let (verdict, budget, ce) = match &hit.verdict {
            CachedVerdict::Holds => ("holds", None, None),
            CachedVerdict::Violated { steps, cycle_start, .. } => {
                ("violated", None, Some((*steps, *cycle_start)))
            }
            // going through `to_budget` + `budget_label` guarantees the
            // cached record's budget string byte-matches a fresh run's
            CachedVerdict::Unknown { budget } => {
                ("unknown", Some(budget_label(&budget.to_budget())), None)
            }
        };
        JobRecord {
            name: name.to_string(),
            verdict: verdict.to_string(),
            error: None,
            complete: hit.complete,
            cached: true,
            budget,
            ce,
            diagnostics: Vec::new(),
            stats: Stats { profile: hit.profile.clone(), ..Stats::default() },
        }
    }

    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::from(self.name.clone())),
            ("verdict", Json::from(self.verdict.clone())),
        ];
        if let Some(e) = &self.error {
            pairs.push(("error", Json::from(e.clone())));
        }
        if let Some(b) = &self.budget {
            pairs.push(("budget", Json::from(b.clone())));
        }
        if let Some((steps, cycle_start)) = self.ce {
            pairs.push(("ce_steps", Json::from(steps)));
            pairs.push(("ce_cycle_start", Json::from(cycle_start)));
        }
        pairs.push(("complete", Json::from(self.complete)));
        pairs.push(("cached", Json::from(self.cached)));
        pairs.push(("profile_source", Json::from(if self.cached { "cached" } else { "fresh" })));
        if !self.diagnostics.is_empty() {
            pairs.push((
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(DiagnosticRecord::to_json).collect()),
            ));
        }
        let profile = &self.stats.profile;
        let ms = |ns: u64| Json::from(ns as f64 / 1e6);
        let opt = |v: Option<f64>| v.map(Json::from).unwrap_or(Json::Null);
        pairs.push((
            "stats",
            Json::obj([
                ("elapsed_ms", Json::from(self.stats.elapsed.as_secs_f64() * 1e3)),
                ("configs", Json::from(self.stats.configs)),
                ("cores", Json::from(self.stats.cores)),
                ("assignments", Json::from(self.stats.assignments)),
                ("max_run_len", Json::from(self.stats.max_run_len)),
                ("max_trie", Json::from(self.stats.max_trie)),
                ("max_resident", Json::from(self.stats.max_resident)),
                ("max_spilled", Json::from(self.stats.max_spilled)),
                (
                    "profile",
                    Json::obj([
                        ("canon_ms", ms(profile.canon_ns)),
                        ("intern_ms", ms(profile.intern_ns)),
                        ("expand_ms", ms(profile.expand_ns)),
                        ("eval_ms", ms(profile.eval_ns)),
                        ("visit_ms", ms(profile.visit_ns)),
                        ("intern_hits", Json::from(profile.intern_hits)),
                        ("intern_misses", Json::from(profile.intern_misses)),
                        ("intern_hit_rate", opt(profile.intern_hit_rate())),
                        ("spill_pairs", Json::from(profile.spill_pairs)),
                        ("spill_segments", Json::from(profile.spill_segments)),
                        ("spill_compactions", Json::from(profile.spill_compactions)),
                        ("bloom_skips", Json::from(profile.bloom_skips)),
                        ("cold_probes", Json::from(profile.cold_probes)),
                        ("memo_hits", Json::from(profile.memo_hits)),
                        ("memo_misses", Json::from(profile.memo_misses)),
                        ("memo_hit_rate", opt(profile.memo_hit_rate())),
                        ("join_builds", Json::from(profile.join_builds)),
                        ("slice_rules_removed", Json::from(profile.slice_rules_removed)),
                        ("slice_relations_removed", Json::from(profile.slice_relations_removed)),
                        ("flow_dead_rules", Json::from(profile.flow_dead_rules)),
                        ("canon_pct", opt(profile.pct(profile.canon_ns))),
                        ("intern_pct", opt(profile.pct(profile.intern_ns))),
                        ("expand_pct", opt(profile.pct(profile.expand_ns))),
                        ("eval_pct", opt(profile.pct(profile.eval_ns))),
                        ("visit_pct", opt(profile.pct(profile.visit_ns))),
                    ]),
                ),
            ]),
        ));
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// The verification service.
pub struct VerifyService {
    popts: ParallelOptions,
    cache: Option<ResultCache>,
    metrics: Arc<SvcMetrics>,
}

impl VerifyService {
    pub fn new(config: ServiceConfig) -> io::Result<VerifyService> {
        let metrics = SvcMetrics::new();
        let cache_metrics = CacheMetrics {
            hits: Arc::clone(&metrics.cache_hits),
            misses: Arc::clone(&metrics.cache_misses),
            evictions: Arc::clone(&metrics.cache_evictions),
            persist_errors: Arc::clone(&metrics.cache_persist_errors_total),
        };
        let cache = if !config.use_cache {
            None
        } else {
            match config.cache_dir {
                Some(dir) => {
                    std::fs::create_dir_all(&dir)?;
                    if config.cache_gc_age.is_some() || config.cache_gc_bytes.is_some() {
                        gc_dir(&dir, config.cache_gc_age, config.cache_gc_bytes)?;
                    }
                    Some(
                        ResultCache::bounded(config.cache_mem_entries, Some(dir))
                            .with_metrics(cache_metrics),
                    )
                }
                None => Some(
                    ResultCache::bounded(config.cache_mem_entries, None)
                        .with_metrics(cache_metrics),
                ),
            }
        };
        let mut popts = ParallelOptions::with_jobs(config.jobs);
        popts.metrics = Some(Arc::clone(&metrics));
        Ok(VerifyService { popts, cache, metrics })
    }

    /// The service metrics bundle (shared with the scheduler and cache).
    pub fn metrics(&self) -> &Arc<SvcMetrics> {
        &self.metrics
    }

    /// Run one JSON job request, producing one record per property (a
    /// whole-suite job expands). Failures become `error` records, never
    /// panics or `Err` — batch processing continues past bad jobs.
    pub fn run_request(&self, request: &Json, default_name: &str) -> Vec<JobRecord> {
        match self.dispatch(request, default_name) {
            Ok(records) => records,
            Err(message) => vec![JobRecord::error(default_name, message)],
        }
    }

    fn dispatch(&self, request: &Json, default_name: &str) -> Result<Vec<JobRecord>, String> {
        if !matches!(request, Json::Obj(_)) {
            return Err("job must be a JSON object".to_string());
        }
        validate_keys(request)?;
        let options = parse_options(request.get("options"))?;
        let property = request
            .get("property")
            .map(|p| p.as_str().map(str::to_string).ok_or("\"property\" must be a string"));
        let property = match property {
            Some(p) => Some(p?),
            None => None,
        };

        if let Some(suite_name) = request.get("suite") {
            let suite_name = suite_name.as_str().ok_or("\"suite\" must be a string")?;
            let suite = lookup_suite(suite_name)
                .ok_or_else(|| format!("unknown suite {suite_name:?} (have E1–E4)"))?;
            return Ok(self.run_suite(&suite, property.as_deref(), options));
        }

        let (spec_text, origin) = if let Some(inline) = request.get("spec") {
            let text = inline.as_str().ok_or("\"spec\" must be a string")?;
            (text.to_string(), "inline spec".to_string())
        } else if let Some(path) = request.get("spec_path") {
            let path = path.as_str().ok_or("\"spec_path\" must be a string")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            (text, path.to_string())
        } else {
            return Err("job needs \"suite\", \"spec\", or \"spec_path\"".to_string());
        };
        let property = property.ok_or("jobs with \"spec\"/\"spec_path\" need a \"property\"")?;
        let name = match request.get("name") {
            Some(n) => n.as_str().ok_or("\"name\" must be a string")?.to_string(),
            None => default_name.to_string(),
        };
        let spec = parse_spec(&spec_text).map_err(|e| format!("{origin}: {e}"))?;
        let lint_req = wave_lint::LintRequest {
            spec_path: origin,
            spec_src: spec_text,
            properties: vec![wave_lint::PropertySource {
                label: "property".to_string(),
                text: property.clone(),
            }],
        };
        let mut record = self.check_one(&name, spec, &property, options);
        record.diagnostics = lint_records(&lint_req);
        Ok(vec![record])
    }

    /// Verify one (spec, property) pair, cache-aware.
    pub fn check_one(
        &self,
        name: &str,
        spec: Spec,
        property: &str,
        options: VerifyOptions,
    ) -> JobRecord {
        let canonical = print_spec(&spec);
        let key = fingerprint(&canonical, property, &options);
        if let Some(hit) = self.cache.as_ref().and_then(|c| c.get(&key)) {
            return JobRecord::from_cached(name, &hit);
        }
        let verifier = match Verifier::with_options(spec, options) {
            Ok(v) => v,
            Err(e) => return JobRecord::error(name, e),
        };
        let prop = match parse_property(property) {
            Ok(p) => p,
            Err(e) => return JobRecord::error(name, format!("property: {e}")),
        };
        self.metrics.checks_total.inc();
        self.metrics.checks_inflight.inc();
        let result = scheduler::check_parallel(&verifier, &prop, &self.popts);
        self.metrics.checks_inflight.dec();
        match result {
            Ok(v) => {
                self.store(&key, &v);
                JobRecord::from_verification(name, &v)
            }
            Err(e) => JobRecord::error(name, e),
        }
    }

    /// Verify a benchmark suite (or one of its properties), running all
    /// uncached properties concurrently on one worker pool.
    pub fn run_suite(
        &self,
        suite: &AppSuite,
        only: Option<&str>,
        options: VerifyOptions,
    ) -> Vec<JobRecord> {
        let cases: Vec<_> =
            suite.properties.iter().filter(|c| only.is_none_or(|p| c.name == p)).collect();
        if cases.is_empty() {
            let which = only.unwrap_or("<any>");
            return vec![JobRecord::error(
                &format!("{}/{which}", suite.name),
                format!("suite {} has no property {which:?}", suite.name),
            )];
        }
        // lint once against the full property suite (not just `only`): the
        // suite defines the spec's complete observable set, so dead-code
        // findings would be spurious against a single-property slice
        let lint_req = wave_lint::LintRequest {
            spec_path: suite.name.to_string(),
            spec_src: suite.source.to_string(),
            properties: suite
                .properties
                .iter()
                .map(|c| wave_lint::PropertySource {
                    label: format!("{}/{}", suite.name, c.name),
                    text: c.text.clone(),
                })
                .collect(),
        };
        let diagnostics = lint_records(&lint_req);
        let canonical = print_spec(&suite.spec);
        let mut records: Vec<Option<JobRecord>> = vec![None; cases.len()];
        let mut fresh: Vec<(usize, String)> = Vec::new(); // (case index, key)
        for (i, case) in cases.iter().enumerate() {
            let name = format!("{}/{}", suite.name, case.name);
            let key = fingerprint(&canonical, &case.text, &options);
            if let Some(hit) = self.cache.as_ref().and_then(|c| c.get(&key)) {
                records[i] = Some(JobRecord::from_cached(&name, &hit));
            } else {
                fresh.push((i, key));
            }
        }

        if !fresh.is_empty() {
            let verifier = match Verifier::with_options(suite.spec.clone(), options) {
                Ok(v) => v,
                Err(e) => {
                    // the spec failed to compile: every fresh case fails
                    for (i, _) in &fresh {
                        let name = format!("{}/{}", suite.name, cases[*i].name);
                        records[*i] = Some(JobRecord::error(&name, &e));
                    }
                    return records
                        .into_iter()
                        .map(|r| {
                            let mut r = r.unwrap();
                            r.diagnostics = diagnostics.clone();
                            r
                        })
                        .collect();
                }
            };
            // parse + prepare each property; parse failures become error
            // records and drop out of the scheduled set
            let mut scheduled: Vec<(usize, String)> = Vec::new();
            let mut prepared = Vec::new();
            for (i, key) in fresh {
                let name = format!("{}/{}", suite.name, cases[i].name);
                match parse_property(&cases[i].text)
                    .map_err(|e| format!("property: {e}"))
                    .and_then(|p| verifier.prepare(&p).map_err(|e| e.to_string()))
                {
                    Ok(p) => {
                        scheduled.push((i, key));
                        prepared.push(p);
                    }
                    Err(e) => records[i] = Some(JobRecord::error(&name, e)),
                }
            }
            self.metrics.checks_total.add(prepared.len() as u64);
            self.metrics.checks_inflight.add(prepared.len() as i64);
            let results = scheduler::run_prepared(verifier.options(), &prepared, &self.popts);
            self.metrics.checks_inflight.add(-(prepared.len() as i64));
            for ((i, key), result) in scheduled.into_iter().zip(results) {
                let name = format!("{}/{}", suite.name, cases[i].name);
                records[i] = Some(match result {
                    Ok(v) => {
                        self.store(&key, &v);
                        JobRecord::from_verification(&name, &v)
                    }
                    Err(e) => JobRecord::error(&name, e),
                });
            }
        }
        records
            .into_iter()
            .map(|r| {
                let mut r = r.unwrap();
                r.diagnostics = diagnostics.clone();
                r
            })
            .collect()
    }

    fn store(&self, key: &str, v: &Verification) {
        if let (Some(cache), Some(result)) =
            (self.cache.as_ref(), CachedResult::from_verification(v))
        {
            cache.put(key, &result);
        }
    }
}

/// The built-in benchmark suites, by case-insensitive name.
pub fn lookup_suite(name: &str) -> Option<AppSuite> {
    match name.to_ascii_uppercase().as_str() {
        "E1" => Some(wave_apps::e1::suite()),
        "E2" => Some(wave_apps::e2::suite()),
        "E3" => Some(wave_apps::e3::suite()),
        "E4" => Some(wave_apps::e4::suite()),
        _ => None,
    }
}

fn validate_keys(request: &Json) -> Result<(), String> {
    const KNOWN: [&str; 6] = ["suite", "spec", "spec_path", "property", "name", "options"];
    if let Json::Obj(pairs) = request {
        for (k, _) in pairs {
            if !KNOWN.contains(&k.as_str()) {
                return Err(format!("unknown job field {k:?}"));
            }
        }
    }
    Ok(())
}

/// Parse the per-job `options` object over the defaults.
pub fn parse_options(json: Option<&Json>) -> Result<VerifyOptions, String> {
    let mut options = VerifyOptions::default();
    let Some(json) = json else { return Ok(options) };
    let Json::Obj(pairs) = json else {
        return Err("\"options\" must be an object".to_string());
    };
    // tier knobs apply after the loop so they compose with
    // `"state_store":"tiered"` in either key order
    let mut store_mem_mb: Option<u64> = None;
    let mut spill_dir: Option<String> = None;
    for (key, value) in pairs {
        match key.as_str() {
            "max_steps" => {
                // u64_from_json also accepts the decimal-string form
                // emitted for values beyond 2^53
                options.max_steps = Some(
                    crate::cache::u64_from_json(value).ok_or("\"max_steps\" must be an integer")?,
                );
            }
            "time_limit_s" => {
                let secs = value.as_f64().ok_or("\"time_limit_s\" must be a number")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("\"time_limit_s\" must be positive".to_string());
                }
                options.time_limit = Some(std::time::Duration::from_secs_f64(secs));
            }
            // the exact form the fleet wire uses: integer nanoseconds
            // round-trip losslessly where f64 seconds cannot
            "time_limit_ns" => {
                let ns = crate::cache::u64_from_json(value)
                    .ok_or("\"time_limit_ns\" must be an integer")?;
                if ns == 0 {
                    return Err("\"time_limit_ns\" must be positive".to_string());
                }
                options.time_limit = Some(std::time::Duration::from_nanos(ns));
            }
            "pruning" => {
                options.pruning = match value.as_str() {
                    Some("paper_strict") => wave_core::ExtensionPruning::PaperStrict,
                    Some("option_support") => wave_core::ExtensionPruning::OptionSupport,
                    _ => {
                        return Err("\"pruning\" must be \"paper_strict\" or \"option_support\""
                            .to_string())
                    }
                };
            }
            "param_mode" => {
                options.param_mode =
                    match value.as_str() {
                        Some("distinct_fresh") => wave_core::ParamMode::DistinctFresh,
                        Some("exhaustive_equality") => wave_core::ParamMode::ExhaustiveEquality,
                        _ => return Err(
                            "\"param_mode\" must be \"distinct_fresh\" or \"exhaustive_equality\""
                                .to_string(),
                        ),
                    };
            }
            "budget_chunk" => {
                let n = value.as_u64().ok_or("\"budget_chunk\" must be an integer")?;
                if n == 0 {
                    return Err("\"budget_chunk\" must be at least 1".to_string());
                }
                options.budget_chunk = n;
            }
            "heuristic1" => {
                options.heuristic1 = value.as_bool().ok_or("\"heuristic1\" must be a boolean")?;
            }
            "heuristic2" => {
                options.heuristic2 = value.as_bool().ok_or("\"heuristic2\" must be a boolean")?;
            }
            "use_plans" => {
                options.use_plans = value.as_bool().ok_or("\"use_plans\" must be a boolean")?;
            }
            "naive_joins" => {
                options.naive_joins = value.as_bool().ok_or("\"naive_joins\" must be a boolean")?;
            }
            "slice" => {
                options.slice = value.as_bool().ok_or("\"slice\" must be a boolean")?;
            }
            "state_store" => {
                options.state_store =
                    match value.as_str() {
                        Some("interned") => wave_core::StateStoreKind::Interned,
                        Some("byte_keys") => wave_core::StateStoreKind::ByteKeys,
                        Some("tiered") => {
                            wave_core::StateStoreKind::Tiered(wave_core::TierParams::default())
                        }
                        _ => return Err(
                            "\"state_store\" must be \"interned\", \"byte_keys\", or \"tiered\""
                                .to_string(),
                        ),
                    };
            }
            "store_mem_mb" => {
                store_mem_mb = Some(value.as_u64().ok_or("\"store_mem_mb\" must be an integer")?);
            }
            "spill_dir" => {
                spill_dir =
                    Some(value.as_str().ok_or("\"spill_dir\" must be a string")?.to_string());
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if store_mem_mb.is_some() || spill_dir.is_some() {
        let wave_core::StateStoreKind::Tiered(params) = &mut options.state_store else {
            return Err(
                "\"store_mem_mb\"/\"spill_dir\" require \"state_store\": \"tiered\"".to_string()
            );
        };
        if let Some(mb) = store_mem_mb {
            params.mem_bytes = mb << 20;
        }
        if let Some(dir) = spill_dir {
            params.spill_dir = Some(PathBuf::from(dir));
        }
    }
    Ok(options)
}

/// Render [`VerifyOptions`] as a job-`options` object that
/// [`parse_options`] reads back to the same options (the cancellation
/// token, which is scheduling state, excluded). The fleet dispatcher
/// ships options to workers in this form; time limits go as exact
/// integer nanoseconds so the worker's budget arithmetic matches the
/// dispatcher's bit-for-bit.
pub fn options_to_json(options: &VerifyOptions) -> Json {
    let mut pairs = Vec::new();
    if let Some(n) = options.max_steps {
        pairs.push(("max_steps", crate::cache::u64_to_json(n)));
    }
    if let Some(d) = options.time_limit {
        pairs.push(("time_limit_ns", crate::cache::u64_to_json(d.as_nanos() as u64)));
    }
    pairs.push(("budget_chunk", crate::cache::u64_to_json(options.budget_chunk)));
    pairs.push(("heuristic1", Json::from(options.heuristic1)));
    pairs.push(("heuristic2", Json::from(options.heuristic2)));
    pairs.push(("use_plans", Json::from(options.use_plans)));
    pairs.push(("naive_joins", Json::from(options.naive_joins)));
    pairs.push(("slice", Json::from(options.slice)));
    pairs.push((
        "pruning",
        Json::from(match options.pruning {
            wave_core::ExtensionPruning::PaperStrict => "paper_strict",
            wave_core::ExtensionPruning::OptionSupport => "option_support",
        }),
    ));
    pairs.push((
        "param_mode",
        Json::from(match options.param_mode {
            wave_core::ParamMode::DistinctFresh => "distinct_fresh",
            wave_core::ParamMode::ExhaustiveEquality => "exhaustive_equality",
        }),
    ));
    match &options.state_store {
        wave_core::StateStoreKind::Interned => {
            pairs.push(("state_store", Json::from("interned")));
        }
        wave_core::StateStoreKind::ByteKeys => {
            pairs.push(("state_store", Json::from("byte_keys")));
        }
        wave_core::StateStoreKind::Tiered(params) => {
            pairs.push(("state_store", Json::from("tiered")));
            pairs.push(("store_mem_mb", crate::cache::u64_to_json(params.mem_bytes >> 20)));
            if let Some(dir) = &params.spill_dir {
                pairs.push(("spill_dir", Json::from(dir.display().to_string())));
            }
        }
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn service() -> VerifyService {
        VerifyService::new(ServiceConfig { jobs: 2, ..ServiceConfig::default() }).unwrap()
    }

    const MINI: &str = r#"
        spec mini {
          inputs { button(x); }
          home A;
          page A {
            inputs { button }
            options button(x) <- x = "go";
            target B <- button("go");
          }
          page B { target A <- true; }
        }
    "#;

    #[test]
    fn inline_spec_job_verifies() {
        let request =
            Json::obj([("spec", Json::from(MINI)), ("property", Json::from("G (@B -> X @A)"))]);
        let records = service().run_request(&request, "job-0");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].verdict, "holds");
        assert!(records[0].complete);
        assert!(!records[0].cached);
    }

    #[test]
    fn second_run_hits_the_cache() {
        let svc = service();
        let request = Json::obj([("spec", Json::from(MINI)), ("property", Json::from("G !@B"))]);
        let first = svc.run_request(&request, "a");
        assert_eq!(first[0].verdict, "violated");
        assert!(!first[0].cached);
        let second = svc.run_request(&request, "b");
        assert_eq!(second[0].verdict, "violated");
        assert!(second[0].cached, "second run must be served from cache");
        assert_eq!(second[0].stats.cores, 0, "cache hits do no search");
        assert_eq!(second[0].ce, first[0].ce, "lasso shape survives the cache");
    }

    #[test]
    fn cache_hits_return_the_original_profile() {
        let svc = service();
        let request = Json::obj([("spec", Json::from(MINI)), ("property", Json::from("F @B"))]);
        let fresh = &svc.run_request(&request, "a")[0];
        assert!(!fresh.cached);
        assert!(
            fresh.stats.profile.intern_misses > 0,
            "a real search interns configurations: {:?}",
            fresh.stats.profile
        );
        let json = fresh.to_json();
        assert_eq!(json.get("profile_source").unwrap().as_str(), Some("fresh"));
        let profile = json.get("stats").unwrap().get("profile").unwrap();
        for field in ["canon_ms", "intern_ms", "expand_ms", "eval_ms", "visit_ms"] {
            assert!(profile.get(field).unwrap().as_f64().is_some(), "{field} missing");
        }

        let hit = &svc.run_request(&request, "b")[0];
        assert!(hit.cached);
        assert_eq!(
            hit.stats.profile, fresh.stats.profile,
            "cache hits report the profile persisted from the original run"
        );
        assert_eq!(hit.stats.cores, 0, "…but the hit itself does no search");
        let json = hit.to_json();
        assert_eq!(json.get("profile_source").unwrap().as_str(), Some("cached"));
        let profile = json.get("stats").unwrap().get("profile").unwrap();
        assert_eq!(
            profile.get("intern_misses").unwrap().as_u64(),
            Some(fresh.stats.profile.intern_misses)
        );
    }

    #[test]
    fn profile_json_derives_hit_rate_and_percentages() {
        let svc = service();
        let request = Json::obj([("spec", Json::from(MINI)), ("property", Json::from("F @B"))]);
        let record = &svc.run_request(&request, "a")[0];
        let json = record.to_json();
        let profile = json.get("stats").unwrap().get("profile").unwrap();
        let p = &record.stats.profile;
        let rate = profile.get("intern_hit_rate").unwrap().as_f64().unwrap();
        assert!((rate - p.intern_hit_rate().unwrap()).abs() < 1e-12);
        let mut pct_sum = 0.0;
        for field in ["intern_pct", "expand_pct", "eval_pct", "visit_pct"] {
            pct_sum += profile.get(field).unwrap().as_f64().unwrap();
        }
        assert!((pct_sum - 100.0).abs() < 1e-6, "disjoint phases sum to 100%: {pct_sum}");

        // a zeroed profile renders the derived fields as null
        let empty = JobRecord::error("e", "boom").to_json();
        let profile = empty.get("stats").unwrap().get("profile").unwrap();
        assert_eq!(profile.get("intern_hit_rate"), Some(&Json::Null));
        assert_eq!(profile.get("expand_pct"), Some(&Json::Null));
    }

    #[test]
    fn service_metrics_move_with_checks() {
        let svc = service();
        let request = Json::obj([("spec", Json::from(MINI)), ("property", Json::from("G !@B"))]);
        svc.run_request(&request, "a");
        let m = svc.metrics();
        assert_eq!(m.checks_total.get(), 1);
        assert_eq!(m.checks_inflight.get(), 0);
        assert_eq!(m.cache_misses.get(), 1);
        assert_eq!(m.cache_hits.get(), 0);
        svc.run_request(&request, "b");
        assert_eq!(m.checks_total.get(), 1, "cache hits start no check");
        assert_eq!(m.cache_hits.get(), 1);
        assert!(m.unit_latency_ns.count() > 0, "scheduler observed unit latencies");
    }

    #[test]
    fn state_store_option_parses_and_shares_cache_entries() {
        let opts =
            parse_options(Some(&json::parse(r#"{"state_store":"byte_keys"}"#).unwrap())).unwrap();
        assert_eq!(opts.state_store, wave_core::StateStoreKind::ByteKeys);
        assert!(parse_options(Some(&json::parse(r#"{"state_store":"x"}"#).unwrap())).is_err());

        // a result computed under one backend is served to the other
        let svc = service();
        let request = Json::obj([("spec", Json::from(MINI)), ("property", Json::from("G !@B"))]);
        let first = &svc.run_request(&request, "a")[0];
        assert!(!first.cached);
        let request = Json::obj([
            ("spec", Json::from(MINI)),
            ("property", Json::from("G !@B")),
            ("options", json::parse(r#"{"state_store":"byte_keys"}"#).unwrap()),
        ]);
        let second = &svc.run_request(&request, "b")[0];
        assert!(second.cached, "backends share cache entries");
    }

    #[test]
    fn tiered_store_options_parse_and_run() {
        // knob composition works in either key order
        let opts = parse_options(Some(
            &json::parse(r#"{"store_mem_mb":8,"state_store":"tiered","spill_dir":"/tmp/sp"}"#)
                .unwrap(),
        ))
        .unwrap();
        let wave_core::StateStoreKind::Tiered(params) = &opts.state_store else {
            panic!("expected tiered, got {:?}", opts.state_store)
        };
        assert_eq!(params.mem_bytes, 8 << 20);
        assert_eq!(params.spill_dir.as_deref(), Some(std::path::Path::new("/tmp/sp")));

        // tier knobs without the tiered backend are rejected
        let err = parse_options(Some(&json::parse(r#"{"store_mem_mb":8}"#).unwrap())).unwrap_err();
        assert!(err.contains("tiered"), "{err}");

        // bare "tiered" takes the default budget
        let opts =
            parse_options(Some(&json::parse(r#"{"state_store":"tiered"}"#).unwrap())).unwrap();
        assert_eq!(
            opts.state_store,
            wave_core::StateStoreKind::Tiered(wave_core::TierParams::default())
        );

        // a forced-spill run completes, reports the tier split in JSON,
        // and feeds the spill metrics
        let svc = service();
        let request = Json::obj([
            ("spec", Json::from(MINI)),
            ("property", Json::from("G (@B -> X @A)")),
            ("options", json::parse(r#"{"state_store":"tiered","store_mem_mb":0}"#).unwrap()),
        ]);
        let record = &svc.run_request(&request, "t")[0];
        assert_eq!(record.verdict, "holds");
        let json = record.to_json();
        let stats = json.get("stats").unwrap();
        assert!(stats.get("max_resident").unwrap().as_u64().is_some());
        assert!(stats.get("max_spilled").unwrap().as_u64().is_some());
        let profile = stats.get("profile").unwrap();
        for field in
            ["spill_pairs", "spill_segments", "spill_compactions", "bloom_skips", "cold_probes"]
        {
            assert!(profile.get(field).unwrap().as_u64().is_some(), "{field} missing");
        }
        let m = svc.metrics();
        assert_eq!(
            m.spill_pairs_total.get() > 0,
            record.stats.profile.spill_pairs > 0,
            "scheduler feeds spill metrics exactly when the search spilled"
        );
    }

    #[test]
    fn tiered_backend_shares_cache_entries() {
        let svc = service();
        let request = Json::obj([("spec", Json::from(MINI)), ("property", Json::from("G !@B"))]);
        let first = &svc.run_request(&request, "a")[0];
        assert!(!first.cached);
        let request = Json::obj([
            ("spec", Json::from(MINI)),
            ("property", Json::from("G !@B")),
            ("options", json::parse(r#"{"state_store":"tiered","store_mem_mb":4}"#).unwrap()),
        ]);
        let second = &svc.run_request(&request, "b")[0];
        assert!(second.cached, "the tiered backend is semantics-neutral: shared entry");
    }

    #[test]
    fn bad_jobs_become_error_records() {
        let svc = service();
        for (request, needle) in [
            (json::parse(r#"{"frobnicate":1}"#).unwrap(), "unknown job field"),
            (json::parse(r#"{"suite":"E9"}"#).unwrap(), "unknown suite"),
            (json::parse(r#"{"spec":"nonsense"}"#).unwrap(), "need a \"property\""),
            (json::parse(r#"[1]"#).unwrap(), "must be a JSON object"),
            (
                json::parse(r#"{"spec":"spec x {}","property":"G p","options":{"bogus":1}}"#)
                    .unwrap(),
                "unknown option",
            ),
        ] {
            let records = svc.run_request(&request, "j");
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].verdict, "error", "{request}");
            assert!(
                records[0].error.as_deref().unwrap().contains(needle),
                "{:?} should mention {needle:?}",
                records[0].error
            );
        }
    }

    #[test]
    fn lint_findings_ride_in_the_record() {
        // MINI with an unreachable page and a property reading nothing
        const DIRTY: &str = r#"
            spec dirty {
              inputs { button(x); }
              home A;
              page A {
                inputs { button }
                options button(x) <- x = "go";
                target B <- button("go");
              }
              page B { target A <- true; }
              page C {
                inputs { button }
                options button(x) <- x = "go";
                target A <- button("go");
              }
            }
        "#;
        let svc = service();
        let request =
            Json::obj([("spec", Json::from(DIRTY)), ("property", Json::from("G (@B -> X @A)"))]);
        let record = &svc.run_request(&request, "job-0")[0];
        assert_eq!(record.verdict, "holds");
        assert_eq!(record.diagnostics.len(), 1, "{:?}", record.diagnostics);
        let d = &record.diagnostics[0];
        assert_eq!(d.code, "W0201");
        assert_eq!(d.severity, "warning");
        assert_eq!(d.file, "inline spec");
        assert!(d.pos.is_some(), "W0201 carries a source span");
        let json = record.to_json();
        let diags = json.get("diagnostics").expect("diagnostics field").as_array().unwrap();
        assert_eq!(diags[0].get("code").unwrap().as_str(), Some("W0201"));
        assert_eq!(crate::json::parse(&json.to_string()).unwrap(), json, "round-trips");

        // cache hits recompute lint: findings never disappear on the hit
        let hit = &svc.run_request(&request, "job-1")[0];
        assert!(hit.cached);
        assert_eq!(hit.diagnostics, record.diagnostics);

        // a clean job's record omits the field entirely
        let clean =
            Json::obj([("spec", Json::from(MINI)), ("property", Json::from("G (@B -> X @A)"))]);
        let record = &svc.run_request(&clean, "job-2")[0];
        assert!(record.diagnostics.is_empty());
        assert!(record.to_json().get("diagnostics").is_none());
    }

    #[test]
    fn suite_records_lint_against_the_whole_property_suite() {
        // E1 has observables modeled for fidelity to the paper's app that
        // no property of the suite reads — those (and only those) surface
        // as W0301; single-property slices still lint against the full
        // suite so the findings don't depend on which slice ran
        let svc = service();
        let suite = lookup_suite("E2").unwrap();
        let records = svc.run_suite(&suite, Some("P1"), VerifyOptions::default());
        assert_eq!(records.len(), 1);
        for d in &records[0].diagnostics {
            assert_eq!(d.severity, "warning", "suites must carry no lint errors: {d:?}");
        }
    }

    #[test]
    fn record_json_shape() {
        let request = Json::obj([
            ("spec", Json::from(MINI)),
            ("property", Json::from("F @B")),
            ("name", Json::from("demo")),
        ]);
        let record = &service().run_request(&request, "x")[0];
        let json = record.to_json();
        assert_eq!(json.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(json.get("verdict").unwrap().as_str(), Some("violated"));
        assert!(json.get("ce_steps").unwrap().as_u64().is_some());
        assert!(json.get("stats").unwrap().get("cores").unwrap().as_u64().unwrap() > 0);
        // render + reparse round-trips
        assert_eq!(json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn options_json_round_trips() {
        // every semantic field set away from its default
        let opts = VerifyOptions {
            max_steps: Some(u64::MAX - 3),
            time_limit: Some(std::time::Duration::new(3, 123_456_789)),
            budget_chunk: 7,
            heuristic1: false,
            heuristic2: false,
            use_plans: false,
            naive_joins: true,
            slice: false,
            pruning: wave_core::ExtensionPruning::PaperStrict,
            param_mode: wave_core::ParamMode::ExhaustiveEquality,
            state_store: wave_core::StateStoreKind::Tiered(wave_core::TierParams {
                mem_bytes: 8 << 20,
                spill_dir: Some(PathBuf::from("/tmp/sp")),
            }),
            ..Default::default()
        };
        let back = parse_options(Some(&options_to_json(&opts))).unwrap();
        // VerifyOptions carries no PartialEq (the cancel token); Debug
        // covers every field we care about
        assert_eq!(format!("{opts:?}"), format!("{back:?}"));
        // and the rendered JSON itself survives print → parse
        let json = options_to_json(&opts);
        assert_eq!(json::parse(&json.to_string()).unwrap(), json);

        // defaults round-trip too
        let opts = VerifyOptions::default();
        let back = parse_options(Some(&options_to_json(&opts))).unwrap();
        assert_eq!(format!("{opts:?}"), format!("{back:?}"));
    }

    #[test]
    fn exact_time_limit_and_enum_options_parse() {
        let opts = parse_options(Some(
            &json::parse(
                r#"{"time_limit_ns":1500000001,"pruning":"paper_strict","param_mode":"exhaustive_equality"}"#,
            )
            .unwrap(),
        ))
        .unwrap();
        assert_eq!(opts.time_limit, Some(std::time::Duration::from_nanos(1_500_000_001)));
        assert_eq!(opts.pruning, wave_core::ExtensionPruning::PaperStrict);
        assert_eq!(opts.param_mode, wave_core::ParamMode::ExhaustiveEquality);
        assert!(parse_options(Some(&json::parse(r#"{"pruning":"x"}"#).unwrap())).is_err());
        assert!(parse_options(Some(&json::parse(r#"{"param_mode":"x"}"#).unwrap())).is_err());
        assert!(parse_options(Some(&json::parse(r#"{"time_limit_ns":0}"#).unwrap())).is_err());
    }

    #[test]
    fn options_parse_and_reject() {
        let opts = parse_options(Some(
            &json::parse(r#"{"max_steps":50,"heuristic2":false,"time_limit_s":0.5}"#).unwrap(),
        ))
        .unwrap();
        assert_eq!(opts.max_steps, Some(50));
        assert!(!opts.heuristic2);
        assert_eq!(opts.time_limit, Some(std::time::Duration::from_millis(500)));
        assert!(parse_options(Some(&json::parse(r#"{"max_steps":-1}"#).unwrap())).is_err());
    }
}
