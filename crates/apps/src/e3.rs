//! E3 — an airline reservation site similar to part of the Expedia site
//! (the paper's third experimental setup): 22 pages, 12 database tables
//! with arities up to 10, 11 state tables with arities up to 5, one
//! arity-1 action table. Fourteen properties covering all ten types, as
//! the paper reports.

use crate::suite::{AppSuite, PropCase, PropType};
use wave_spec::{parse_spec, Spec};

/// DSL source of the E3 specification.
pub const E3_SOURCE: &str = include_str!("../specs/e3_airline.wave");

/// Parse the E3 specification.
pub fn spec() -> Spec {
    parse_spec(E3_SOURCE).expect("E3 spec parses")
}

/// The 14-property suite for E3.
pub fn properties() -> Vec<PropCase> {
    vec![
        PropCase {
            name: "R1",
            ptype: PropType::Guarantee,
            holds: true,
            text: "F @HP".into(),
            comment: "The home page is eventually reached in all runs.",
        },
        PropCase {
            name: "R2",
            ptype: PropType::Sequence,
            holds: true,
            text: "forall f: (exists p: flightsel(f, p)) B booked(f)".into(),
            comment: "A flight can only be booked after it was selected from \
                      the flight list.",
        },
        PropCase {
            name: "R3",
            ptype: PropType::Sequence,
            holds: true,
            text: "(exists o, d, t: tripsearch(o, d, t)) B @FLP".into(),
            comment: "The flight list can only follow a trip search.",
        },
        PropCase {
            name: "R4",
            ptype: PropType::Response,
            holds: true,
            text: r#"button("register") -> F @RGP"#.into(),
            comment: "Registering at the start leads to the registration page.",
        },
        PropCase {
            name: "R5",
            ptype: PropType::Response,
            holds: false,
            text: r#"button("support") -> F @CP"#.into(),
            comment: "Opening the support page does not imply logging in.",
        },
        PropCase {
            name: "R6",
            ptype: PropType::Session,
            holds: true,
            text: "(G (exists x: button(x))) -> G (@MIP -> F @CP)".into(),
            comment: "If the user always clicks, the miles page (whose only \
                      link is back) always returns to the customer page.",
        },
        PropCase {
            name: "R7",
            ptype: PropType::Session,
            holds: false,
            text: "(G (exists x: button(x))) -> F @BCP".into(),
            comment: "Always clicking does not force completing a booking.",
        },
        PropCase {
            name: "R8",
            ptype: PropType::Correlation,
            holds: true,
            text: "forall f, p: (F paydone(f, p, c, n, a)) -> F flightpick(f, p)".into(),
            comment: "Payment is recorded only for picked flights (c, n, a \
                      universally closed by the prefix).",
        },
        PropCase {
            name: "R9",
            ptype: PropType::Correlation,
            holds: false,
            text: "forall f, p: (F flightpick(f, p)) -> F (exists c, n, a: paydone(f, p, c, n, a))"
                .into(),
            comment: "Picking a flight does not imply paying for it.",
        },
        PropCase {
            name: "R10",
            ptype: PropType::Reachability,
            holds: false,
            text: "(G @HP) | (F @BCP)".into(),
            comment: "Runs may wander without ever completing a booking.",
        },
        PropCase {
            name: "R11",
            ptype: PropType::Recurrence,
            holds: false,
            text: "G (F @CP)".into(),
            comment: "The customer page need not recur forever.",
        },
        PropCase {
            name: "R12",
            ptype: PropType::StrongNonProgress,
            holds: false,
            text: "F (G @EP)".into(),
            comment: "No run is trapped on the error page forever.",
        },
        PropCase {
            name: "R13",
            ptype: PropType::WeakNonProgress,
            holds: true,
            text: "forall p: G (promoused(p) -> X promoused(p))".into(),
            comment: "A promo code, once applied, stays applied.",
        },
        PropCase {
            name: "R14",
            ptype: PropType::Invariance,
            holds: true,
            text: "G (@PYP -> X (@PYP | @BCP | @CP))".into(),
            comment: "From the payment page, only confirmation, cancel, or \
                      staying put are possible.",
        },
    ]
}

/// The full E3 suite.
pub fn suite() -> AppSuite {
    AppSuite {
        name: "E3 airline reservation",
        spec: spec(),
        source: E3_SOURCE,
        properties: properties(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_the_papers_inventory() {
        let s = spec();
        assert!(s.validate().is_ok(), "{:?}", s.validate());
        assert_eq!(s.pages.len(), 22, "paper: 22 pages");
        assert_eq!(s.database.len(), 12, "paper: 12 database tables");
        assert_eq!(s.database.iter().map(|&(_, a)| a).max(), Some(10), "paper: arities up to 10");
        assert_eq!(s.states.len(), 11, "paper: 11 state tables");
        assert_eq!(s.states.iter().map(|&(_, a)| a).max(), Some(5), "paper: state arities up to 5");
        assert_eq!(s.actions, vec![("booked".to_string(), 1)], "paper: one arity-1 action");
        let consts = s.all_constants();
        assert!(
            (22..=35).contains(&consts.len()),
            "paper: 31 constants; ours: {} ({consts:?})",
            consts.len()
        );
    }

    #[test]
    fn spec_is_input_bounded() {
        let compiled = wave_spec::CompiledSpec::compile(spec()).unwrap();
        assert!(compiled.is_input_bounded(), "{:?}", compiled.ib_report);
    }

    #[test]
    fn all_properties_parse_and_cover_all_types() {
        let props = properties();
        assert_eq!(props.len(), 14, "paper: 14 properties for E3");
        for p in &props {
            assert!(wave_ltl::parse_property(&p.text).is_ok(), "{} fails to parse", p.name);
        }
        for t in PropType::ALL {
            assert!(props.iter().any(|p| p.ptype == t), "missing type {t:?}");
        }
    }
}
