//! E2 — the Motorcycle Grand Prix sports site (the paper's second
//! experimental setup): 15 pages, 7 database relations, no state or action
//! relations. Thirteen properties covering all ten property types, as the
//! paper reports ("We verified 13 properties on this specification, again
//! covering all types").

use crate::suite::{AppSuite, PropCase, PropType};
use wave_spec::{parse_spec, Spec};

/// DSL source of the E2 specification.
pub const E2_SOURCE: &str = include_str!("../specs/e2_motogp.wave");

/// Parse the E2 specification.
pub fn spec() -> Spec {
    parse_spec(E2_SOURCE).expect("E2 spec parses")
}

/// The 13-property suite for E2.
pub fn properties() -> Vec<PropCase> {
    vec![
        PropCase {
            name: "Q1",
            ptype: PropType::Guarantee,
            holds: true,
            text: "F @HP".into(),
            comment: "The home page is eventually reached in all runs.",
        },
        PropCase {
            name: "Q2",
            ptype: PropType::Sequence,
            holds: true,
            text: r#"((@GP & clickbutton("circuits"))
                     | (@GDP & (exists cid: pick_circuit(cid)))) B @CDP"#
                .into(),
            comment: "The paper's illustrated E2 property: if the circuit \
                      detail page is reached, the grand prix page with the \
                      circuits button, or the grand prix detail page with a \
                      circuit pick, must have come first.",
        },
        PropCase {
            name: "Q3",
            ptype: PropType::Invariance,
            holds: true,
            text: "G (@HP -> X (@HP | @TLP | @PLP | @GP | @NLP | @SMP))".into(),
            comment: "From home, only the five sections (or staying) follow.",
        },
        PropCase {
            name: "Q4",
            ptype: PropType::Response,
            holds: false,
            text: r#"clickbutton("teams") -> F @TDP"#.into(),
            comment: "Listing the teams does not force viewing any detail.",
        },
        PropCase {
            name: "Q5",
            ptype: PropType::Correlation,
            holds: true,
            text: "(F @TDP) -> F (exists t: pick_team(t))".into(),
            comment: "The team detail page is reachable only by picking a \
                      team from the list.",
        },
        PropCase {
            name: "Q6",
            ptype: PropType::Correlation,
            holds: false,
            text: "(F @TLP) -> F @PLP".into(),
            comment: "Browsing teams does not imply browsing pilots.",
        },
        PropCase {
            name: "Q7",
            ptype: PropType::Session,
            holds: true,
            text: "(G (exists x: clickbutton(x))) -> G (@NDP -> F @NLP)".into(),
            comment: "If the user always clicks a link, every news detail \
                      view returns to the news list (its only link).",
        },
        PropCase {
            name: "Q8",
            ptype: PropType::Session,
            holds: false,
            text: "(G (exists x: clickbutton(x))) -> F @RSP".into(),
            comment: "Always clicking does not force visiting the results.",
        },
        PropCase {
            name: "Q9",
            ptype: PropType::Reachability,
            holds: false,
            text: "(G @HP) | (F @SMP)".into(),
            comment: "Runs may leave home and never open the site map.",
        },
        PropCase {
            name: "Q10",
            ptype: PropType::Recurrence,
            holds: false,
            text: "G (F @HP)".into(),
            comment: "Runs need not return home infinitely often.",
        },
        PropCase {
            name: "Q11",
            ptype: PropType::StrongNonProgress,
            holds: false,
            text: "F (G @NLP)".into(),
            comment: "No run is forced to settle on the news list forever.",
        },
        PropCase {
            name: "Q12",
            ptype: PropType::WeakNonProgress,
            holds: true,
            text: r#"G (news("n1", "headline") -> X news("n1", "headline"))"#.into(),
            comment: "The database is fixed during a run: a news fact never \
                      disappears.",
        },
        PropCase {
            name: "Q13",
            ptype: PropType::Guarantee,
            holds: false,
            text: "F @GDP".into(),
            comment: "Not every run opens a grand prix detail page.",
        },
    ]
}

/// The full E2 suite.
pub fn suite() -> AppSuite {
    AppSuite {
        name: "E2 MotoGP browsing",
        spec: spec(),
        source: E2_SOURCE,
        properties: properties(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_the_papers_inventory() {
        let s = spec();
        assert!(s.validate().is_ok(), "{:?}", s.validate());
        assert_eq!(s.pages.len(), 15, "paper: 15 page schemas");
        assert_eq!(s.database.len(), 7, "paper: 7 database relations");
        assert!(s.states.is_empty(), "paper: no state relations");
        assert!(s.actions.is_empty(), "paper: no action relations");
    }

    #[test]
    fn spec_is_input_bounded() {
        let compiled = wave_spec::CompiledSpec::compile(spec()).unwrap();
        assert!(compiled.is_input_bounded(), "{:?}", compiled.ib_report);
    }

    #[test]
    fn all_properties_parse_and_cover_all_types() {
        let props = properties();
        assert_eq!(props.len(), 13, "paper: 13 properties for E2");
        for p in &props {
            assert!(wave_ltl::parse_property(&p.text).is_ok(), "{} fails to parse", p.name);
        }
        for t in PropType::ALL {
            assert!(props.iter().any(|p| p.ptype == t), "missing type {t:?}");
        }
    }
}
