//! E1 — the online computer shopping application (the paper's running
//! example and first experimental setup), with the 17-property suite of
//! the Section 5 results table.
//!
//! The specification lives in `specs/e1_shop.wave`; page `LSP` is
//! transliterated from the paper's Example 2.1 verbatim. Properties cover
//! all ten property types T1–T10 with the truth values of the paper's E1
//! table (which properties hold and which fail).

use crate::suite::{AppSuite, PropCase, PropType};
use wave_spec::{parse_spec, Spec};

/// DSL source of the E1 specification.
pub const E1_SOURCE: &str = include_str!("../specs/e1_shop.wave");

/// Parse the E1 specification.
pub fn spec() -> Spec {
    parse_spec(E1_SOURCE).expect("E1 spec parses")
}

/// The 17-property suite of the paper's E1 experiment.
pub fn properties() -> Vec<PropCase> {
    vec![
        PropCase {
            name: "P1",
            ptype: PropType::Guarantee,
            holds: true,
            text: "F @HP".into(),
            comment: "The home page is eventually reached in all runs — the \
                      paper's minimum yardstick (it is the start page, so \
                      pseudoruns of length 1 suffice).",
        },
        PropCase {
            name: "P2",
            ptype: PropType::Response,
            holds: true,
            text: r#"button("register") -> F @RP"#.into(),
            comment: "Clicking register on the first page leads to the \
                      registration page.",
        },
        PropCase {
            name: "P3",
            ptype: PropType::Response,
            holds: false,
            text: r#"button("help") -> F @CP"#.into(),
            comment: "Asking for help does not guarantee ever reaching the \
                      customer page (the user may never log in).",
        },
        PropCase {
            name: "P4",
            ptype: PropType::Invariance,
            holds: true,
            text: p4_successor_uniqueness(),
            comment: "At each step there can be no two distinct successor \
                      pages: per page, the next page is among its declared \
                      successors. Chosen (like the paper's P4) for its size, \
                      to study the impact of the property automaton.",
        },
        PropCase {
            name: "P5",
            ptype: PropType::Sequence,
            holds: true,
            text: r#"forall pid, category, pname, ram, hdd, display, price:
                (@UPP & button("submit") & cart(pid, price)
                 & products(pid, category, pname, ram, hdd, display, price))
                B conf(pid, category, pname, ram, hdd, display, price)"#
                .into(),
            comment: "Property (1) of the paper: any confirmed product was \
                      previously (or simultaneously) paid for, in the right \
                      amount, from the cart.",
        },
        PropCase {
            name: "P6",
            ptype: PropType::StrongNonProgress,
            holds: false,
            text: "F (G @HP)".into(),
            comment: "Not every run eventually stays home forever.",
        },
        PropCase {
            name: "P7",
            ptype: PropType::Sequence,
            holds: true,
            text: r#"forall oid, owner, pid, price, status:
                orders_db(oid, owner, pid, price, "ordered")
                B (@CCP & orderpick(oid, pid, price, status))"#
                .into(),
            comment: "The paper's P7: an order must have status \"ordered\" \
                      before it can be cancelled (the cancel pick is recorded \
                      in the orderpick state, read on page CCP).",
        },
        PropCase {
            name: "P8",
            ptype: PropType::Guarantee,
            holds: false,
            text: "F @CP".into(),
            comment: "Not every run logs in.",
        },
        PropCase {
            name: "P9",
            ptype: PropType::Session,
            holds: true,
            text: "(G (@EP -> (exists x: button(x))))
                   -> G (G (!@EP) | F (@EP & F @HP))"
                .into(),
            comment: "The paper's P9: if the user always clicks a link on \
                      the error page, then whenever EP is reached, HP is \
                      eventually reached as well (EP's only link leads home).",
        },
        PropCase {
            name: "P10",
            ptype: PropType::WeakNonProgress,
            holds: true,
            text: "G (helpseen() -> X helpseen())".into(),
            comment: "The helpseen flag is never retracted once set.",
        },
        PropCase {
            name: "P11",
            ptype: PropType::Session,
            holds: false,
            text: "(G (exists x: button(x))) -> F @CP".into(),
            comment: "Always clicking something does not force a login \
                      (the user may lack valid credentials).",
        },
        PropCase {
            name: "P12",
            ptype: PropType::Correlation,
            holds: true,
            text: "forall pid, price: (F cart(pid, price)) -> F pick(pid, price)".into(),
            comment: "The paper's P12: a product ends up in the cart only if \
                      the user picked it from the product list.",
        },
        PropCase {
            name: "P13",
            ptype: PropType::Correlation,
            holds: false,
            text: "forall pid, price: (F pick(pid, price)) -> F cart(pid, price)".into(),
            comment: "Picking a product does not imply adding it to the cart.",
        },
        PropCase {
            name: "P14",
            ptype: PropType::Correlation,
            holds: false,
            // note: `exists o: cancelnotice(o)` would fall outside the
            // input-bounded fragment (an existential must be guarded by an
            // input atom); universal parameters keep verification complete
            text: "forall o, p: (F cancelnotice(o)) -> F ship(o, p)".into(),
            comment: "A cancelled order need not ever be shipped.",
        },
        PropCase {
            name: "P15",
            ptype: PropType::StrongNonProgress,
            holds: false,
            text: "F (G @EP)".into(),
            comment: "The paper's P15: every run reaches the error page and \
                      is trapped there forever — fortunately false.",
        },
        PropCase {
            name: "P16",
            ptype: PropType::Recurrence,
            holds: false,
            text: "G (F @HP)".into(),
            comment: "Runs need not return home infinitely often (the user \
                      can idle on the customer page forever).",
        },
        PropCase {
            name: "P17",
            ptype: PropType::Reachability,
            holds: false,
            text: "(G @HP) | (F @CP)".into(),
            comment: "Runs may leave the home page without ever logging in.",
        },
    ]
}

/// P4: for every page, the next page is among its declared successors
/// (12+ `G`/`X` operator pairs, mirroring the paper's large-automaton
/// property). Staying put is always possible (no-transition semantics).
fn p4_successor_uniqueness() -> String {
    let succ: &[(&str, &[&str])] = &[
        ("HP", &["CP", "EP", "RP", "HLP", "ABP"]),
        ("RP", &["RCP", "HP"]),
        ("RCP", &["HP"]),
        ("HLP", &["HP"]),
        ("ABP", &["HP"]),
        ("CP", &["LSP", "DSP", "CC", "MYP", "LOP"]),
        ("LSP", &["HP", "PIP", "CC"]),
        ("DSP", &["HP", "PIP", "CC"]),
        ("PIP", &["CC", "CP", "PDP"]),
        ("PDP", &["PIP"]),
        ("CC", &["SHP", "CP", "HP"]),
        ("SHP", &["UPP", "CC"]),
        ("UPP", &["OCP", "CC"]),
        ("OCP", &["CP", "HP"]),
        ("MYP", &["OSP", "CCP", "CP"]),
        ("OSP", &["MYP"]),
        ("CCP", &["MYP"]),
        ("LOP", &["HP"]),
        ("EP", &["HP"]),
    ];
    let parts: Vec<String> = succ
        .iter()
        .map(|(page, nexts)| {
            let mut alts: Vec<String> = vec![format!("@{page}")];
            alts.extend(nexts.iter().map(|n| format!("@{n}")));
            format!("G (@{page} -> X ({}))", alts.join(" | "))
        })
        .collect();
    parts.join(" & ")
}

/// The full E1 suite.
pub fn suite() -> AppSuite {
    AppSuite {
        name: "E1 computer shopping",
        spec: spec(),
        source: E1_SOURCE,
        properties: properties(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_validates() {
        let s = spec();
        assert!(s.validate().is_ok(), "{:?}", s.validate());
    }

    #[test]
    fn spec_matches_the_papers_inventory() {
        let s = spec();
        assert_eq!(s.pages.len(), 19, "paper: 19 page schemas");
        let mut db_arities: Vec<usize> = s.database.iter().map(|&(_, a)| a).collect();
        db_arities.sort_unstable();
        assert_eq!(db_arities, vec![2, 3, 5, 7], "paper: 4 database relations");
        assert_eq!(s.states.len(), 10, "paper: 10 state relations");
        assert_eq!(s.inputs.iter().filter(|i| !i.constant).count(), 6, "paper: 6 input relations");
        assert_eq!(s.actions.len(), 5, "paper: 5 action relations");
        let consts = s.all_constants();
        assert!(
            (25..=31).contains(&consts.len()),
            "paper: 29 constants; ours: {} ({consts:?})",
            consts.len()
        );
    }

    #[test]
    fn spec_is_input_bounded() {
        let compiled = wave_spec::CompiledSpec::compile(spec()).unwrap();
        assert!(compiled.is_input_bounded(), "{:?}", compiled.ib_report);
    }

    #[test]
    fn lsp_page_matches_the_paper() {
        let s = spec();
        let lsp = s.page("LSP").unwrap();
        assert_eq!(lsp.option_rules.len(), 2);
        assert!(lsp.inputs.contains(&"button".to_string()));
        assert!(lsp.inputs.contains(&"laptopsearch".to_string()));
        // the three buttons of Example 2.1
        let buttons = lsp.option_rules.iter().find(|r| r.input == "button").unwrap();
        let text = buttons.body.to_string();
        for b in ["search", "view_cart", "logout"] {
            assert!(text.contains(b), "{text}");
        }
        assert_eq!(lsp.target_rules.len(), 3);
    }

    #[test]
    fn all_property_texts_parse() {
        for p in properties() {
            let parsed = wave_ltl::parse_property(&p.text);
            assert!(parsed.is_ok(), "{}: {:?}", p.name, parsed.err());
        }
    }

    #[test]
    fn suite_covers_all_ten_types() {
        let props = properties();
        for t in PropType::ALL {
            assert!(props.iter().any(|p| p.ptype == t), "no property of type {t:?}");
        }
        assert_eq!(props.len(), 17, "paper: 17 properties for E1");
    }
}
