//! `wave-apps`: the four benchmark web applications of the paper's
//! experimental evaluation (Section 5), each with its property suite.
//!
//! * [`e1`] — online computer shopping (the running example; Dell-style),
//! * [`e2`] — a Motorcycle Grand Prix sports site (browsing only),
//! * [`e3`] — an airline reservation site (Expedia-style),
//! * [`e4`] — an online bookstore (Barnes&Noble-style, WebML-provided).
//!
//! [`suite`] holds the shared property-case scaffolding and the paper's
//! T1–T10 property-type taxonomy.

pub mod e1;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod suite;

pub use suite::{format_table, AppSuite, PropCase, PropType, SuiteRow};
