//! E4 — an online book shopping application similar to the Barnes & Noble
//! site (the paper's fourth experimental setup, whose original was
//! provided by the WebML project members): 35 pages, 22 database tables
//! with arities up to 14, 7 state tables. The paper omits its detailed
//! results "due to space limitations" and reports they were similar to
//! the other setups; our suite covers all ten property types.

use crate::suite::{AppSuite, PropCase, PropType};
use wave_spec::{parse_spec, Spec};

/// DSL source of the E4 specification.
pub const E4_SOURCE: &str = include_str!("../specs/e4_books.wave");

/// Parse the E4 specification.
pub fn spec() -> Spec {
    parse_spec(E4_SOURCE).expect("E4 spec parses")
}

/// The property suite for E4.
pub fn properties() -> Vec<PropCase> {
    vec![
        PropCase {
            name: "S1",
            ptype: PropType::Guarantee,
            holds: true,
            text: "F @HP".into(),
            comment: "The home page is eventually reached in all runs.",
        },
        PropCase {
            name: "S2",
            ptype: PropType::Sequence,
            holds: true,
            text: r#"forall b, p:
                (@PGP & button("pay") & cart(b, p)) B confirmorder(b, p)"#
                .into(),
            comment: "An order is confirmed only when paying for a book in \
                      the cart (the E4 analogue of E1's P5).",
        },
        PropCase {
            name: "S3",
            ptype: PropType::Sequence,
            holds: true,
            text: "forall b: (exists p: bookpick(b, p)) B wishadd(b)".into(),
            comment: "A book enters the wishlist only after it was picked.",
        },
        PropCase {
            name: "S4",
            ptype: PropType::Response,
            holds: true,
            text: r#"button("browse") -> F @BRP"#.into(),
            comment: "Browsing from the home page opens the catalogue.",
        },
        PropCase {
            name: "S5",
            ptype: PropType::Response,
            holds: false,
            text: r#"button("browse") -> F @OKP"#.into(),
            comment: "Browsing does not force completing a purchase.",
        },
        PropCase {
            name: "S6",
            ptype: PropType::Correlation,
            holds: true,
            text: "forall b, p: (F cart(b, p)) -> F bookpick(b, p)".into(),
            comment: "Books appear in the cart only after being picked.",
        },
        PropCase {
            name: "S7",
            ptype: PropType::Correlation,
            holds: false,
            text: "forall b, p: (F bookpick(b, p)) -> F cart(b, p)".into(),
            comment: "Picking a book does not imply adding it to the cart.",
        },
        PropCase {
            name: "S8",
            ptype: PropType::Session,
            holds: true,
            text: "(G (exists x: button(x))) -> G (@ERP -> F @HP)".into(),
            comment: "If the user always clicks, the error page (whose only \
                      link is home) always leads back to the home page.",
        },
        PropCase {
            name: "S9",
            ptype: PropType::Session,
            holds: false,
            text: "(G (exists x: button(x))) -> F @ACP".into(),
            comment: "Always clicking does not force a successful login.",
        },
        PropCase {
            name: "S10",
            ptype: PropType::Reachability,
            holds: false,
            text: "(G @HP) | (F @GFP)".into(),
            comment: "Runs may leave home and never visit the gifts page.",
        },
        PropCase {
            name: "S11",
            ptype: PropType::Recurrence,
            holds: false,
            text: "G (F @BRP)".into(),
            comment: "The catalogue need not recur in every run.",
        },
        PropCase {
            name: "S12",
            ptype: PropType::StrongNonProgress,
            holds: false,
            text: "F (G @ERP)".into(),
            comment: "No run is trapped on the error page forever.",
        },
        PropCase {
            name: "S13",
            ptype: PropType::WeakNonProgress,
            holds: true,
            text: "forall c: G (couponused(c) -> X couponused(c))".into(),
            comment: "A coupon, once applied, stays applied.",
        },
        PropCase {
            name: "S14",
            ptype: PropType::Invariance,
            holds: true,
            text: "G (@PGP -> X (@PGP | @OKP | @CTP))".into(),
            comment: "From the payment page only confirmation, the cart, or \
                      staying put are possible.",
        },
    ]
}

/// The full E4 suite.
pub fn suite() -> AppSuite {
    AppSuite {
        name: "E4 online bookstore",
        spec: spec(),
        source: E4_SOURCE,
        properties: properties(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_the_papers_inventory() {
        let s = spec();
        assert!(s.validate().is_ok(), "{:?}", s.validate());
        assert_eq!(s.pages.len(), 35, "paper: 35 pages");
        assert_eq!(s.database.len(), 22, "paper: 22 database tables");
        assert_eq!(s.database.iter().map(|&(_, a)| a).max(), Some(14), "paper: arities up to 14");
        assert_eq!(s.states.len(), 7, "paper: 7 state tables");
        let consts = s.all_constants();
        assert!(
            (20..=40).contains(&consts.len()),
            "paper: 22 constants; ours: {} ({consts:?})",
            consts.len()
        );
    }

    #[test]
    fn spec_is_input_bounded() {
        let compiled = wave_spec::CompiledSpec::compile(spec()).unwrap();
        assert!(compiled.is_input_bounded(), "{:?}", compiled.ib_report);
    }

    #[test]
    fn all_properties_parse_and_cover_all_types() {
        let props = properties();
        for p in &props {
            assert!(wave_ltl::parse_property(&p.text).is_ok(), "{} fails to parse", p.name);
        }
        for t in PropType::ALL {
            assert!(props.iter().any(|p| p.ptype == t), "missing type {t:?}");
        }
    }
}
