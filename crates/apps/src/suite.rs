//! Common property-suite scaffolding for the four benchmark applications.
//!
//! Each experimental setup carries a list of [`PropCase`]s — a named
//! LTL-FO property with its type (the paper's T1–T10 taxonomy) and its
//! expected truth value — plus helpers to run the whole suite through the
//! wave verifier and collect the paper's measurement columns.

use std::time::Duration;
use wave_core::{Verdict, Verifier, VerifyError, VerifyOptions};
use wave_spec::Spec;

/// The paper's property-type taxonomy (Section 5, "Classes of Properties").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropType {
    /// T1 — `p B q`.
    Sequence,
    /// T2 — `G p -> G q`.
    Session,
    /// T3 — `F p -> F q`.
    Correlation,
    /// T4 — `p -> F q`.
    Response,
    /// T5 — `G p | F q`.
    Reachability,
    /// T6 — `G (F p)` (progress / recurrence).
    Recurrence,
    /// T7 — `F (G p)`.
    StrongNonProgress,
    /// T8 — `G (p -> X p)`.
    WeakNonProgress,
    /// T9 — `F p`.
    Guarantee,
    /// T10 — `G p`.
    Invariance,
}

impl PropType {
    /// All ten types, in taxonomy order.
    pub const ALL: [PropType; 10] = [
        PropType::Sequence,
        PropType::Session,
        PropType::Correlation,
        PropType::Response,
        PropType::Reachability,
        PropType::Recurrence,
        PropType::StrongNonProgress,
        PropType::WeakNonProgress,
        PropType::Guarantee,
        PropType::Invariance,
    ];

    /// The paper's abbreviation (T1–T10).
    pub fn abbrev(self) -> &'static str {
        match self {
            PropType::Sequence => "T1",
            PropType::Session => "T2",
            PropType::Correlation => "T3",
            PropType::Response => "T4",
            PropType::Reachability => "T5",
            PropType::Recurrence => "T6",
            PropType::StrongNonProgress => "T7",
            PropType::WeakNonProgress => "T8",
            PropType::Guarantee => "T9",
            PropType::Invariance => "T10",
        }
    }

    /// Human name, as the paper's table lists it.
    pub fn name(self) -> &'static str {
        match self {
            PropType::Sequence => "Sequence",
            PropType::Session => "Session",
            PropType::Correlation => "Correlation",
            PropType::Response => "Response",
            PropType::Reachability => "Reachability",
            PropType::Recurrence => "Progress (recurrence)",
            PropType::StrongNonProgress => "Strong non-progress",
            PropType::WeakNonProgress => "Weak non-progress",
            PropType::Guarantee => "Guarantee",
            PropType::Invariance => "Invariance",
        }
    }
}

/// One property of a suite.
#[derive(Clone, Debug)]
pub struct PropCase {
    /// Name in the paper's numbering (`P1` …).
    pub name: &'static str,
    pub ptype: PropType,
    /// Expected verdict (the paper's `(true)` / `(false)` annotation).
    pub holds: bool,
    /// LTL-FO source text.
    pub text: String,
    /// What the property says and why it has that verdict.
    pub comment: &'static str,
}

/// A benchmark application with its property suite.
pub struct AppSuite {
    pub name: &'static str,
    pub spec: Spec,
    /// DSL source the spec was parsed from; spans in `spec` index into it.
    pub source: &'static str,
    pub properties: Vec<PropCase>,
}

/// Measured row for one property (the columns of the paper's tables).
#[derive(Clone, Debug)]
pub struct SuiteRow {
    pub name: &'static str,
    pub ptype: PropType,
    pub expected: bool,
    pub measured_holds: Option<bool>,
    pub elapsed: Duration,
    pub max_run_len: usize,
    pub max_trie: usize,
    pub configs: u64,
}

impl AppSuite {
    /// Build a verifier for the suite's spec.
    pub fn verifier(&self) -> Result<Verifier, VerifyError> {
        Verifier::new(self.spec.clone())
    }

    /// Verify one property by name.
    pub fn run_one(&self, verifier: &Verifier, name: &str) -> Result<SuiteRow, VerifyError> {
        let case = self
            .properties
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no property {name}"));
        Self::run_case(verifier, case)
    }

    /// Verify every property, producing the table rows.
    pub fn run_all(&self, options: VerifyOptions) -> Result<Vec<SuiteRow>, VerifyError> {
        let verifier = Verifier::with_options(self.spec.clone(), options)?;
        self.properties.iter().map(|case| Self::run_case(&verifier, case)).collect()
    }

    fn run_case(verifier: &Verifier, case: &PropCase) -> Result<SuiteRow, VerifyError> {
        let v = verifier.check_str(&case.text)?;
        Ok(SuiteRow {
            name: case.name,
            ptype: case.ptype,
            expected: case.holds,
            measured_holds: match v.verdict {
                Verdict::Holds => Some(true),
                Verdict::Violated(_) => Some(false),
                Verdict::Unknown(_) => None,
            },
            elapsed: v.stats.elapsed,
            max_run_len: v.stats.max_run_len,
            max_trie: v.stats.max_trie,
            configs: v.stats.configs,
        })
    }
}

/// Render suite rows as the paper's results table.
pub fn format_table(app: &str, rows: &[SuiteRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "Verification results for {app}");
    let _ = writeln!(
        out,
        "{:<5} {:<5} {:<22} {:>9} {:>12} {:>10} {:>9}",
        "Type", "Prop", "verdict (expected)", "time[s]", "max run len", "trie size", "configs"
    );
    for r in rows {
        let verdict = match r.measured_holds {
            Some(true) => "true",
            Some(false) => "false",
            None => "unknown",
        };
        let expected = if r.expected { "true" } else { "false" };
        let _ = writeln!(
            out,
            "{:<5} {:<5} {:<22} {:>9.3} {:>12} {:>10} {:>9}",
            r.ptype.abbrev(),
            r.name,
            format!("{verdict} ({expected})"),
            r.elapsed.as_secs_f64(),
            r.max_run_len,
            r.max_trie,
            r.configs,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_ten_types_with_unique_abbreviations() {
        let mut abbrevs: Vec<&str> = PropType::ALL.iter().map(|t| t.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 10);
    }

    #[test]
    fn format_table_renders_rows() {
        let rows = vec![SuiteRow {
            name: "P1",
            ptype: PropType::Guarantee,
            expected: true,
            measured_holds: Some(true),
            elapsed: Duration::from_millis(20),
            max_run_len: 1,
            max_trie: 0,
            configs: 42,
        }];
        let table = format_table("E1", &rows);
        assert!(table.contains("P1"));
        assert!(table.contains("true (true)"));
    }
}
