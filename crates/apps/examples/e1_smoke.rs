//! Developer harness: verify selected E1 properties by name and print the
//! paper's measurement columns. Used for quick performance triage:
//! `cargo run --release -p wave-apps --example e1_smoke -- P5 P7`.

use wave_apps::e1;
use wave_core::Verifier;

fn main() {
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).unwrap();
    for name in std::env::args().skip(1) {
        let case = suite.properties.iter().find(|p| p.name == name).unwrap();
        let t = std::time::Instant::now();
        match verifier.check_str(&case.text) {
            Ok(v) => println!(
                "{}: measured={:?} expected={} complete={} time={:?} run_len={} trie={} configs={} cores={} asg={}",
                name,
                match v.verdict { wave_core::Verdict::Holds => "true", wave_core::Verdict::Violated(_) => "false", _ => "unknown" },
                case.holds, v.complete, t.elapsed(), v.stats.max_run_len, v.stats.max_trie, v.stats.configs, v.stats.cores, v.stats.assignments,
            ),
            Err(e) => println!("{name}: ERROR {e}"),
        }
    }
}
