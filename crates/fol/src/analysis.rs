//! Static analyses over formulas: free variables, constants, relation
//! usage, and the *input-boundedness* check that gates completeness of the
//! verifier (Section 2.1 of the paper).
//!
//! Input-boundedness requires every quantification to be guarded by an
//! input atom:
//!
//! * `exists x̄: (R(…) & φ)` where `R` is a current/previous input relation
//!   whose atom contains all of `x̄`, and no `x ∈ x̄` occurs in a state or
//!   action atom of `φ`;
//! * `forall x̄: (R(…) -> φ)` with the same conditions.
//!
//! Input *option* rules obey a different restriction (only existential
//! quantifiers, ground state atoms); that check lives here too since it is
//! purely formula-shaped.

use crate::ast::{Atom, Formula, Term};
use std::collections::HashSet;
use std::fmt;

/// Relation-kind oracle the checks need: given a relation name, what kind
/// of relation is it? Implemented by `wave-spec`'s compiled specification;
/// tests use closures.
pub trait RelKinds {
    /// True if `rel` is an input relation or input constant.
    fn is_input(&self, rel: &str) -> bool;
    /// True if `rel` is a state relation.
    fn is_state(&self, rel: &str) -> bool;
    /// True if `rel` is an action relation.
    fn is_action(&self, rel: &str) -> bool;
}

impl<F1, F2, F3> RelKinds for (F1, F2, F3)
where
    F1: Fn(&str) -> bool,
    F2: Fn(&str) -> bool,
    F3: Fn(&str) -> bool,
{
    fn is_input(&self, rel: &str) -> bool {
        (self.0)(rel)
    }
    fn is_state(&self, rel: &str) -> bool {
        (self.1)(rel)
    }
    fn is_action(&self, rel: &str) -> bool {
        (self.2)(rel)
    }
}

/// Free variables of a formula, in first-occurrence order.
pub fn free_vars(f: &Formula) -> Vec<String> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    collect_free(f, &mut HashSet::new(), &mut out, &mut seen);
    out
}

fn collect_free(
    f: &Formula,
    bound: &mut HashSet<String>,
    out: &mut Vec<String>,
    seen: &mut HashSet<String>,
) {
    let term =
        |t: &Term, bound: &HashSet<String>, out: &mut Vec<String>, seen: &mut HashSet<String>| {
            if let Term::Var(v) = t {
                if !bound.contains(v) && seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        };
    match f {
        Formula::True | Formula::False | Formula::Page(_) | Formula::InputEmpty { .. } => {}
        Formula::Atom(a) => {
            for t in &a.terms {
                term(t, bound, out, seen);
            }
        }
        Formula::Eq(a, b) | Formula::Ne(a, b) => {
            term(a, bound, out, seen);
            term(b, bound, out, seen);
        }
        Formula::Not(x) => collect_free(x, bound, out, seen),
        Formula::And(xs) | Formula::Or(xs) => {
            for x in xs {
                collect_free(x, bound, out, seen);
            }
        }
        Formula::Implies(a, b) => {
            collect_free(a, bound, out, seen);
            collect_free(b, bound, out, seen);
        }
        Formula::Exists(vs, x) | Formula::Forall(vs, x) => {
            let newly: Vec<String> =
                vs.iter().filter(|v| bound.insert((*v).clone())).cloned().collect();
            collect_free(x, bound, out, seen);
            for v in newly {
                bound.remove(&v);
            }
        }
    }
}

/// All named constants mentioned by the formula, in first-occurrence order.
pub fn constants(f: &Formula) -> Vec<String> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    walk_terms(f, &mut |t| {
        if let Term::Const(c) = t {
            if seen.insert(c.clone()) {
                out.push(c.clone());
            }
        }
    });
    out
}

/// All relation names mentioned (with their prev flag), first occurrence
/// order.
pub fn relations(f: &Formula) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    f.visit_atoms(&mut |a: &Atom| {
        let key = (a.rel.clone(), a.prev);
        if seen.insert(key.clone()) {
            out.push(key);
        }
    });
    out
}

fn walk_terms(f: &Formula, visit: &mut impl FnMut(&Term)) {
    match f {
        Formula::Atom(a) => {
            for t in &a.terms {
                visit(t);
            }
        }
        Formula::Eq(a, b) | Formula::Ne(a, b) => {
            visit(a);
            visit(b);
        }
        Formula::Not(x) => walk_terms(x, visit),
        Formula::And(xs) | Formula::Or(xs) => {
            for x in xs {
                walk_terms(x, visit);
            }
        }
        Formula::Implies(a, b) => {
            walk_terms(a, visit);
            walk_terms(b, visit);
        }
        Formula::Exists(_, x) | Formula::Forall(_, x) => walk_terms(x, visit),
        _ => {}
    }
}

/// Why a formula fails the input-boundedness test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IbViolation {
    /// An `exists` whose body is not guarded by a positive input atom
    /// covering all quantified variables.
    UnguardedExists { vars: Vec<String> },
    /// A `forall` whose body is not an implication guarded by an input atom
    /// covering all quantified variables.
    UnguardedForall { vars: Vec<String> },
    /// A quantified variable occurs in a state or action atom.
    QuantifiedVarInStateOrAction { var: String, rel: String },
}

impl fmt::Display for IbViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IbViolation::UnguardedExists { vars } => {
                write!(f, "existential over {:?} is not guarded by an input atom", vars)
            }
            IbViolation::UnguardedForall { vars } => {
                write!(f, "universal over {:?} is not guarded by an input atom", vars)
            }
            IbViolation::QuantifiedVarInStateOrAction { var, rel } => {
                write!(f, "quantified variable {var} occurs in state/action atom {rel}")
            }
        }
    }
}

impl std::error::Error for IbViolation {}

/// Check the input-boundedness restriction on a formula (Section 2.1).
///
/// Guard shapes accepted:
/// * `exists x̄: G & φ` (or just `exists x̄: G`) with `G` a positive input
///   atom containing every `x ∈ x̄`;
/// * `forall x̄: G -> φ` with the same guard condition.
///
/// Additionally, no quantified variable may appear inside a state or action
/// atom anywhere under its binder.
pub fn check_input_bounded(f: &Formula, kinds: &impl RelKinds) -> Result<(), IbViolation> {
    match f {
        Formula::Exists(vars, body) => {
            let (guard, rest) = split_guard_conj(body);
            let guard = guard.filter(|g| covers(g, vars, kinds));
            match guard {
                Some(_) => {
                    check_no_state_action(vars, body, kinds)?;
                    for r in rest {
                        check_input_bounded(r, kinds)?;
                    }
                    Ok(())
                }
                None => Err(IbViolation::UnguardedExists { vars: vars.clone() }),
            }
        }
        Formula::Forall(vars, body) => match body.as_ref() {
            Formula::Implies(lhs, rhs) => {
                if let Formula::Atom(g) = lhs.as_ref() {
                    if covers(g, vars, kinds) {
                        check_no_state_action(vars, body, kinds)?;
                        return check_input_bounded(rhs, kinds);
                    }
                }
                Err(IbViolation::UnguardedForall { vars: vars.clone() })
            }
            _ => Err(IbViolation::UnguardedForall { vars: vars.clone() }),
        },
        Formula::Not(x) => check_input_bounded(x, kinds),
        Formula::And(xs) | Formula::Or(xs) => {
            xs.iter().try_for_each(|x| check_input_bounded(x, kinds))
        }
        Formula::Implies(a, b) => {
            check_input_bounded(a, kinds)?;
            check_input_bounded(b, kinds)
        }
        _ => Ok(()),
    }
}

/// If the body is `G & φ1 & …` (or just `G`) return the first positive
/// input-compatible atom as guard candidate plus the remaining conjuncts.
fn split_guard_conj(body: &Formula) -> (Option<&Atom>, Vec<&Formula>) {
    match body {
        Formula::Atom(a) => (Some(a), vec![]),
        Formula::And(xs) => {
            for (i, x) in xs.iter().enumerate() {
                if let Formula::Atom(a) = x {
                    let rest: Vec<&Formula> =
                        xs.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, f)| f).collect();
                    return (Some(a), rest);
                }
            }
            (None, xs.iter().collect())
        }
        other => (None, vec![other]),
    }
}

/// Does atom `a` guard all of `vars`? It must be an input atom (current or
/// previous) containing each quantified variable.
fn covers(a: &Atom, vars: &[String], kinds: &impl RelKinds) -> bool {
    if !kinds.is_input(&a.rel) {
        return false;
    }
    vars.iter().all(|v| a.terms.iter().any(|t| t.as_var() == Some(v)))
}

fn check_no_state_action(
    vars: &[String],
    body: &Formula,
    kinds: &impl RelKinds,
) -> Result<(), IbViolation> {
    let mut violation = None;
    body.visit_atoms(&mut |a: &Atom| {
        if violation.is_some() {
            return;
        }
        if kinds.is_state(&a.rel) || kinds.is_action(&a.rel) {
            for t in &a.terms {
                if let Term::Var(v) = t {
                    if vars.contains(v) {
                        violation = Some(IbViolation::QuantifiedVarInStateOrAction {
                            var: v.clone(),
                            rel: a.rel.clone(),
                        });
                        return;
                    }
                }
            }
        }
    });
    match violation {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Why a formula is not a legal input-option rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptionRuleViolation {
    /// Universal quantifier present.
    UniversalQuantifier,
    /// A state atom contains a variable (option rules require ground state
    /// atoms).
    StateAtomWithVariable { rel: String },
    /// Option rules may not read the *current* input (it has not been
    /// chosen yet); only previous input is visible.
    CurrentInputAtom { rel: String },
}

impl fmt::Display for OptionRuleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionRuleViolation::UniversalQuantifier => {
                write!(f, "option rules may use only existential quantification")
            }
            OptionRuleViolation::StateAtomWithVariable { rel } => {
                write!(f, "state atom {rel} in option rule contains a variable")
            }
            OptionRuleViolation::CurrentInputAtom { rel } => {
                write!(f, "option rule reads current input {rel}")
            }
        }
    }
}

impl std::error::Error for OptionRuleViolation {}

/// Check the input-option rule restriction: existential quantification
/// only, ground state atoms, and no reference to the current input.
pub fn check_option_rule(f: &Formula, kinds: &impl RelKinds) -> Result<(), OptionRuleViolation> {
    // universal quantifiers anywhere are disallowed (note: `Implies`/`Not`
    // are allowed; the "existential only" restriction in the paper is about
    // quantifiers)
    fn no_forall(f: &Formula) -> bool {
        match f {
            Formula::Forall(_, _) => false,
            Formula::Not(x) => no_forall(x),
            Formula::And(xs) | Formula::Or(xs) => xs.iter().all(no_forall),
            Formula::Implies(a, b) => no_forall(a) && no_forall(b),
            Formula::Exists(_, x) => no_forall(x),
            _ => true,
        }
    }
    if !no_forall(f) {
        return Err(OptionRuleViolation::UniversalQuantifier);
    }
    let mut violation = None;
    f.visit_atoms(&mut |a: &Atom| {
        if violation.is_some() {
            return;
        }
        if kinds.is_state(&a.rel) && a.terms.iter().any(|t| matches!(t, Term::Var(_))) {
            violation = Some(OptionRuleViolation::StateAtomWithVariable { rel: a.rel.clone() });
        } else if kinds.is_input(&a.rel) && !a.prev {
            violation = Some(OptionRuleViolation::CurrentInputAtom { rel: a.rel.clone() });
        }
    });
    match violation {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn kinds() -> impl RelKinds {
        (
            |r: &str| r.starts_with("in_") || r == "pay" || r == "button" || r == "laptopsearch",
            |r: &str| r.starts_with("st_") || r == "cart" || r == "userchoice",
            |r: &str| r.starts_with("act_") || r == "conf" || r == "ship",
        )
    }

    #[test]
    fn free_vars_in_order() {
        let f = parse_formula("r(x, y) & exists z: s(z, x)").unwrap();
        assert_eq!(free_vars(&f), vec!["x", "y"]);
    }

    #[test]
    fn constants_collected() {
        let f = parse_formula(r#"r(x, "a") & x = "b" | @HP"#).unwrap();
        assert_eq!(constants(&f), vec!["a", "b"]);
    }

    #[test]
    fn paper_payment_formula_is_input_bounded() {
        // ∀x,y (pay(x,y) → price(x,y)) with pay an input relation
        let f = parse_formula("forall x, y: pay(x, y) -> price(x, y)").unwrap();
        assert!(check_input_bounded(&f, &kinds()).is_ok());
    }

    #[test]
    fn unguarded_forall_rejected() {
        // price is a database relation, not input
        let f = parse_formula("forall x, y: price(x, y) -> pay(x, y)").unwrap();
        assert_eq!(
            check_input_bounded(&f, &kinds()),
            Err(IbViolation::UnguardedForall { vars: vec!["x".into(), "y".into()] })
        );
    }

    #[test]
    fn guarded_exists_accepted() {
        let f =
            parse_formula(r#"exists r, h, d: laptopsearch(r, h, d) & button("search")"#).unwrap();
        assert!(check_input_bounded(&f, &kinds()).is_ok());
    }

    #[test]
    fn exists_guard_must_cover_all_vars() {
        let f = parse_formula("exists x, y: pay(x, x) & db(y)").unwrap();
        assert!(matches!(
            check_input_bounded(&f, &kinds()),
            Err(IbViolation::UnguardedExists { .. })
        ));
    }

    #[test]
    fn quantified_var_in_state_atom_rejected() {
        let f = parse_formula("exists x: pay(x, y) & cart(x, z)").unwrap();
        assert_eq!(
            check_input_bounded(&f, &kinds()),
            Err(IbViolation::QuantifiedVarInStateOrAction { var: "x".into(), rel: "cart".into() })
        );
    }

    #[test]
    fn ground_state_atoms_fine_under_quantifier() {
        let f = parse_formula(r#"exists x: pay(x, y) & cart("item1", "100")"#).unwrap();
        assert!(check_input_bounded(&f, &kinds()).is_ok());
    }

    #[test]
    fn option_rule_rejects_forall() {
        let f = parse_formula("forall x: pay(x, x) -> db(x)").unwrap();
        assert_eq!(check_option_rule(&f, &kinds()), Err(OptionRuleViolation::UniversalQuantifier));
    }

    #[test]
    fn option_rule_rejects_state_vars_and_current_input() {
        let f = parse_formula("cart(x, y)").unwrap();
        assert!(matches!(
            check_option_rule(&f, &kinds()),
            Err(OptionRuleViolation::StateAtomWithVariable { .. })
        ));
        let g = parse_formula(r#"button("search")"#).unwrap();
        assert!(matches!(
            check_option_rule(&g, &kinds()),
            Err(OptionRuleViolation::CurrentInputAtom { .. })
        ));
        let h = parse_formula(r#"prev button("search") & cart("a", "b")"#).unwrap();
        assert!(check_option_rule(&h, &kinds()).is_ok());
    }

    #[test]
    fn lsp_option_rule_is_legal() {
        let f = parse_formula(
            r#"criteria("laptop", "ram", r) & criteria("laptop", "hdd", h)
               & criteria("laptop", "display", d)"#,
        )
        .unwrap();
        assert!(check_option_rule(&f, &kinds()).is_ok());
    }

    #[test]
    fn relations_lists_prev_separately() {
        let f = parse_formula("button(x) & prev button(y)").unwrap();
        assert_eq!(
            relations(&f),
            vec![("button".to_string(), false), ("button".to_string(), true)]
        );
    }
}
