//! Direct evaluation of FO formulas over an [`Instance`] with
//! active-domain semantics.
//!
//! This is the reference implementation of the logic: quantifiers iterate
//! over an explicit finite domain supplied by the caller (for
//! pseudoconfigurations: `C ∪ C_V ∪ C_V'`, which subsumes the active
//! domain). The plan compiler in [`mod@crate::compile`] is validated against
//! this evaluator by property-based tests; the verifier uses it for the
//! property's FO components and as a fallback for rule bodies the compiler
//! cannot handle.

use crate::ast::{Formula, Term};
use std::collections::HashMap;
use std::fmt;
use wave_relalg::{Instance, RelId, SymbolTable, Tuple, Value};

/// Resolves relation names (with the prev-input flag) to schema ids.
pub trait RelResolver {
    /// Id for `rel`; `prev` selects the previous-input shadow relation.
    fn resolve(&self, rel: &str, prev: bool) -> Option<RelId>;
}

/// Name-based resolver over a schema: previous-input shadows are declared
/// under the name `prev$<rel>` by convention.
pub struct SchemaResolver<'a>(pub &'a wave_relalg::Schema);

/// The conventional schema name of the previous-input shadow of `rel`.
pub fn prev_shadow_name(rel: &str) -> String {
    format!("prev${rel}")
}

impl RelResolver for SchemaResolver<'_> {
    fn resolve(&self, rel: &str, prev: bool) -> Option<RelId> {
        if prev {
            self.0.lookup(&prev_shadow_name(rel))
        } else {
            self.0.lookup(rel)
        }
    }
}

/// Everything needed to evaluate a formula at one configuration.
pub struct EvalCtx<'a> {
    /// The working instance (database ∪ state ∪ inputs ∪ actions).
    pub instance: &'a Instance,
    /// Symbol table interning all constants in play.
    pub symbols: &'a SymbolTable,
    /// Name of the current web page, for [`Formula::Page`] tests.
    pub current_page: Option<&'a str>,
    /// Quantification domain (must contain the instance's active domain
    /// plus every constant the formula can mention).
    pub domain: &'a [Value],
}

/// Evaluation failure: these indicate wiring bugs (unresolved names), not
/// data-dependent conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    UnknownRelation { rel: String, prev: bool },
    UnknownConstant(String),
    UnboundVariable(String),
    ArityMismatch { rel: String, expected: usize, got: usize },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation { rel, prev } => {
                write!(f, "unknown relation {}{rel}", if *prev { "prev " } else { "" })
            }
            EvalError::UnknownConstant(c) => write!(f, "unknown constant {c:?}"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            EvalError::ArityMismatch { rel, expected, got } => {
                write!(f, "atom {rel} has {got} terms, relation has arity {expected}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A variable binding environment (small, so a vector beats a hash map).
#[derive(Clone, Debug, Default)]
pub struct Bindings(Vec<(String, Value)>);

impl Bindings {
    /// Empty environment.
    pub fn new() -> Self {
        Bindings(Vec::new())
    }

    /// Environment from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, Value)>) -> Self {
        Bindings(pairs.into_iter().collect())
    }

    /// Look up a variable (later bindings shadow earlier ones).
    pub fn get(&self, var: &str) -> Option<Value> {
        self.0.iter().rev().find(|(v, _)| v == var).map(|(_, val)| *val)
    }

    fn push(&mut self, var: &str, val: Value) {
        self.0.push((var.to_string(), val));
    }

    fn pop(&mut self) {
        self.0.pop();
    }
}

impl From<&HashMap<String, Value>> for Bindings {
    fn from(m: &HashMap<String, Value>) -> Self {
        Bindings(m.iter().map(|(k, v)| (k.clone(), *v)).collect())
    }
}

/// Evaluate `term`; `None` means "no value" (a `Field` of an empty input
/// relation), which makes any comparison or atom containing it false.
fn eval_term(
    term: &Term,
    ctx: &EvalCtx<'_>,
    resolver: &impl RelResolver,
    env: &Bindings,
) -> Result<Option<Value>, EvalError> {
    match term {
        Term::Var(v) => env.get(v).map(Some).ok_or_else(|| EvalError::UnboundVariable(v.clone())),
        Term::Const(c) => ctx
            .symbols
            .lookup_constant(c)
            .map(Some)
            .ok_or_else(|| EvalError::UnknownConstant(c.clone())),
        Term::Field { rel, col, prev } => {
            let id = resolver
                .resolve(rel, *prev)
                .ok_or_else(|| EvalError::UnknownRelation { rel: rel.clone(), prev: *prev })?;
            Ok(ctx.instance.rel(id).only().map(|t| t.get(*col)))
        }
    }
}

/// Evaluate a formula to a boolean under `env`.
pub fn eval(
    f: &Formula,
    ctx: &EvalCtx<'_>,
    resolver: &impl RelResolver,
    env: &mut Bindings,
) -> Result<bool, EvalError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Page(p) => Ok(ctx.current_page == Some(p.as_str())),
        Formula::InputEmpty { rel, prev } => {
            let id = resolver
                .resolve(rel, *prev)
                .ok_or_else(|| EvalError::UnknownRelation { rel: rel.clone(), prev: *prev })?;
            Ok(ctx.instance.rel(id).is_empty())
        }
        Formula::Atom(a) => {
            let id = resolver
                .resolve(&a.rel, a.prev)
                .ok_or_else(|| EvalError::UnknownRelation { rel: a.rel.clone(), prev: a.prev })?;
            let rel = ctx.instance.rel(id);
            if rel.arity() != a.terms.len() {
                return Err(EvalError::ArityMismatch {
                    rel: a.rel.clone(),
                    expected: rel.arity(),
                    got: a.terms.len(),
                });
            }
            let mut vals = Vec::with_capacity(a.terms.len());
            for t in &a.terms {
                match eval_term(t, ctx, resolver, env)? {
                    Some(v) => vals.push(v),
                    None => return Ok(false),
                }
            }
            Ok(rel.contains(&Tuple::from(vals)))
        }
        Formula::Eq(a, b) => {
            let (va, vb) = (eval_term(a, ctx, resolver, env)?, eval_term(b, ctx, resolver, env)?);
            Ok(matches!((va, vb), (Some(x), Some(y)) if x == y))
        }
        Formula::Ne(a, b) => {
            let (va, vb) = (eval_term(a, ctx, resolver, env)?, eval_term(b, ctx, resolver, env)?);
            Ok(matches!((va, vb), (Some(x), Some(y)) if x != y))
        }
        Formula::Not(x) => Ok(!eval(x, ctx, resolver, env)?),
        Formula::And(xs) => {
            for x in xs {
                if !eval(x, ctx, resolver, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(xs) => {
            for x in xs {
                if eval(x, ctx, resolver, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => Ok(!eval(a, ctx, resolver, env)? || eval(b, ctx, resolver, env)?),
        Formula::Exists(vars, body) => quantify(vars, body, ctx, resolver, env, false),
        Formula::Forall(vars, body) => quantify(vars, body, ctx, resolver, env, true),
    }
}

fn quantify(
    vars: &[String],
    body: &Formula,
    ctx: &EvalCtx<'_>,
    resolver: &impl RelResolver,
    env: &mut Bindings,
    universal: bool,
) -> Result<bool, EvalError> {
    fn go(
        vars: &[String],
        body: &Formula,
        ctx: &EvalCtx<'_>,
        resolver: &impl RelResolver,
        env: &mut Bindings,
        universal: bool,
    ) -> Result<bool, EvalError> {
        match vars.split_first() {
            None => eval(body, ctx, resolver, env),
            Some((v, rest)) => {
                for &val in ctx.domain {
                    env.push(v, val);
                    let r = go(rest, body, ctx, resolver, env, universal)?;
                    env.pop();
                    if universal && !r {
                        return Ok(false);
                    }
                    if !universal && r {
                        return Ok(true);
                    }
                }
                Ok(universal)
            }
        }
    }
    go(vars, body, ctx, resolver, env, universal)
}

/// Compute all satisfying assignments of `f`'s listed free variables over
/// the context domain (the "non-boolean query" view of a formula).
pub fn answers(
    f: &Formula,
    free: &[String],
    ctx: &EvalCtx<'_>,
    resolver: &impl RelResolver,
) -> Result<Vec<Vec<Value>>, EvalError> {
    let mut out = Vec::new();
    let mut env = Bindings::new();
    fn go(
        f: &Formula,
        free: &[String],
        ctx: &EvalCtx<'_>,
        resolver: &impl RelResolver,
        env: &mut Bindings,
        acc: &mut Vec<Value>,
        out: &mut Vec<Vec<Value>>,
    ) -> Result<(), EvalError> {
        match free.split_first() {
            None => {
                if eval(f, ctx, resolver, env)? {
                    out.push(acc.clone());
                }
                Ok(())
            }
            Some((v, rest)) => {
                for &val in ctx.domain {
                    env.push(v, val);
                    acc.push(val);
                    go(f, rest, ctx, resolver, env, acc, out)?;
                    acc.pop();
                    env.pop();
                }
                Ok(())
            }
        }
    }
    go(f, free, ctx, resolver, &mut env, &mut Vec::new(), &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use std::sync::Arc;
    use wave_relalg::{RelKind, Schema};

    struct Fixture {
        schema: Arc<Schema>,
        symbols: SymbolTable,
        instance: Instance,
        domain: Vec<Value>,
    }

    /// price(item, amount) database; pay(item, amount) input with shadow.
    fn fixture() -> Fixture {
        let mut schema = Schema::new();
        schema.declare("price", 2, RelKind::Database).unwrap();
        schema.declare("pay", 2, RelKind::Input).unwrap();
        schema.declare(&prev_shadow_name("pay"), 2, RelKind::Input).unwrap();
        let schema = Arc::new(schema);
        let mut symbols = SymbolTable::new();
        let item1 = symbols.constant("item1");
        let item2 = symbols.constant("item2");
        let p100 = symbols.constant("100");
        let p200 = symbols.constant("200");
        let mut instance = Instance::empty(Arc::clone(&schema));
        let price = schema.lookup("price").unwrap();
        instance.insert(price, Tuple::from([item1, p100]));
        instance.insert(price, Tuple::from([item2, p200]));
        let domain = vec![item1, item2, p100, p200];
        Fixture { schema, symbols, instance, domain }
    }

    fn check(fx: &Fixture, src: &str) -> bool {
        let f = parse_formula(src).unwrap();
        let ctx = EvalCtx {
            instance: &fx.instance,
            symbols: &fx.symbols,
            current_page: Some("HP"),
            domain: &fx.domain,
        };
        eval(&f, &ctx, &SchemaResolver(&fx.schema), &mut Bindings::new()).unwrap()
    }

    #[test]
    fn ground_atoms() {
        let fx = fixture();
        assert!(check(&fx, r#"price("item1", "100")"#));
        assert!(!check(&fx, r#"price("item1", "200")"#));
    }

    #[test]
    fn payment_invariant_holds_when_pay_empty() {
        let fx = fixture();
        // pay is empty, so the universal implication is vacuously true
        assert!(check(&fx, "forall x, y: pay(x, y) -> price(x, y)"));
    }

    #[test]
    fn payment_invariant_detects_wrong_amount() {
        let mut fx = fixture();
        let pay = fx.schema.lookup("pay").unwrap();
        let item1 = fx.symbols.lookup_constant("item1").unwrap();
        let p200 = fx.symbols.lookup_constant("200").unwrap();
        fx.instance.insert(pay, Tuple::from([item1, p200]));
        assert!(!check(&fx, "forall x, y: pay(x, y) -> price(x, y)"));
        assert!(check(&fx, "exists x, y: pay(x, y) & price(x, x) | true"));
    }

    #[test]
    fn exists_finds_witness() {
        let fx = fixture();
        assert!(check(&fx, r#"exists x: price(x, "100")"#));
        // "item1" is interned but never occurs in the price column
        assert!(!check(&fx, r#"exists x: price(x, "item1")"#));
    }

    #[test]
    fn unknown_constant_is_an_error() {
        let fx = fixture();
        let f = parse_formula(r#"price("item1", "nonexistent-constant")"#).unwrap();
        let ctx = EvalCtx {
            instance: &fx.instance,
            symbols: &fx.symbols,
            current_page: None,
            domain: &fx.domain,
        };
        let err = eval(&f, &ctx, &SchemaResolver(&fx.schema), &mut Bindings::new()).unwrap_err();
        assert!(matches!(err, EvalError::UnknownConstant(_)));
    }

    #[test]
    fn page_test() {
        let fx = fixture();
        assert!(check(&fx, "@HP"));
        assert!(!check(&fx, "@LSP"));
    }

    #[test]
    fn input_empty_flag() {
        let fx = fixture();
        let f = Formula::InputEmpty { rel: "pay".into(), prev: false };
        let ctx = EvalCtx {
            instance: &fx.instance,
            symbols: &fx.symbols,
            current_page: None,
            domain: &fx.domain,
        };
        assert!(eval(&f, &ctx, &SchemaResolver(&fx.schema), &mut Bindings::new()).unwrap());
    }

    #[test]
    fn field_of_empty_input_makes_atoms_false() {
        let fx = fixture();
        let f = Formula::Eq(
            Term::Field { rel: "pay".into(), col: 0, prev: false },
            Term::Const("item1".into()),
        );
        let ctx = EvalCtx {
            instance: &fx.instance,
            symbols: &fx.symbols,
            current_page: None,
            domain: &fx.domain,
        };
        assert!(!eval(&f, &ctx, &SchemaResolver(&fx.schema), &mut Bindings::new()).unwrap());
        // and Ne is also false on a missing value
        let g = Formula::Ne(
            Term::Field { rel: "pay".into(), col: 0, prev: false },
            Term::Const("item1".into()),
        );
        assert!(!eval(&g, &ctx, &SchemaResolver(&fx.schema), &mut Bindings::new()).unwrap());
    }

    #[test]
    fn answers_enumerates_satisfying_assignments() {
        let fx = fixture();
        let f = parse_formula("price(x, y)").unwrap();
        let ctx = EvalCtx {
            instance: &fx.instance,
            symbols: &fx.symbols,
            current_page: None,
            domain: &fx.domain,
        };
        let out =
            answers(&f, &["x".into(), "y".into()], &ctx, &SchemaResolver(&fx.schema)).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn prev_atom_reads_shadow_relation() {
        let mut fx = fixture();
        let shadow = fx.schema.lookup(&prev_shadow_name("pay")).unwrap();
        let item1 = fx.symbols.lookup_constant("item1").unwrap();
        let p100 = fx.symbols.lookup_constant("100").unwrap();
        fx.instance.insert(shadow, Tuple::from([item1, p100]));
        assert!(check(&fx, r#"prev pay("item1", "100")"#));
        assert!(!check(&fx, r#"pay("item1", "100")"#));
    }
}
