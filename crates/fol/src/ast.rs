//! First-order formula AST.
//!
//! This is the surface representation produced by the parser and consumed
//! by the analyses, the rewriter, the evaluator and the plan compiler.
//! Relations and constants are referenced *by name*; resolution against a
//! concrete [`wave_relalg::Schema`] happens at evaluation/compilation time
//! so that one formula can be validated early and reused across contexts.

use std::fmt;

/// A term: a variable, a named constant, or (after the Section 4 input
/// rewrite) a component of the current/previous input tuple.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A first-order variable.
    Var(String),
    /// A named constant (interned to a `Value` at evaluation time).
    Const(String),
    /// Component `col` of the unique tuple currently held by input
    /// relation `rel` (`prev` selects the previous step's input). Produced
    /// only by the input-quantifier elimination rewrite; never written by
    /// users.
    Field { rel: String, col: usize, prev: bool },
}

impl Term {
    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c:?}"),
            Term::Field { rel, col, prev } => {
                if *prev {
                    write!(f, "prev {rel}#{col}")
                } else {
                    write!(f, "{rel}#{col}")
                }
            }
        }
    }
}

/// A relational atom `R(t1, …, tk)`. `prev` marks references to the
/// previous step's input (only meaningful for input relations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    pub rel: String,
    pub prev: bool,
    pub terms: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prev {
            write!(f, "prev ")?;
        }
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A first-order formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    True,
    False,
    /// Relational atom.
    Atom(Atom),
    /// "The current page is `name`" — usable in properties; compiled to a
    /// nullary page-marker relation.
    Page(String),
    /// Equality of terms.
    Eq(Term, Term),
    /// Disequality of terms.
    Ne(Term, Term),
    /// "Input relation `rel` holds no tuple this step" (`prev` for the
    /// previous step). Produced by the input rewrite (the paper's
    /// `emptyI` flag).
    InputEmpty {
        rel: String,
        prev: bool,
    },
    Not(Box<Formula>),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Implies(Box<Formula>, Box<Formula>),
    Exists(Vec<String>, Box<Formula>),
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// Conjunction that flattens nested `And`s and drops `True`.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(mut inner) => out.append(&mut inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().expect("len checked"),
            _ => Formula::And(out),
        }
    }

    /// Disjunction that flattens nested `Or`s and drops `False`.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(mut inner) => out.append(&mut inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().expect("len checked"),
            _ => Formula::Or(out),
        }
    }

    /// Logical negation with trivial simplifications.
    #[allow(clippy::should_implement_trait)] // associated constructor, not an operator
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Visit every atom (including those under negation/quantifiers).
    pub fn visit_atoms<'a>(&'a self, f: &mut impl FnMut(&'a Atom)) {
        match self {
            Formula::Atom(a) => f(a),
            Formula::Not(x) => x.visit_atoms(f),
            Formula::And(xs) | Formula::Or(xs) => {
                for x in xs {
                    x.visit_atoms(f);
                }
            }
            Formula::Implies(a, b) => {
                a.visit_atoms(f);
                b.visit_atoms(f);
            }
            Formula::Exists(_, x) | Formula::Forall(_, x) => x.visit_atoms(f),
            _ => {}
        }
    }

    /// Substitute variables by terms (capture is the caller's problem:
    /// the rewriter only substitutes freshly eliminated quantified
    /// variables by ground `Field` terms, so capture cannot occur there).
    pub fn substitute(&self, map: &std::collections::HashMap<String, Term>) -> Formula {
        let sub_term = |t: &Term| -> Term {
            if let Term::Var(v) = t {
                if let Some(replacement) = map.get(v) {
                    return replacement.clone();
                }
            }
            t.clone()
        };
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(Atom {
                rel: a.rel.clone(),
                prev: a.prev,
                terms: a.terms.iter().map(sub_term).collect(),
            }),
            Formula::Page(p) => Formula::Page(p.clone()),
            Formula::Eq(a, b) => Formula::Eq(sub_term(a), sub_term(b)),
            Formula::Ne(a, b) => Formula::Ne(sub_term(a), sub_term(b)),
            Formula::InputEmpty { rel, prev } => {
                Formula::InputEmpty { rel: rel.clone(), prev: *prev }
            }
            Formula::Not(x) => Formula::Not(Box::new(x.substitute(map))),
            Formula::And(xs) => Formula::And(xs.iter().map(|x| x.substitute(map)).collect()),
            Formula::Or(xs) => Formula::Or(xs.iter().map(|x| x.substitute(map)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.substitute(map)), Box::new(b.substitute(map)))
            }
            Formula::Exists(vs, x) => {
                let inner_map: std::collections::HashMap<_, _> = map
                    .iter()
                    .filter(|(k, _)| !vs.contains(k))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                Formula::Exists(vs.clone(), Box::new(x.substitute(&inner_map)))
            }
            Formula::Forall(vs, x) => {
                let inner_map: std::collections::HashMap<_, _> = map
                    .iter()
                    .filter(|(k, _)| !vs.contains(k))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                Formula::Forall(vs.clone(), Box::new(x.substitute(&inner_map)))
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Page(p) => write!(f, "@{p}"),
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Ne(a, b) => write!(f, "{a} != {b}"),
            Formula::InputEmpty { rel, prev } => {
                write!(f, "empty({}{rel})", if *prev { "prev " } else { "" })
            }
            Formula::Not(x) => write!(f, "!({x})"),
            Formula::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
            // quantifiers scope maximally right in the grammar, so the
            // printer parenthesizes them to keep printing/parsing inverse
            Formula::Exists(vs, x) => write!(f, "(exists {}: ({x}))", vs.join(", ")),
            Formula::Forall(vs, x) => write!(f, "(forall {}: ({x}))", vs.join(", ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn atom(rel: &str, terms: &[Term]) -> Formula {
        Formula::Atom(Atom { rel: rel.into(), prev: false, terms: terms.to_vec() })
    }

    #[test]
    fn and_flattens_and_short_circuits() {
        let a = atom("r", &[Term::Var("x".into())]);
        let nested =
            Formula::and([a.clone(), Formula::True, Formula::And(vec![a.clone(), a.clone()])]);
        assert!(matches!(&nested, Formula::And(xs) if xs.len() == 3));
        assert_eq!(Formula::and([Formula::False, a.clone()]), Formula::False);
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::and([a.clone()]), a);
    }

    #[test]
    fn or_flattens_and_short_circuits() {
        let a = atom("r", &[]);
        assert_eq!(Formula::or([Formula::True, a.clone()]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
    }

    #[test]
    fn double_negation_cancels() {
        let a = atom("r", &[]);
        assert_eq!(Formula::not(Formula::not(a.clone())), a);
    }

    #[test]
    fn substitute_respects_binders() {
        let f = Formula::Exists(
            vec!["x".into()],
            Box::new(Formula::Eq(Term::Var("x".into()), Term::Var("y".into()))),
        );
        let mut map = HashMap::new();
        map.insert("x".to_string(), Term::Const("a".into()));
        map.insert("y".to_string(), Term::Const("b".into()));
        let g = f.substitute(&map);
        // bound x untouched, free y replaced
        assert_eq!(
            g,
            Formula::Exists(
                vec!["x".into()],
                Box::new(Formula::Eq(Term::Var("x".into()), Term::Const("b".into()))),
            )
        );
    }

    #[test]
    fn display_round_readable() {
        let f = Formula::Implies(
            Box::new(atom("pay", &[Term::Var("x".into()), Term::Var("y".into())])),
            Box::new(atom("price", &[Term::Var("x".into()), Term::Var("y".into())])),
        );
        assert_eq!(format!("{f}"), "(pay(x, y) -> price(x, y))");
    }

    #[test]
    fn visit_atoms_reaches_all() {
        let f = Formula::Forall(
            vec!["x".into()],
            Box::new(Formula::Implies(
                Box::new(atom("a", &[])),
                Box::new(Formula::Not(Box::new(atom("b", &[])))),
            )),
        );
        let mut names = Vec::new();
        f.visit_atoms(&mut |a| names.push(a.rel.clone()));
        assert_eq!(names, vec!["a", "b"]);
    }
}
