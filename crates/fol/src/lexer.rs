//! Shared lexer for the FO formula language, the LTL-FO property language
//! and the specification DSL.
//!
//! One token type serves all three grammars: `wave-ltl` and `wave-spec`
//! reuse this lexer so the surface syntaxes stay consistent (same
//! identifiers, string constants, comments and operators everywhere).

use std::fmt;

/// A lexical token with its source extent (byte offsets) for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub pos: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Token {
    /// The token's source extent as a [`crate::span::Span`].
    pub fn span(&self) -> crate::span::Span {
        crate::span::Span::new(self.pos, self.end)
    }
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`forall`, `page`, relation names, variables…).
    Ident(String),
    /// Quoted string constant, `"laptop"`.
    Str(String),
    /// `@` page-reference sigil.
    At,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Eq,
    /// `!=`
    Ne,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `->`
    Arrow,
    /// `<-` (rule definition)
    LArrow,
    /// `[]` (LTL globally)
    Box_,
    /// `<>` (LTL finally)
    Diamond,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier {s:?}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::At => write!(f, "'@'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semi => write!(f, "';'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Ne => write!(f, "'!='"),
            TokenKind::Bang => write!(f, "'!'"),
            TokenKind::Amp => write!(f, "'&'"),
            TokenKind::Pipe => write!(f, "'|'"),
            TokenKind::Arrow => write!(f, "'->'"),
            TokenKind::LArrow => write!(f, "'<-'"),
            TokenKind::Box_ => write!(f, "'[]'"),
            TokenKind::Diamond => write!(f, "'<>'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`. Line comments start with `#` or `//` and run to the end
/// of the line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), pos: start, end: i });
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos: i, end: i + 1 });
                i += 1;
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos: i, end: i + 1 });
                i += 1;
            }
            b'{' => {
                tokens.push(Token { kind: TokenKind::LBrace, pos: i, end: i + 1 });
                i += 1;
            }
            b'}' => {
                tokens.push(Token { kind: TokenKind::RBrace, pos: i, end: i + 1 });
                i += 1;
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos: i, end: i + 1 });
                i += 1;
            }
            b';' => {
                tokens.push(Token { kind: TokenKind::Semi, pos: i, end: i + 1 });
                i += 1;
            }
            b':' => {
                tokens.push(Token { kind: TokenKind::Colon, pos: i, end: i + 1 });
                i += 1;
            }
            b'@' => {
                tokens.push(Token { kind: TokenKind::At, pos: i, end: i + 1 });
                i += 1;
            }
            b'=' => {
                tokens.push(Token { kind: TokenKind::Eq, pos: i, end: i + 1 });
                i += 1;
            }
            b'&' => {
                tokens.push(Token { kind: TokenKind::Amp, pos: i, end: i + 1 });
                i += 1;
            }
            b'|' => {
                tokens.push(Token { kind: TokenKind::Pipe, pos: i, end: i + 1 });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ne, pos: i, end: i + 2 });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Bang, pos: i, end: i + 1 });
                    i += 1;
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::Arrow, pos: i, end: i + 2 });
                    i += 2;
                } else {
                    return Err(LexError { pos: i, message: "expected '->'".into() });
                }
            }
            b'[' => {
                if bytes.get(i + 1) == Some(&b']') {
                    tokens.push(Token { kind: TokenKind::Box_, pos: i, end: i + 2 });
                    i += 2;
                } else {
                    return Err(LexError { pos: i, message: "expected '[]'".into() });
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'>') => {
                    tokens.push(Token { kind: TokenKind::Diamond, pos: i, end: i + 2 });
                    i += 2;
                }
                Some(&b'-') => {
                    tokens.push(Token { kind: TokenKind::LArrow, pos: i, end: i + 2 });
                    i += 2;
                }
                _ => return Err(LexError { pos: i, message: "expected '<>' or '<-'".into() }),
            },
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let ident = src[start..i].to_string();
                tokens.push(Token { kind: TokenKind::Ident(ident), pos: start, end: i });
            }
            b if b.is_ascii_digit() => {
                // bare numbers are identifiers too (e.g. page names like "404");
                // data values are always quoted strings.
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    pos: start,
                    end: i,
                });
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: bytes.len(), end: bytes.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_formula_tokens() {
        let ks = kinds(r#"forall x: pay(x, "usd") -> price(x)"#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("forall".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Colon,
                TokenKind::Ident("pay".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::Comma,
                TokenKind::Str("usd".into()),
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Ident("price".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_ltl_sugar() {
        let ks = kinds("[] <> @HP");
        assert_eq!(
            ks,
            vec![
                TokenKind::Box_,
                TokenKind::Diamond,
                TokenKind::At,
                TokenKind::Ident("HP".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a # trailing\n// whole line\nb");
        assert_eq!(
            ks,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn ne_vs_bang() {
        assert_eq!(
            kinds("!x != y"),
            vec![
                TokenKind::Bang,
                TokenKind::Ident("x".into()),
                TokenKind::Ne,
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rule_arrow() {
        assert_eq!(
            kinds("S(x) <- r(x)"),
            vec![
                TokenKind::Ident("S".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::LArrow,
                TokenKind::Ident("r".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_char_reports_position() {
        let err = lex("ab $").unwrap_err();
        assert_eq!(err.pos, 3);
    }

    #[test]
    fn tokens_carry_byte_extents() {
        let toks = lex(r#"ab <- "xy" !="#).unwrap();
        let extents: Vec<(usize, usize)> = toks.iter().map(|t| (t.pos, t.end)).collect();
        // ident, larrow, string (includes quotes), ne, eof
        assert_eq!(extents, vec![(0, 2), (3, 5), (6, 10), (11, 13), (13, 13)]);
    }
}
