//! Input-bounded quantifier elimination (Section 4 of the paper).
//!
//! At any step of a run, each input relation `I` holds *at most one* tuple
//! `t`. This licenses the rewrite
//!
//! ```text
//! ∀x̄ (I(x̄,ȳ) → φ)   ⟹   emptyI ∨ (match constraints → φ[x̄ ↦ t-fields])
//! ∃x̄ (I(x̄,ȳ) ∧ φ)   ⟹   ¬emptyI ∧ match constraints ∧ φ[x̄ ↦ t-fields]
//! ```
//!
//! where `t-fields` are [`Term::Field`] references to the components of the
//! unique input tuple and *match constraints* equate non-quantified
//! positions of the guard atom to the corresponding fields. The paper
//! applies this to obtain unnested, parameterized SQL; we apply it to
//! obtain quantifier-free formulas whose plan compilation needs no joins
//! against input tables (the fields become parameter slots bound once per
//! step).
//!
//! The rewrite also normalizes *non-guard* input atoms `I(t̄)` (those whose
//! terms are all ground in context) into conjunctions of field equalities,
//! eliminating every input-table access from the compiled plan.

use crate::ast::{Atom, Formula, Term};
use std::collections::HashMap;

/// Oracle telling the rewriter which relation names are input relations
/// (current or previous input both qualify — both are singletons).
pub trait InputRels {
    /// True if `rel` is an input relation or input constant.
    fn is_input(&self, rel: &str) -> bool;
}

impl<F: Fn(&str) -> bool> InputRels for F {
    fn is_input(&self, rel: &str) -> bool {
        self(rel)
    }
}

/// Rewrite a formula, eliminating all input-guarded quantifiers and
/// replacing input atoms with field-equality constraints guarded by
/// `¬emptyI`. Quantifiers that are not input-guarded are left untouched
/// (the compiler or evaluator deals with them).
pub fn eliminate_input_quantifiers(f: &Formula, inputs: &impl InputRels) -> Formula {
    match f {
        Formula::Exists(vars, body) => {
            if let Some((guard, rest)) = find_guard(body, vars, inputs) {
                let (constraints, subst) = guard_bindings(guard, vars);
                let rest = rest
                    .into_iter()
                    .map(|r| eliminate_input_quantifiers(&r.substitute(&subst), inputs));
                let not_empty =
                    Formula::not(Formula::InputEmpty { rel: guard.rel.clone(), prev: guard.prev });
                Formula::and(std::iter::once(not_empty).chain(constraints).chain(rest))
            } else {
                Formula::Exists(vars.clone(), Box::new(eliminate_input_quantifiers(body, inputs)))
            }
        }
        Formula::Forall(vars, body) => {
            if let Formula::Implies(lhs, rhs) = body.as_ref() {
                if let Formula::Atom(guard) = lhs.as_ref() {
                    if inputs.is_input(&guard.rel) && covers(guard, vars) {
                        let (constraints, subst) = guard_bindings(guard, vars);
                        let rhs = eliminate_input_quantifiers(&rhs.substitute(&subst), inputs);
                        let empty =
                            Formula::InputEmpty { rel: guard.rel.clone(), prev: guard.prev };
                        // emptyI ∨ (match → φ)
                        return Formula::or([
                            empty,
                            Formula::Implies(Box::new(Formula::and(constraints)), Box::new(rhs)),
                        ]);
                    }
                }
            }
            Formula::Forall(vars.clone(), Box::new(eliminate_input_quantifiers(body, inputs)))
        }
        // ground input atoms (all terms context-ground) become field tests
        Formula::Atom(a) if inputs.is_input(&a.rel) => ground_input_atom(a),
        Formula::Not(x) => Formula::not(eliminate_input_quantifiers(x, inputs)),
        Formula::And(xs) => Formula::and(xs.iter().map(|x| eliminate_input_quantifiers(x, inputs))),
        Formula::Or(xs) => Formula::or(xs.iter().map(|x| eliminate_input_quantifiers(x, inputs))),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(eliminate_input_quantifiers(a, inputs)),
            Box::new(eliminate_input_quantifiers(b, inputs)),
        ),
        other => other.clone(),
    }
}

/// Turn an input atom into `¬emptyI ∧ ⋀_j (field_j = term_j)`.
///
/// Sound because `I` holds at most one tuple: `I(t̄)` holds iff the unique
/// tuple exists and component-wise equals `t̄`. Terms that are variables
/// bound *outside* this atom stay as variables and become ordinary
/// equality constraints.
fn ground_input_atom(a: &Atom) -> Formula {
    let not_empty = Formula::not(Formula::InputEmpty { rel: a.rel.clone(), prev: a.prev });
    let eqs = a.terms.iter().enumerate().map(|(j, t)| {
        Formula::Eq(Term::Field { rel: a.rel.clone(), col: j, prev: a.prev }, t.clone())
    });
    Formula::and(std::iter::once(not_empty).chain(eqs))
}

/// Find a positive input atom in the conjunctive body that covers all
/// quantified vars; return it with the remaining conjuncts.
fn find_guard<'a>(
    body: &'a Formula,
    vars: &[String],
    inputs: &impl InputRels,
) -> Option<(&'a Atom, Vec<&'a Formula>)> {
    match body {
        Formula::Atom(a) if inputs.is_input(&a.rel) && covers(a, vars) => Some((a, vec![])),
        Formula::And(xs) => {
            for (i, x) in xs.iter().enumerate() {
                if let Formula::Atom(a) = x {
                    if inputs.is_input(&a.rel) && covers(a, vars) {
                        let rest = xs
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, f)| f)
                            .collect();
                        return Some((a, rest));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

fn covers(a: &Atom, vars: &[String]) -> bool {
    vars.iter().all(|v| a.terms.iter().any(|t| t.as_var() == Some(v)))
}

/// For guard atom `I(t1,…,tk)` and quantified vars `x̄`: produce
/// * match constraints `field_j = t_j` for positions whose term is not a
///   (first occurrence of a) quantified variable,
/// * the substitution `x ↦ field_{first position of x}`.
///
/// Repeated quantified variables (e.g. `I(x, x)`) yield a field-equality
/// constraint between the two positions.
fn guard_bindings(guard: &Atom, vars: &[String]) -> (Vec<Formula>, HashMap<String, Term>) {
    let mut constraints = Vec::new();
    let mut subst: HashMap<String, Term> = HashMap::new();
    for (j, t) in guard.terms.iter().enumerate() {
        let field = Term::Field { rel: guard.rel.clone(), col: j, prev: guard.prev };
        match t {
            Term::Var(v) if vars.contains(v) => {
                if let Some(first) = subst.get(v) {
                    constraints.push(Formula::Eq(field, first.clone()));
                } else {
                    subst.insert(v.clone(), field);
                }
            }
            other => constraints.push(Formula::Eq(field, other.clone())),
        }
    }
    (constraints, subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn inputs() -> impl InputRels {
        |r: &str| r == "pay" || r == "button" || r == "laptopsearch"
    }

    fn rewrite(src: &str) -> Formula {
        eliminate_input_quantifiers(&parse_formula(src).unwrap(), &inputs())
    }

    #[test]
    fn universal_guard_becomes_empty_or_implication() {
        let g = rewrite("forall x, y: pay(x, y) -> price(x, y)");
        // emptyI ∨ (true → price(field0, field1)) — no quantifiers remain
        let text = g.to_string();
        assert!(text.contains("empty(pay)"), "got {text}");
        assert!(text.contains("pay#0"), "got {text}");
        assert!(!text.contains("forall"), "got {text}");
    }

    #[test]
    fn existential_guard_becomes_nonempty_and_body() {
        let g = rewrite(r#"exists r, h, d: laptopsearch(r, h, d) & db(r, h, d)"#);
        let text = g.to_string();
        assert!(text.contains("!(empty(laptopsearch))"), "got {text}");
        assert!(text.contains("db(laptopsearch#0, laptopsearch#1, laptopsearch#2)"), "got {text}");
        assert!(!text.contains("exists"), "got {text}");
    }

    #[test]
    fn ground_input_atom_becomes_field_equalities() {
        let g = rewrite(r#"button("search")"#);
        assert_eq!(g.to_string(), r#"(!(empty(button)) & button#0 = "search")"#);
    }

    #[test]
    fn prev_flag_propagates() {
        let g = rewrite(r#"prev button("search")"#);
        assert_eq!(g.to_string(), r#"(!(empty(prev button)) & prev button#0 = "search")"#);
    }

    #[test]
    fn repeated_quantified_variable_emits_field_equality() {
        let g = rewrite("exists x: pay(x, x)");
        let text = g.to_string();
        assert!(text.contains("pay#1 = pay#0"), "got {text}");
    }

    #[test]
    fn mixed_positions_constrain_non_quantified_terms() {
        // y is free: guard position 1 must equal y
        let g = rewrite("exists x: pay(x, y) & price(x, y)");
        let text = g.to_string();
        assert!(text.contains("pay#1 = y"), "got {text}");
        assert!(text.contains("price(pay#0, y)"), "got {text}");
    }

    #[test]
    fn non_input_quantifiers_are_preserved() {
        let g = rewrite("exists x: db(x)");
        assert_eq!(g.to_string(), "(exists x: (db(x)))");
    }

    #[test]
    fn nested_quantifiers_are_both_eliminated() {
        let g = rewrite(r#"forall x: button(x) -> (exists y: pay(y, y) & price(y, x))"#);
        let text = g.to_string();
        assert!(!text.contains("forall") && !text.contains("exists"), "got {text}");
        assert!(text.contains("price(pay#0, button#0)"), "got {text}");
    }

    /// Semantic check: the rewrite agrees with direct evaluation on a
    /// singleton-input instance.
    #[test]
    fn rewrite_preserves_semantics_on_singletons() {
        use crate::eval::{eval, Bindings, EvalCtx, SchemaResolver};
        use std::sync::Arc;
        use wave_relalg::{Instance, RelKind, Schema, SymbolTable, Tuple};

        let mut schema = Schema::new();
        schema.declare("price", 2, RelKind::Database).unwrap();
        schema.declare("pay", 2, RelKind::Input).unwrap();
        let schema = Arc::new(schema);
        let mut symbols = SymbolTable::new();
        let i1 = symbols.constant("item1");
        let a100 = symbols.constant("100");
        let a200 = symbols.constant("200");
        let price = schema.lookup("price").unwrap();
        let pay = schema.lookup("pay").unwrap();

        let original = parse_formula("forall x, y: pay(x, y) -> price(x, y)").unwrap();
        let rewritten = eliminate_input_quantifiers(&original, &inputs());

        // three scenarios: empty input, correct payment, wrong payment
        let scenarios: Vec<(Option<(wave_relalg::Value, wave_relalg::Value)>, bool)> =
            vec![(None, true), (Some((i1, a100)), true), (Some((i1, a200)), false)];
        for (input, expected) in scenarios {
            let mut inst = Instance::empty(Arc::clone(&schema));
            inst.insert(price, Tuple::from([i1, a100]));
            if let Some((a, b)) = input {
                inst.insert(pay, Tuple::from([a, b]));
            }
            let ctx = EvalCtx {
                instance: &inst,
                symbols: &symbols,
                current_page: None,
                domain: &[i1, a100, a200],
            };
            let r = SchemaResolver(&schema);
            let v1 = eval(&original, &ctx, &r, &mut Bindings::new()).unwrap();
            let v2 = eval(&rewritten, &ctx, &r, &mut Bindings::new()).unwrap();
            assert_eq!(v1, expected, "original semantics for {input:?}");
            assert_eq!(v2, expected, "rewritten semantics for {input:?}");
        }
    }
}
