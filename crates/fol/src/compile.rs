//! Compilation of (safe-range) FO formulas to relational-algebra plans.
//!
//! This is the analogue of the paper's FO→SQL translation: rule bodies are
//! compiled once into parameterized plans ([`wave_relalg::Plan`]) and then
//! re-executed with fresh parameter bindings at every step of the search.
//! Input-tuple components ([`Term::Field`]) and empty-input flags become
//! parameter slots, allocated through a [`SlotMap`] shared by all plans of
//! a specification, so one binding pass per step serves every rule.
//!
//! The compiler handles the *safe-range* fragment: every free variable must
//! be ranged by a positive atom (or pinned by an equality to a ground
//! term), negation must be guarded, and disjuncts must share their free
//! variables. Input-bounded rule bodies always land in this fragment after
//! the [`crate::rewrite`] pass. Formulas outside the fragment are rejected
//! with [`CompileError::Unsafe`] and the caller falls back to the direct
//! evaluator — the same soundness-preserving division of labour the paper
//! describes for its SQL translation.
//!
//! ### Empty-input caveat
//!
//! When an input relation is empty, its field parameters are bound to a
//! sentinel value that occurs in no relation. Formulas produced by the
//! rewrite always test the empty flag *before* touching fields, so plans
//! never observe the sentinel in a semantically relevant position. (This
//! mirrors the paper's `emptyI` flag in the generated SQL.)

use crate::ast::{Atom, Formula, Term};
use crate::eval::prev_shadow_name;
use std::collections::HashMap;
use std::fmt;
use wave_relalg::{Plan, Pred, RelId, Scalar, Schema, SymbolTable};

/// Allocation of parameter slots for input-tuple fields and empty flags.
/// Shared across all compiled rules of a spec so the verifier performs one
/// binding pass per step.
#[derive(Debug, Default, Clone)]
pub struct SlotMap {
    fields: HashMap<(String, usize, bool), usize>,
    empties: HashMap<(String, bool), usize>,
    next: usize,
}

impl SlotMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Slot carrying component `col` of input relation `rel`.
    pub fn field_slot(&mut self, rel: &str, col: usize, prev: bool) -> usize {
        let next = &mut self.next;
        *self.fields.entry((rel.to_owned(), col, prev)).or_insert_with(|| {
            let s = *next;
            *next += 1;
            s
        })
    }

    /// Slot carrying the empty-flag of input relation `rel`.
    pub fn empty_slot(&mut self, rel: &str, prev: bool) -> usize {
        let next = &mut self.next;
        *self.empties.entry((rel.to_owned(), prev)).or_insert_with(|| {
            let s = *next;
            *next += 1;
            s
        })
    }

    /// Total number of slots allocated.
    pub fn len(&self) -> usize {
        self.next
    }

    /// True when no slots were allocated.
    pub fn is_empty(&self) -> bool {
        self.next == 0
    }

    /// Iterate `((rel, col, prev), slot)` field allocations.
    pub fn fields(&self) -> impl Iterator<Item = (&(String, usize, bool), usize)> {
        self.fields.iter().map(|(k, &v)| (k, v))
    }

    /// Iterate `((rel, prev), slot)` empty-flag allocations.
    pub fn empties(&self) -> impl Iterator<Item = (&(String, bool), usize)> {
        self.empties.iter().map(|(k, &v)| (k, v))
    }

    /// Origin of every allocated slot, indexed by slot number: the input
    /// relation it is bound from and whether that is the previous step's
    /// copy. Field and empty-flag slots look alike here — the memo only
    /// needs to know *which section* a slot's binding derives from.
    pub fn slot_origins(&self) -> Vec<(String, bool)> {
        let mut origins = vec![(String::new(), false); self.next];
        for ((rel, _, prev), slot) in self.fields() {
            origins[slot] = (rel.clone(), *prev);
        }
        for ((rel, prev), slot) in self.empties() {
            origins[slot] = (rel.clone(), *prev);
        }
        origins
    }
}

/// Why a formula could not be compiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Formula is outside the safe-range fragment; the message names the
    /// offending construct. Callers fall back to direct evaluation.
    Unsafe(String),
    UnknownRelation {
        rel: String,
        prev: bool,
    },
    UnknownConstant(String),
    ArityMismatch {
        rel: String,
        expected: usize,
        got: usize,
    },
    /// A requested head variable is not free in the body.
    MissingHeadVar(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsafe(m) => write!(f, "formula outside safe-range fragment: {m}"),
            CompileError::UnknownRelation { rel, prev } => {
                write!(f, "unknown relation {}{rel}", if *prev { "prev " } else { "" })
            }
            CompileError::UnknownConstant(c) => write!(f, "unknown constant {c:?}"),
            CompileError::ArityMismatch { rel, expected, got } => {
                write!(f, "atom {rel} has {got} terms, relation has arity {expected}")
            }
            CompileError::MissingHeadVar(v) => {
                write!(f, "head variable {v} is not free in the rule body")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compilation context.
pub struct CompileCtx<'a> {
    pub schema: &'a Schema,
    pub symbols: &'a SymbolTable,
    pub slots: &'a mut SlotMap,
}

impl CompileCtx<'_> {
    fn resolve(&self, rel: &str, prev: bool) -> Result<RelId, CompileError> {
        let name = if prev { prev_shadow_name(rel) } else { rel.to_owned() };
        self.schema
            .lookup(&name)
            .ok_or_else(|| CompileError::UnknownRelation { rel: rel.to_owned(), prev })
    }

    /// Conventional name of the nullary page-marker relation for `page`.
    pub fn page_marker_name(page: &str) -> String {
        format!("page${page}")
    }

    fn ground_scalar(&mut self, t: &Term) -> Result<Option<Scalar>, CompileError> {
        Ok(match t {
            Term::Const(c) => Some(Scalar::Const(
                self.symbols
                    .lookup_constant(c)
                    .ok_or_else(|| CompileError::UnknownConstant(c.clone()))?,
            )),
            Term::Field { rel, col, prev } => {
                Some(Scalar::Param(self.slots.field_slot(rel, *col, *prev)))
            }
            Term::Var(_) => None,
        })
    }
}

/// A compiled formula: a plan producing the satisfying assignments of
/// `cols` (one output column per free variable, in `cols` order).
#[derive(Clone, Debug)]
pub struct Compiled {
    pub plan: Plan,
    pub cols: Vec<String>,
}

fn unit() -> Plan {
    Plan::Values { width: 0, rows: vec![vec![]] }
}

fn empty_unit() -> Plan {
    Plan::Values { width: 0, rows: vec![] }
}

/// Compile a formula into a plan over its free variables.
pub fn compile(f: &Formula, ctx: &mut CompileCtx<'_>) -> Result<Compiled, CompileError> {
    match f {
        Formula::True => Ok(Compiled { plan: unit(), cols: vec![] }),
        Formula::False => Ok(Compiled { plan: empty_unit(), cols: vec![] }),
        Formula::Page(p) => {
            let marker = CompileCtx::page_marker_name(p);
            let id = ctx.schema.lookup(&marker).ok_or_else(|| CompileError::UnknownRelation {
                rel: marker.clone(),
                prev: false,
            })?;
            Ok(Compiled { plan: Plan::Scan(id), cols: vec![] })
        }
        Formula::InputEmpty { rel, prev } => {
            let slot = ctx.slots.empty_slot(rel, *prev);
            Ok(Compiled {
                plan: Plan::Select { input: Box::new(unit()), pred: Pred::EmptyFlag(slot) },
                cols: vec![],
            })
        }
        Formula::Atom(a) => compile_atom(a, ctx),
        Formula::Eq(a, b) => {
            let sa = ctx.ground_scalar(a)?;
            let sb = ctx.ground_scalar(b)?;
            match (sa, sb, a, b) {
                (Some(x), Some(y), _, _) => Ok(Compiled {
                    plan: Plan::Select { input: Box::new(unit()), pred: Pred::Eq(x, y) },
                    cols: vec![],
                }),
                (Some(x), None, _, Term::Var(v)) | (None, Some(x), Term::Var(v), _) => {
                    // x = v pins the variable: a one-row relation
                    Ok(Compiled {
                        plan: Plan::Values { width: 1, rows: vec![vec![x]] },
                        cols: vec![v.clone()],
                    })
                }
                _ => Err(CompileError::Unsafe(format!("unranged equality {f}"))),
            }
        }
        Formula::Ne(a, b) => {
            let sa = ctx.ground_scalar(a)?;
            let sb = ctx.ground_scalar(b)?;
            match (sa, sb) {
                (Some(x), Some(y)) => Ok(Compiled {
                    plan: Plan::Select { input: Box::new(unit()), pred: Pred::Ne(x, y) },
                    cols: vec![],
                }),
                _ => Err(CompileError::Unsafe(format!("unranged disequality {f}"))),
            }
        }
        Formula::Not(x) => match x.as_ref() {
            // push negation through the boolean structure so that open
            // subformulas end up under guarded or closed negations
            Formula::And(xs) => {
                compile_or(&xs.iter().cloned().map(Formula::not).collect::<Vec<_>>(), ctx)
            }
            Formula::Or(xs) => {
                compile_and(&xs.iter().cloned().map(Formula::not).collect::<Vec<_>>(), ctx)
            }
            Formula::Implies(a, b) => {
                compile_and(&[(**a).clone(), Formula::not((**b).clone())], ctx)
            }
            Formula::Not(y) => compile(y, ctx),
            Formula::Eq(a, b) => compile(&Formula::Ne(a.clone(), b.clone()), ctx),
            Formula::Ne(a, b) => compile(&Formula::Eq(a.clone(), b.clone()), ctx),
            Formula::Forall(vars, body) => compile(
                &Formula::Exists(vars.clone(), Box::new(Formula::not((**body).clone()))),
                ctx,
            ),
            // atoms, exists, page tests, flags: complement only when closed
            _ => {
                let inner = compile(x, ctx)?;
                if !inner.cols.is_empty() {
                    return Err(CompileError::Unsafe(format!("negation over open formula {x}")));
                }
                Ok(Compiled {
                    plan: Plan::Difference(Box::new(unit()), Box::new(inner.plan)),
                    cols: vec![],
                })
            }
        },
        Formula::And(xs) => compile_and(xs, ctx),
        Formula::Or(xs) => compile_or(xs, ctx),
        Formula::Implies(a, b) => {
            // a → b  ≡  ¬a ∨ b (compilable only when both sides are closed
            // or share free variables appropriately; compile_or enforces it)
            compile_or(&[Formula::not((**a).clone()), (**b).clone()], ctx)
        }
        Formula::Exists(vars, body) => {
            let inner = compile(body, ctx)?;
            let keep: Vec<usize> = inner
                .cols
                .iter()
                .enumerate()
                .filter(|(_, c)| !vars.contains(c))
                .map(|(i, _)| i)
                .collect();
            let cols: Vec<String> = keep.iter().map(|&i| inner.cols[i].clone()).collect();
            Ok(Compiled {
                plan: Plan::Project {
                    input: Box::new(inner.plan),
                    cols: keep.into_iter().map(Scalar::Col).collect(),
                },
                cols,
            })
        }
        Formula::Forall(vars, body) => {
            // ∀x̄ φ ≡ ¬∃x̄ ¬φ — compiles only when the result is closed
            let exists = Formula::Exists(vars.clone(), Box::new(Formula::not((**body).clone())));
            let inner = compile(&exists, ctx)?;
            if !inner.cols.is_empty() {
                return Err(CompileError::Unsafe(format!("universal over open formula {body}")));
            }
            Ok(Compiled {
                plan: Plan::Difference(Box::new(unit()), Box::new(inner.plan)),
                cols: vec![],
            })
        }
    }
}

fn compile_atom(a: &Atom, ctx: &mut CompileCtx<'_>) -> Result<Compiled, CompileError> {
    let id = ctx.resolve(&a.rel, a.prev)?;
    let arity = ctx.schema.arity(id);
    if arity != a.terms.len() {
        return Err(CompileError::ArityMismatch {
            rel: a.rel.clone(),
            expected: arity,
            got: a.terms.len(),
        });
    }
    let mut preds = Vec::new();
    let mut cols: Vec<String> = Vec::new();
    let mut keep: Vec<usize> = Vec::new();
    let mut first_pos: HashMap<&str, usize> = HashMap::new();
    for (j, t) in a.terms.iter().enumerate() {
        match t {
            Term::Var(v) => match first_pos.get(v.as_str()) {
                Some(&fst) => preds.push(Pred::Eq(Scalar::Col(j), Scalar::Col(fst))),
                None => {
                    first_pos.insert(v, j);
                    cols.push(v.clone());
                    keep.push(j);
                }
            },
            other => {
                let s = ctx.ground_scalar(other)?.expect("non-var terms are always ground");
                preds.push(Pred::Eq(Scalar::Col(j), s));
            }
        }
    }
    let mut plan = Plan::Scan(id);
    if !preds.is_empty() {
        plan = Plan::Select { input: Box::new(plan), pred: Pred::And(preds) };
    }
    plan =
        Plan::Project { input: Box::new(plan), cols: keep.into_iter().map(Scalar::Col).collect() };
    Ok(Compiled { plan, cols })
}

/// Fold a conjunction: ranging conjuncts join into the accumulated plan,
/// constraints (comparisons, guarded negation, empty flags) become
/// selections/anti-joins once their variables are covered.
fn compile_and(xs: &[Formula], ctx: &mut CompileCtx<'_>) -> Result<Compiled, CompileError> {
    let mut acc = Compiled { plan: unit(), cols: vec![] };
    let mut pending: Vec<&Formula> = xs.iter().collect();
    while !pending.is_empty() {
        // pass 1: integrate any constraint whose variables are covered
        let mut integrated = None;
        for (i, f) in pending.iter().enumerate() {
            if let Some(next) = try_constraint(f, &acc, ctx)? {
                acc = next;
                integrated = Some(i);
                break;
            }
        }
        if let Some(i) = integrated {
            pending.remove(i);
            continue;
        }
        // pass 2: join in the first independently compilable conjunct
        let mut joined = None;
        for (i, f) in pending.iter().enumerate() {
            match compile(f, ctx) {
                Ok(c) => {
                    acc = join(acc, c);
                    joined = Some(i);
                    break;
                }
                Err(CompileError::Unsafe(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        match joined {
            Some(i) => {
                pending.remove(i);
            }
            None => {
                return Err(CompileError::Unsafe(format!(
                    "conjunct {} cannot be ranged",
                    pending[0]
                )))
            }
        }
    }
    Ok(acc)
}

/// If `f` is a constraint applicable to `acc` (all its variables already in
/// `acc.cols`, or an extending equality), return the updated plan.
fn try_constraint(
    f: &Formula,
    acc: &Compiled,
    ctx: &mut CompileCtx<'_>,
) -> Result<Option<Compiled>, CompileError> {
    let col_of = |v: &str| acc.cols.iter().position(|c| c == v);
    let scalar_of = |t: &Term, ctx: &mut CompileCtx<'_>| -> Result<Option<Scalar>, CompileError> {
        match t {
            Term::Var(v) => Ok(col_of(v).map(Scalar::Col)),
            other => ctx.ground_scalar(other),
        }
    };
    match f {
        Formula::Eq(a, b) => {
            let sa = scalar_of(a, ctx)?;
            let sb = scalar_of(b, ctx)?;
            match (sa, sb, a, b) {
                (Some(x), Some(y), _, _) => Ok(Some(select(acc.clone(), Pred::Eq(x, y)))),
                // extending equality: v := covered scalar
                (Some(x), None, _, Term::Var(v)) | (None, Some(x), Term::Var(v), _) => {
                    let mut cols: Vec<Scalar> = (0..acc.cols.len()).map(Scalar::Col).collect();
                    cols.push(x);
                    let mut names = acc.cols.clone();
                    names.push(v.clone());
                    Ok(Some(Compiled {
                        plan: Plan::Project { input: Box::new(acc.plan.clone()), cols },
                        cols: names,
                    }))
                }
                _ => Ok(None),
            }
        }
        Formula::Ne(a, b) => {
            let sa = scalar_of(a, ctx)?;
            let sb = scalar_of(b, ctx)?;
            match (sa, sb) {
                (Some(x), Some(y)) => Ok(Some(select(acc.clone(), Pred::Ne(x, y)))),
                _ => Ok(None),
            }
        }
        Formula::InputEmpty { rel, prev } => {
            let slot = ctx.slots.empty_slot(rel, *prev);
            Ok(Some(select(acc.clone(), Pred::EmptyFlag(slot))))
        }
        Formula::Not(inner) => match inner.as_ref() {
            Formula::InputEmpty { rel, prev } => {
                let slot = ctx.slots.empty_slot(rel, *prev);
                Ok(Some(select(acc.clone(), Pred::Not(Box::new(Pred::EmptyFlag(slot))))))
            }
            Formula::Eq(a, b) => try_constraint(&Formula::Ne(a.clone(), b.clone()), acc, ctx),
            Formula::Ne(a, b) => try_constraint(&Formula::Eq(a.clone(), b.clone()), acc, ctx),
            body => {
                // guarded negation: fv(body) ⊆ acc.cols → anti-join
                let fv = crate::analysis::free_vars(body);
                if !fv.iter().all(|v| col_of(v).is_some()) {
                    return Ok(None);
                }
                let neg = match compile(body, ctx) {
                    Ok(c) => c,
                    Err(CompileError::Unsafe(_)) => return Ok(None),
                    Err(e) => return Err(e),
                };
                let on: Vec<(usize, usize)> = neg
                    .cols
                    .iter()
                    .enumerate()
                    .map(|(j, v)| (col_of(v).expect("fv checked"), j))
                    .collect();
                Ok(Some(Compiled {
                    plan: Plan::AntiJoin {
                        left: Box::new(acc.plan.clone()),
                        right: Box::new(neg.plan),
                        on,
                    },
                    cols: acc.cols.clone(),
                }))
            }
        },
        _ => Ok(None),
    }
}

fn select(acc: Compiled, pred: Pred) -> Compiled {
    Compiled { plan: Plan::Select { input: Box::new(acc.plan), pred }, cols: acc.cols }
}

/// Natural join of two compiled results on shared variable names.
fn join(left: Compiled, right: Compiled) -> Compiled {
    let lw = left.cols.len();
    let mut preds = Vec::new();
    let mut keep: Vec<usize> = (0..lw).collect();
    let mut cols = left.cols.clone();
    for (j, v) in right.cols.iter().enumerate() {
        match left.cols.iter().position(|c| c == v) {
            Some(i) => preds.push(Pred::Eq(Scalar::Col(i), Scalar::Col(lw + j))),
            None => {
                keep.push(lw + j);
                cols.push(v.clone());
            }
        }
    }
    let mut plan = Plan::Product(Box::new(left.plan), Box::new(right.plan));
    if !preds.is_empty() {
        plan = Plan::Select { input: Box::new(plan), pred: Pred::And(preds) };
    }
    let plan =
        Plan::Project { input: Box::new(plan), cols: keep.into_iter().map(Scalar::Col).collect() };
    Compiled { plan, cols }
}

/// Disjunction: all disjuncts must produce the same variable set.
fn compile_or(xs: &[Formula], ctx: &mut CompileCtx<'_>) -> Result<Compiled, CompileError> {
    let mut parts: Vec<Compiled> = Vec::with_capacity(xs.len());
    for x in xs {
        parts.push(compile(x, ctx)?);
    }
    let Some(first) = parts.first() else {
        return Ok(Compiled { plan: empty_unit(), cols: vec![] });
    };
    let target = first.cols.clone();
    let mut plan: Option<Plan> = None;
    for p in parts {
        let mut sorted_a = p.cols.clone();
        let mut sorted_b = target.clone();
        sorted_a.sort();
        sorted_b.sort();
        if sorted_a != sorted_b {
            return Err(CompileError::Unsafe(format!(
                "disjuncts bind different variables: {:?} vs {:?}",
                p.cols, target
            )));
        }
        // align column order with the target
        let cols: Vec<Scalar> = target
            .iter()
            .map(|v| Scalar::Col(p.cols.iter().position(|c| c == v).expect("same var set")))
            .collect();
        let aligned = Plan::Project { input: Box::new(p.plan), cols };
        plan = Some(match plan {
            None => aligned,
            Some(acc) => Plan::Union(Box::new(acc), Box::new(aligned)),
        });
    }
    Ok(Compiled { plan: plan.expect("nonempty disjunct list"), cols: target })
}

/// Compile a rule body as a query with a fixed head-variable order.
pub fn compile_query(
    body: &Formula,
    head: &[String],
    ctx: &mut CompileCtx<'_>,
) -> Result<Compiled, CompileError> {
    let inner = compile(body, ctx)?;
    let cols: Vec<Scalar> = head
        .iter()
        .map(|v| {
            inner
                .cols
                .iter()
                .position(|c| c == v)
                .map(Scalar::Col)
                .ok_or_else(|| CompileError::MissingHeadVar(v.clone()))
        })
        .collect::<Result<_, _>>()?;
    Ok(Compiled { plan: Plan::Project { input: Box::new(inner.plan), cols }, cols: head.to_vec() })
}

/// Compile a sentence as a boolean query (width-0 plan; non-empty = true).
pub fn compile_bool(f: &Formula, ctx: &mut CompileCtx<'_>) -> Result<Plan, CompileError> {
    let c = compile(f, ctx)?;
    if c.cols.is_empty() {
        Ok(c.plan)
    } else {
        // open formula as boolean: true iff some assignment satisfies it
        Ok(Plan::Project { input: Box::new(c.plan), cols: vec![] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use std::sync::Arc;
    use wave_relalg::{execute, Instance, Params, RelKind, Tuple, Value};

    struct Fx {
        schema: Arc<Schema>,
        symbols: SymbolTable,
        instance: Instance,
    }

    fn fx() -> Fx {
        let mut schema = Schema::new();
        schema.declare("price", 2, RelKind::Database).unwrap();
        schema.declare("stock", 1, RelKind::Database).unwrap();
        schema.declare("cart", 2, RelKind::State).unwrap();
        schema.declare("page$HP", 0, RelKind::Database).unwrap();
        let schema = Arc::new(schema);
        let mut symbols = SymbolTable::new();
        let i1 = symbols.constant("item1");
        let i2 = symbols.constant("item2");
        let a100 = symbols.constant("100");
        let a200 = symbols.constant("200");
        let mut instance = Instance::empty(Arc::clone(&schema));
        let price = schema.lookup("price").unwrap();
        let stock = schema.lookup("stock").unwrap();
        instance.insert(price, Tuple::from([i1, a100]));
        instance.insert(price, Tuple::from([i2, a200]));
        instance.insert(stock, Tuple::from([i1]));
        Fx { schema, symbols, instance }
    }

    fn run(fxt: &Fx, src: &str, head: &[&str]) -> Vec<Vec<Value>> {
        let f = parse_formula(src).unwrap();
        let mut slots = SlotMap::new();
        let mut ctx = CompileCtx { schema: &fxt.schema, symbols: &fxt.symbols, slots: &mut slots };
        let head: Vec<String> = head.iter().map(|s| s.to_string()).collect();
        let q = compile_query(&f, &head, &mut ctx).unwrap();
        q.plan.validate(&fxt.schema).unwrap();
        let rel = execute(&q.plan, &fxt.instance, &Params::none()).unwrap();
        rel.iter().map(|t| t.values().to_vec()).collect()
    }

    fn run_bool(fxt: &Fx, src: &str) -> bool {
        let f = parse_formula(src).unwrap();
        let mut slots = SlotMap::new();
        let mut ctx = CompileCtx { schema: &fxt.schema, symbols: &fxt.symbols, slots: &mut slots };
        let p = compile_bool(&f, &mut ctx).unwrap();
        !execute(&p, &fxt.instance, &Params::none()).unwrap().is_empty()
    }

    #[test]
    fn atom_with_constants_selects() {
        let f = fx();
        let rows = run(&f, r#"price(x, "100")"#, &["x"]);
        let i1 = f.symbols.lookup_constant("item1").unwrap();
        assert_eq!(rows, vec![vec![i1]]);
    }

    #[test]
    fn conjunction_joins_on_shared_vars() {
        let f = fx();
        let rows = run(&f, "price(x, y) & stock(x)", &["x", "y"]);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn guarded_negation_antijoins() {
        let f = fx();
        let rows = run(&f, "price(x, y) & !stock(x)", &["x"]);
        let i2 = f.symbols.lookup_constant("item2").unwrap();
        assert_eq!(rows, vec![vec![i2]]);
    }

    #[test]
    fn disjunction_unions_same_vars() {
        let f = fx();
        let rows = run(&f, r#"price(x, "100") | price(x, "200")"#, &["x"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn exists_projects_out() {
        let f = fx();
        let rows = run(&f, "exists y: price(x, y)", &["x"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn pinned_variable_equality() {
        let f = fx();
        let rows = run(&f, r#"x = "item1" & stock(x)"#, &["x"]);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn ground_sentences() {
        let f = fx();
        assert!(run_bool(&f, r#"price("item1", "100")"#));
        assert!(!run_bool(&f, r#"price("item1", "200")"#));
        assert!(run_bool(&f, r#"!price("item1", "200")"#));
        assert!(run_bool(&f, r#"exists x: stock(x)"#));
        assert!(run_bool(&f, r#"forall x: stock(x) -> price(x, "100")"#));
    }

    #[test]
    fn page_markers_compile_to_scans() {
        let f = fx();
        assert!(!run_bool(&f, "@HP"), "marker relation empty → not on HP");
        let mut f2 = fx();
        let hp = f2.schema.lookup("page$HP").unwrap();
        f2.instance.insert(hp, Tuple::from([]));
        assert!(run_bool(&f2, "@HP"));
    }

    #[test]
    fn unranged_variables_are_unsafe() {
        let f = fx();
        let form = parse_formula("x = y").unwrap();
        let mut slots = SlotMap::new();
        let mut ctx = CompileCtx { schema: &f.schema, symbols: &f.symbols, slots: &mut slots };
        assert!(matches!(compile(&form, &mut ctx), Err(CompileError::Unsafe(_))));
        let form2 = parse_formula("!price(x, y)").unwrap();
        assert!(matches!(compile(&form2, &mut ctx), Err(CompileError::Unsafe(_))));
    }

    #[test]
    fn missing_head_var_detected() {
        let f = fx();
        let form = parse_formula("stock(x)").unwrap();
        let mut slots = SlotMap::new();
        let mut ctx = CompileCtx { schema: &f.schema, symbols: &f.symbols, slots: &mut slots };
        assert_eq!(
            compile_query(&form, &["z".to_string()], &mut ctx).unwrap_err(),
            CompileError::MissingHeadVar("z".into())
        );
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut f = fx();
        let price = f.schema.lookup("price").unwrap();
        let i1 = f.symbols.lookup_constant("item1").unwrap();
        f.instance.insert(price, Tuple::from([i1, i1]));
        let rows = run(&f, "price(x, x)", &["x"]);
        assert_eq!(rows, vec![vec![i1]]);
    }

    #[test]
    fn field_terms_allocate_slots_and_bind() {
        let f = fx();
        // rewritten form of: exists x,y: pay(x,y) & price(x,y)
        let form = Formula::And(vec![
            Formula::not(Formula::InputEmpty { rel: "pay".into(), prev: false }),
            Formula::Atom(crate::ast::Atom {
                rel: "price".into(),
                prev: false,
                terms: vec![
                    Term::Field { rel: "pay".into(), col: 0, prev: false },
                    Term::Field { rel: "pay".into(), col: 1, prev: false },
                ],
            }),
        ]);
        let mut slots = SlotMap::new();
        let plan = {
            let mut ctx = CompileCtx { schema: &f.schema, symbols: &f.symbols, slots: &mut slots };
            compile_bool(&form, &mut ctx).unwrap()
        };
        assert_eq!(slots.len(), 3, "two fields + one empty flag");
        let mut params = Params::with_slots(slots.len());
        let empty_slot = slots.empties().next().unwrap().1;
        for (&(_, col, _), slot) in slots.fields() {
            let name = if col == 0 { "item1" } else { "100" };
            params.bind(slot, f.symbols.lookup_constant(name).unwrap());
        }
        params.set_empty(empty_slot, false);
        assert!(!execute(&plan, &f.instance, &params).unwrap().is_empty());
        params.set_empty(empty_slot, true);
        assert!(execute(&plan, &f.instance, &params).unwrap().is_empty());
    }
}
