//! Recursive-descent parser for first-order formulas.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! formula    := quantified
//! quantified := ('forall' | 'exists') vars ':' quantified | implication
//! implication:= disjunction ('->' implication)?
//! disjunction:= conjunction ('|' conjunction)*
//! conjunction:= unary ('&' unary)*
//! unary      := '!' unary | primary
//! primary    := 'true' | 'false' | '(' formula ')'
//!             | '@' IDENT                          (current page test)
//!             | 'prev'? IDENT '(' terms ')'        (relational atom)
//!             | term ('=' | '!=') term             (comparison)
//! term       := IDENT | STRING
//! vars       := IDENT (',' IDENT)*
//! ```

use crate::ast::{Atom, Formula, Term};
use crate::lexer::{lex, LexError, Token, TokenKind};
use crate::span::{LineCol, LineMap, Span};
use std::fmt;

/// Parse error with byte position and (when the parser was built from
/// source text) the resolved line/column of that position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    /// 1-based line/column of `pos`, when known.
    pub line_col: Option<LineCol>,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line_col {
            Some(lc) => write!(f, "parse error at {lc}: {}", self.message),
            None => write!(f, "parse error at byte {}: {}", self.pos, self.message),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { pos: e.pos, line_col: None, message: e.message }
    }
}

/// Token-stream parser. `wave-spec` builds on this type to parse full
/// specifications, so the cursor operations are public.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// End offset of the most recently consumed token (for span building).
    last_end: usize,
    /// Line map of the source text, when parsing from source.
    line_map: Option<LineMap>,
}

impl Parser {
    /// Parser over an already-lexed token stream.
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, last_end: 0, line_map: None }
    }

    /// Lex and wrap `src`. Errors produced by this parser resolve their
    /// positions to line/column pairs.
    pub fn from_source(src: &str) -> Result<Self, ParseError> {
        let map = LineMap::new(src);
        let tokens = lex(src).map_err(|e| ParseError {
            pos: e.pos,
            line_col: Some(map.resolve(e.pos)),
            message: e.message,
        })?;
        let mut p = Parser::new(tokens);
        p.line_map = Some(map);
        Ok(p)
    }

    /// Current token.
    pub fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    /// Current token kind.
    pub fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    /// Look ahead `n` tokens.
    pub fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    /// Advance and return the consumed token.
    pub fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        self.last_end = t.end;
        t
    }

    /// Start offset of the current (next unconsumed) token.
    pub fn next_start(&self) -> usize {
        self.peek().pos
    }

    /// End offset of the most recently consumed token. Combined with
    /// [`Parser::next_start`] this brackets a construct:
    /// `Span::new(start, p.prev_end())`.
    pub fn prev_end(&self) -> usize {
        self.last_end
    }

    /// Span from `start` to the end of the last consumed token.
    pub fn span_from(&self, start: usize) -> Span {
        Span::new(start, self.last_end)
    }

    /// Error at the current position.
    pub fn error(&self, message: impl Into<String>) -> ParseError {
        let pos = self.peek().pos;
        ParseError {
            pos,
            line_col: self.line_map.as_ref().map(|m| m.resolve(pos)),
            message: message.into(),
        }
    }

    /// Consume a specific token kind or fail.
    pub fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.peek_kind() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek_kind())))
        }
    }

    /// Consume an identifier or fail.
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    /// If the current token is the identifier `word`, consume it.
    pub fn eat_keyword(&mut self, word: &str) -> bool {
        if matches!(self.peek_kind(), TokenKind::Ident(s) if s == word) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// True if the current token is the identifier `word`.
    pub fn at_keyword(&self, word: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == word)
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    /// Parse a full formula.
    pub fn parse_formula(&mut self) -> Result<Formula, ParseError> {
        self.quantified()
    }

    fn quantified(&mut self) -> Result<Formula, ParseError> {
        for (kw, is_forall) in [("forall", true), ("exists", false)] {
            if self.at_keyword(kw) {
                self.bump();
                let vars = self.var_list()?;
                self.expect(&TokenKind::Colon)?;
                let body = self.quantified()?;
                return Ok(if is_forall {
                    Formula::Forall(vars, Box::new(body))
                } else {
                    Formula::Exists(vars, Box::new(body))
                });
            }
        }
        self.implication()
    }

    /// Parse `x, y, z` — a nonempty comma-separated variable list.
    pub fn var_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut vars = vec![self.expect_ident()?];
        while self.peek_kind() == &TokenKind::Comma {
            self.bump();
            vars.push(self.expect_ident()?);
        }
        Ok(vars)
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if self.peek_kind() == &TokenKind::Arrow {
            self.bump();
            let rhs = self.implication()?;
            Ok(Formula::Implies(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while self.peek_kind() == &TokenKind::Pipe {
            self.bump();
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("len 1") } else { Formula::Or(parts) })
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.peek_kind() == &TokenKind::Amp {
            self.bump();
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("len 1") } else { Formula::And(parts) })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.peek_kind() == &TokenKind::Bang {
            self.bump();
            let inner = self.unary()?;
            return Ok(Formula::Not(Box::new(inner)));
        }
        // quantifiers may start mid-conjunction; they scope maximally right
        if self.at_keyword("forall") || self.at_keyword("exists") {
            return self.quantified();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::LParen => {
                self.bump();
                // nested quantifiers are allowed inside parentheses
                let f = self.quantified()?;
                self.expect(&TokenKind::RParen)?;
                Ok(f)
            }
            TokenKind::At => {
                self.bump();
                let name = self.expect_ident()?;
                Ok(Formula::Page(name))
            }
            TokenKind::Ident(word) if word == "true" => {
                self.bump();
                Ok(Formula::True)
            }
            TokenKind::Ident(word) if word == "false" => {
                self.bump();
                Ok(Formula::False)
            }
            TokenKind::Ident(word) if word == "prev" => {
                self.bump();
                let rel = self.expect_ident()?;
                let terms = self.term_tuple()?;
                Ok(Formula::Atom(Atom { rel, prev: true, terms }))
            }
            TokenKind::Ident(name) => {
                // atom `name(...)` or comparison `name = term`
                if self.peek_ahead(1) == &TokenKind::LParen {
                    self.bump();
                    let terms = self.term_tuple()?;
                    Ok(Formula::Atom(Atom { rel: name, prev: false, terms }))
                } else {
                    let lhs = self.term()?;
                    self.comparison(lhs)
                }
            }
            TokenKind::Str(_) => {
                let lhs = self.term()?;
                self.comparison(lhs)
            }
            other => Err(self.error(format!("expected formula, found {other}"))),
        }
    }

    fn comparison(&mut self, lhs: Term) -> Result<Formula, ParseError> {
        match self.peek_kind() {
            TokenKind::Eq => {
                self.bump();
                let rhs = self.term()?;
                Ok(Formula::Eq(lhs, rhs))
            }
            TokenKind::Ne => {
                self.bump();
                let rhs = self.term()?;
                Ok(Formula::Ne(lhs, rhs))
            }
            other => Err(self.error(format!("expected '=' or '!=', found {other}"))),
        }
    }

    /// Parse `( term, term, … )` (possibly empty).
    pub fn term_tuple(&mut self) -> Result<Vec<Term>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut terms = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            terms.push(self.term()?);
            while self.peek_kind() == &TokenKind::Comma {
                self.bump();
                terms.push(self.term()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(terms)
    }

    /// Parse a term: identifier (variable) or string (constant).
    pub fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(v) => {
                self.bump();
                Ok(Term::Var(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Term::Const(s))
            }
            other => Err(self.error(format!("expected term, found {other}"))),
        }
    }
}

/// Parse a standalone formula from text, requiring all input be consumed.
pub fn parse_formula(src: &str) -> Result<Formula, ParseError> {
    let mut p = Parser::from_source(src)?;
    let f = p.parse_formula()?;
    if !p.at_eof() {
        return Err(p.error(format!("trailing input: {}", p.peek_kind())));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_payment_formula() {
        // ∀x∀y [pay(x,y) → price(x,y)]
        let f = parse_formula(r#"forall x, y: pay(x, y) -> price(x, y)"#).unwrap();
        match f {
            Formula::Forall(vars, body) => {
                assert_eq!(vars, vec!["x", "y"]);
                assert!(matches!(*body, Formula::Implies(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let f = parse_formula("a() | b() & c()").unwrap();
        match f {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::And(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn implication_is_right_associative() {
        let f = parse_formula("a() -> b() -> c()").unwrap();
        match f {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_lsp_option_rule_body() {
        let f = parse_formula(
            r#"criteria("laptop", "ram", r) & criteria("laptop", "hdd", h)
               & criteria("laptop", "display", d)"#,
        )
        .unwrap();
        assert!(matches!(f, Formula::And(ref xs) if xs.len() == 3));
    }

    #[test]
    fn parses_prev_atoms_and_page_tests() {
        let f = parse_formula(r#"prev button("search") & @LSP"#).unwrap();
        match f {
            Formula::And(xs) => {
                assert!(matches!(&xs[0], Formula::Atom(a) if a.prev && a.rel == "button"));
                assert!(matches!(&xs[1], Formula::Page(p) if p == "LSP"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_comparisons() {
        let f = parse_formula(r#"x = "search" | x != y"#).unwrap();
        assert!(matches!(f, Formula::Or(ref xs) if xs.len() == 2));
    }

    #[test]
    fn nullary_atoms() {
        let f = parse_formula("logged_in()").unwrap();
        assert!(matches!(f, Formula::Atom(a) if a.terms.is_empty()));
    }

    #[test]
    fn quantifier_scopes_to_the_right() {
        let f = parse_formula("exists x: r(x) & s(x)").unwrap();
        match f {
            Formula::Exists(_, body) => assert!(matches!(*body, Formula::And(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_formula("a() b()").is_err());
    }

    #[test]
    fn error_positions_point_at_problem() {
        let err = parse_formula("a() & ").unwrap_err();
        assert_eq!(err.pos, 6);
    }

    #[test]
    fn errors_from_source_carry_line_and_column() {
        let err = parse_formula("a() &\n  (b() &").unwrap_err();
        assert_eq!(err.line_col, Some(crate::span::LineCol { line: 2, col: 9 }));
        assert!(err.to_string().contains("parse error at 2:9"), "{err}");
    }

    #[test]
    fn span_helpers_bracket_constructs() {
        let mut p = Parser::from_source("foo(x, y)").unwrap();
        let start = p.next_start();
        p.parse_formula().unwrap();
        let span = p.span_from(start);
        assert_eq!((span.start, span.end), (0, 9));
    }

    #[test]
    fn display_parse_round_trip() {
        let texts = [
            r#"forall x, y: pay(x, y) -> price(x, y)"#,
            r#"exists r, h, d: laptopsearch(r, h, d) & button("search")"#,
            r#"!(a() & (b() | c()))"#,
            r#"x != "cancel""#,
        ];
        for t in texts {
            let f1 = parse_formula(t).unwrap();
            let f2 = parse_formula(&f1.to_string()).unwrap();
            assert_eq!(f1, f2, "round-trip failed for {t}");
        }
    }
}
