//! Source spans and line/column resolution.
//!
//! Every token carries its byte extent; the DSL parser aggregates token
//! extents into [`Span`]s on declarations and rules so that diagnostics
//! (parse errors, lint findings) can point at real source positions.
//! A [`LineMap`] converts byte offsets into 1-based line/column pairs and
//! recovers the text of a line for caret rendering.

use std::fmt;

/// A byte range into the source a construct was parsed from.
///
/// Spans are *metadata*: two ASTs that differ only in spans represent the
/// same specification. To keep structural equality (and the print/parse
/// round-trip guarantees built on it) span-agnostic, `PartialEq`, `Eq`,
/// `Hash` and `Ord` treat all spans as equal.
#[derive(Clone, Copy, Debug, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// The empty placeholder span (offset 0) used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end: end.max(start) }
    }

    /// A zero-width span at one offset.
    pub fn point(pos: usize) -> Span {
        Span { start: pos, end: pos }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// True for the placeholder produced by [`Span::DUMMY`] / `default()`.
    pub fn is_dummy(self) -> bool {
        self.start == 0 && self.end == 0
    }
}

impl PartialEq for Span {
    /// Always equal — spans are position metadata, not structure.
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

impl std::hash::Hash for Span {
    /// Hashes nothing, consistent with the all-equal `PartialEq`.
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineCol {
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Byte-offset → line/column resolver over one source text.
#[derive(Clone, Debug)]
pub struct LineMap {
    /// Byte offset of the start of each line (line 1 starts at offset 0).
    line_starts: Vec<usize>,
    /// Total source length, for clamping out-of-range offsets.
    len: usize,
}

impl LineMap {
    pub fn new(src: &str) -> LineMap {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts, len: src.len() }
    }

    /// Line/column (both 1-based) of a byte offset. Columns count bytes,
    /// which matches the ASCII-only surface syntax.
    pub fn resolve(&self, offset: usize) -> LineCol {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol { line: line + 1, col: offset - self.line_starts[line] + 1 }
    }

    /// The text of 1-based line `line` in `src` (no trailing newline).
    /// `src` must be the text the map was built from.
    pub fn line_text<'a>(&self, src: &'a str, line: usize) -> &'a str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self.line_starts.get(line).map(|&e| e - 1).unwrap_or(src.len());
        &src[start..end.max(start)]
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_lines_and_columns() {
        let src = "abc\ndef\n\nxyz";
        let map = LineMap::new(src);
        assert_eq!(map.resolve(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.resolve(2), LineCol { line: 1, col: 3 });
        assert_eq!(map.resolve(4), LineCol { line: 2, col: 1 });
        assert_eq!(map.resolve(8), LineCol { line: 3, col: 1 });
        assert_eq!(map.resolve(9), LineCol { line: 4, col: 1 });
        assert_eq!(map.resolve(12), LineCol { line: 4, col: 4 });
        // past-the-end clamps to the final position
        assert_eq!(map.resolve(1000), LineCol { line: 4, col: 4 });
    }

    #[test]
    fn recovers_line_text() {
        let src = "abc\ndef\n\nxyz";
        let map = LineMap::new(src);
        assert_eq!(map.line_text(src, 1), "abc");
        assert_eq!(map.line_text(src, 2), "def");
        assert_eq!(map.line_text(src, 3), "");
        assert_eq!(map.line_text(src, 4), "xyz");
        assert_eq!(map.line_text(src, 5), "");
        assert_eq!(map.lines(), 4);
    }

    #[test]
    fn spans_compare_equal_regardless_of_position() {
        assert_eq!(Span::new(3, 9), Span::new(100, 200));
        assert_eq!(Span::DUMMY, Span::point(42));
        assert!(Span::DUMMY.is_dummy());
        assert!(!Span::new(1, 2).is_dummy());
        // field-level check: Span's PartialEq is intentionally vacuous
        let joined = Span::new(3, 5).to(Span::new(10, 12));
        assert_eq!((joined.start, joined.end), (3, 12));
    }

    #[test]
    fn empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.resolve(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_text("", 1), "");
    }
}
