//! `wave-fol`: the first-order logic layer of the wave verifier.
//!
//! Provides the formula [`ast`], the shared [`lexer`] and formula
//! [`parser`], the static [`analysis`] passes (free variables,
//! input-boundedness — the restriction under which verification is
//! complete), the Section-4 input-quantifier elimination [`rewrite`], the
//! reference [`mod@eval`]uator, and the safe-range FO→plan [`mod@compile`]r that
//! produces the parameterized prepared plans the verifier executes at every
//! search step.

pub mod analysis;
pub mod ast;
pub mod compile;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod rewrite;
pub mod span;

pub use analysis::{
    check_input_bounded, check_option_rule, constants, free_vars, relations, IbViolation,
    OptionRuleViolation, RelKinds,
};
pub use ast::{Atom, Formula, Term};
pub use compile::{
    compile, compile_bool, compile_query, CompileCtx, CompileError, Compiled, SlotMap,
};
pub use eval::{
    answers, eval, prev_shadow_name, Bindings, EvalCtx, EvalError, RelResolver, SchemaResolver,
};
pub use parser::{parse_formula, ParseError, Parser};
pub use rewrite::eliminate_input_quantifiers;
pub use span::{LineCol, LineMap, Span};
