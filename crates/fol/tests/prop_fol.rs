//! Property-based cross-validation: the FO→plan compiler against the
//! direct evaluator on randomly generated safe-range formulas and random
//! instances — the two implementations of the logic must agree everywhere.

use proptest::prelude::*;
use std::sync::Arc;
use wave_fol::{
    answers, compile_query, eval, Bindings, CompileCtx, EvalCtx, Formula, SchemaResolver, SlotMap,
    Term,
};
use wave_relalg::{execute, Instance, Params, RelKind, Schema, SymbolTable, Tuple, Value};

/// The test schema: r(a, b), s(a), q(a, b).
fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.declare("r", 2, RelKind::Database).unwrap();
    s.declare("s", 1, RelKind::Database).unwrap();
    s.declare("q", 2, RelKind::Database).unwrap();
    Arc::new(s)
}

const CONSTS: [&str; 4] = ["c0", "c1", "c2", "c3"];

fn symbols() -> SymbolTable {
    let mut t = SymbolTable::new();
    for c in CONSTS {
        t.constant(c);
    }
    t
}

/// Raw tuples for the three relations `r`, `s`, `q`.
type RawInstance = (Vec<(u32, u32)>, Vec<u32>, Vec<(u32, u32)>);

/// Random instance over the four constants.
fn instance_strategy() -> impl Strategy<Value = RawInstance> {
    (
        prop::collection::vec((0u32..4, 0u32..4), 0..8),
        prop::collection::vec(0u32..4, 0..5),
        prop::collection::vec((0u32..4, 0u32..4), 0..8),
    )
}

fn build_instance(schema: &Arc<Schema>, (r, s, q): &RawInstance) -> Instance {
    let mut inst = Instance::empty(Arc::clone(schema));
    let rid = schema.lookup("r").unwrap();
    let sid = schema.lookup("s").unwrap();
    let qid = schema.lookup("q").unwrap();
    for &(a, b) in r {
        inst.insert(rid, Tuple::from([Value(a), Value(b)]));
    }
    for &a in s {
        inst.insert(sid, Tuple::from([Value(a)]));
    }
    for &(a, b) in q {
        inst.insert(qid, Tuple::from([Value(a), Value(b)]));
    }
    inst
}

/// Random safe-range formulas over free variables x, y: conjunctions of
/// positive atoms ranging both variables, with optional negated atoms,
/// comparisons, and an existential layer.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let var = |v: &str| Term::Var(v.to_string());
    let konst = (0usize..4).prop_map(|i| Term::Const(CONSTS[i].to_string()));

    let ranger = prop_oneof![
        Just(Formula::Atom(wave_fol::Atom {
            rel: "r".into(),
            prev: false,
            terms: vec![var("x"), var("y")],
        })),
        Just(Formula::Atom(wave_fol::Atom {
            rel: "q".into(),
            prev: false,
            terms: vec![var("x"), var("y")],
        })),
        Just(Formula::Atom(wave_fol::Atom {
            rel: "q".into(),
            prev: false,
            terms: vec![var("y"), var("x")],
        })),
    ];
    let constraint = prop_oneof![
        konst.clone().prop_map(move |c| Formula::Eq(Term::Var("x".into()), c)),
        konst.clone().prop_map(move |c| Formula::Ne(Term::Var("y".into()), c)),
        Just(Formula::Ne(Term::Var("x".into()), Term::Var("y".into()))),
        Just(Formula::not(Formula::Atom(wave_fol::Atom {
            rel: "s".into(),
            prev: false,
            terms: vec![Term::Var("x".into())],
        }))),
        Just(Formula::Atom(wave_fol::Atom {
            rel: "s".into(),
            prev: false,
            terms: vec![Term::Var("y".into())],
        })),
    ];
    (ranger, prop::collection::vec(constraint, 0..3))
        .prop_map(|(r, cs)| Formula::and(std::iter::once(r).chain(cs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The compiled plan and the direct evaluator produce the same answer
    /// sets for the free variables.
    #[test]
    fn compiled_plans_agree_with_evaluator(
        raw in instance_strategy(),
        f in formula_strategy(),
    ) {
        let schema = schema();
        let syms = symbols();
        let inst = build_instance(&schema, &raw);
        let head = vec!["x".to_string(), "y".to_string()];

        let mut slots = SlotMap::new();
        let compiled = {
            let mut ctx = CompileCtx { schema: &schema, symbols: &syms, slots: &mut slots };
            compile_query(&f, &head, &mut ctx).expect("safe-range formula compiles")
        };
        let plan_rows = execute(&compiled.plan, &inst, &Params::none()).unwrap();

        let domain: Vec<Value> = (0..4).map(Value).collect();
        let ctx = EvalCtx {
            instance: &inst,
            symbols: &syms,
            current_page: None,
            domain: &domain,
        };
        let eval_rows =
            answers(&f, &head, &ctx, &SchemaResolver(&schema)).expect("evaluates");

        let mut a: Vec<Vec<Value>> =
            plan_rows.iter().map(|t| t.values().to_vec()).collect();
        let mut b = eval_rows;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "formula: {}", f);
    }

    /// Existential closure: the compiled boolean agrees with the evaluator
    /// on the sentence ∃x ∃y φ.
    #[test]
    fn compiled_bool_agrees(raw in instance_strategy(), f in formula_strategy()) {
        let schema = schema();
        let syms = symbols();
        let inst = build_instance(&schema, &raw);
        let sentence = Formula::Exists(
            vec!["x".into(), "y".into()],
            Box::new(f),
        );
        let mut slots = SlotMap::new();
        let plan = {
            let mut ctx = CompileCtx { schema: &schema, symbols: &syms, slots: &mut slots };
            wave_fol::compile_bool(&sentence, &mut ctx).expect("compiles")
        };
        let by_plan = !execute(&plan, &inst, &Params::none()).unwrap().is_empty();
        let domain: Vec<Value> = (0..4).map(Value).collect();
        let ctx = EvalCtx {
            instance: &inst,
            symbols: &syms,
            current_page: None,
            domain: &domain,
        };
        let by_eval =
            eval(&sentence, &ctx, &SchemaResolver(&schema), &mut Bindings::new()).unwrap();
        prop_assert_eq!(by_plan, by_eval, "sentence: {}", sentence);
    }

    /// The input-quantifier rewrite preserves semantics on singleton-input
    /// instances (the invariant that licenses it).
    #[test]
    fn input_rewrite_preserves_semantics(
        raw in instance_strategy(),
        inp in prop::option::of((0u32..4, 0u32..4)),
        c1 in 0usize..4,
        c2 in 0usize..4,
    ) {
        let mut schema = Schema::new();
        schema.declare("r", 2, RelKind::Database).unwrap();
        schema.declare("s", 1, RelKind::Database).unwrap();
        schema.declare("q", 2, RelKind::Database).unwrap();
        schema.declare("inp", 2, RelKind::Input).unwrap();
        let schema = Arc::new(schema);
        let syms = symbols();
        let mut inst = build_instance_alt(&schema, &raw);
        if let Some((a, b)) = inp {
            let iid = schema.lookup("inp").unwrap();
            inst.insert(iid, Tuple::from([Value(a), Value(b)]));
        }
        // ∀v,w (inp(v,w) → r(v,w) ∨ v = c1) ∧ (∃v,w inp(v,w) ∧ q(v,w) ∨ w = c2)
        let src = format!(
            r#"(forall v, w: inp(v, w) -> (r(v, w) | v = "{}"))
               & ((exists v, w: inp(v, w) & (q(v, w) | w = "{}")) | s("{}"))"#,
            CONSTS[c1], CONSTS[c2], CONSTS[c1],
        );
        let f = wave_fol::parse_formula(&src).unwrap();
        let rewritten =
            wave_fol::eliminate_input_quantifiers(&f, &|r: &str| r == "inp");
        let domain: Vec<Value> = (0..4).map(Value).collect();
        let ctx = EvalCtx {
            instance: &inst,
            symbols: &syms,
            current_page: None,
            domain: &domain,
        };
        let resolver = SchemaResolver(&schema);
        let v1 = eval(&f, &ctx, &resolver, &mut Bindings::new()).unwrap();
        let v2 = eval(&rewritten, &ctx, &resolver, &mut Bindings::new()).unwrap();
        prop_assert_eq!(v1, v2, "original: {} rewritten: {}", f, rewritten);
    }
}

fn build_instance_alt(schema: &Arc<Schema>, raw: &RawInstance) -> Instance {
    let mut inst = Instance::empty(Arc::clone(schema));
    let rid = schema.lookup("r").unwrap();
    let sid = schema.lookup("s").unwrap();
    let qid = schema.lookup("q").unwrap();
    for &(a, b) in &raw.0 {
        inst.insert(rid, Tuple::from([Value(a), Value(b)]));
    }
    for &a in &raw.1 {
        inst.insert(sid, Tuple::from([Value(a)]));
    }
    for &(a, b) in &raw.2 {
        inst.insert(qid, Tuple::from([Value(a), Value(b)]));
    }
    inst
}
