//! Prepared queries: compile once, execute many times with fresh parameters.
//!
//! This mirrors the paper's use of JDBC prepared statements: the NDFS search
//! re-evaluates each rule body a very large number of times with different
//! current-input tuples, so the translation/validation work must be paid
//! once. A [`PreparedQuery`] owns a validated plan and an execution-count
//! statistic (useful for the ablation benchmarks).

use crate::exec::{execute, execute_counting, ExecError, ExecStats, Params};
use crate::instance::Instance;
use crate::optimize::optimize;
use crate::plan::{Plan, PlanError, PlanReads};
use crate::schema::Schema;
use crate::stats::InstanceStats;
use crate::tuple::Relation;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A validated, reusable query plan.
#[derive(Debug)]
pub struct PreparedQuery {
    plan: Plan,
    width: usize,
    param_slots: usize,
    executions: AtomicU64,
}

impl Clone for PreparedQuery {
    fn clone(&self) -> Self {
        PreparedQuery {
            plan: self.plan.clone(),
            width: self.width,
            param_slots: self.param_slots,
            executions: AtomicU64::new(self.executions.load(Ordering::Relaxed)),
        }
    }
}

impl PreparedQuery {
    /// Validate `plan` against `schema` and wrap it for repeated execution.
    pub fn prepare(schema: &Arc<Schema>, plan: Plan) -> Result<Self, PlanError> {
        let width = plan.validate(schema)?;
        let param_slots = plan.param_count();
        Ok(PreparedQuery { plan, width, param_slots, executions: AtomicU64::new(0) })
    }

    /// Output width of the query.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of parameter slots that must be bound before execution.
    pub fn param_slots(&self) -> usize {
        self.param_slots
    }

    /// How many times this query has been executed (for benchmarks).
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// The underlying plan (for plan-shape assertions in tests).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Execute with the given parameter bindings.
    pub fn run(&self, inst: &Instance, params: &Params) -> Result<Relation, ExecError> {
        self.executions.fetch_add(1, Ordering::Relaxed);
        execute(&self.plan, inst, params)
    }

    /// Execute as a boolean query: true iff the result is non-empty.
    pub fn run_bool(&self, inst: &Instance, params: &Params) -> Result<bool, ExecError> {
        Ok(!self.run(inst, params)?.is_empty())
    }

    /// Execute, accumulating operator counters into `stats`.
    pub fn run_counting(
        &self,
        inst: &Instance,
        params: &Params,
        stats: &mut ExecStats,
    ) -> Result<Relation, ExecError> {
        self.executions.fetch_add(1, Ordering::Relaxed);
        execute_counting(&self.plan, inst, params, stats)
    }

    /// The read-set: relations scanned and parameter slots consulted.
    /// This is what the delta-driven memo keys a cached result on.
    pub fn reads(&self) -> PlanReads {
        self.plan.reads()
    }

    /// A new prepared query whose plan has been rewritten against
    /// cardinality statistics (selection push-down, hash lowering). The
    /// rewritten plan computes the same relation; the execution counter
    /// starts fresh.
    pub fn optimized(&self, schema: &Arc<Schema>, stats: &InstanceStats) -> Self {
        let plan = optimize(&self.plan, schema, stats);
        debug_assert_eq!(plan.validate(schema), Ok(self.width), "rewrite must preserve width");
        PreparedQuery {
            plan,
            width: self.width,
            param_slots: self.param_slots,
            executions: AtomicU64::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Pred, Scalar};
    use crate::schema::RelKind;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn setup() -> (Arc<Schema>, Instance) {
        let mut s = Schema::new();
        s.declare("r", 1, RelKind::Database).unwrap();
        let s = Arc::new(s);
        let mut inst = Instance::empty(Arc::clone(&s));
        let r = s.lookup("r").unwrap();
        inst.insert(r, Tuple::from([Value(1)]));
        inst.insert(r, Tuple::from([Value(2)]));
        (s, inst)
    }

    #[test]
    fn prepare_rejects_invalid_plans() {
        let (s, _) = setup();
        let r = s.lookup("r").unwrap();
        let bad = Plan::Project { input: Box::new(Plan::Scan(r)), cols: vec![Scalar::Col(5)] };
        assert!(PreparedQuery::prepare(&s, bad).is_err());
    }

    #[test]
    fn run_counts_executions_and_rebinds() {
        let (s, inst) = setup();
        let r = s.lookup("r").unwrap();
        let q = PreparedQuery::prepare(
            &s,
            Plan::Select {
                input: Box::new(Plan::Scan(r)),
                pred: Pred::Eq(Scalar::Col(0), Scalar::Param(0)),
            },
        )
        .unwrap();
        assert_eq!(q.param_slots(), 1);
        let mut p = Params::with_slots(1);
        p.bind(0, Value(1));
        assert!(q.run_bool(&inst, &p).unwrap());
        p.bind(0, Value(9));
        assert!(!q.run_bool(&inst, &p).unwrap());
        assert_eq!(q.executions(), 2);
    }
}
