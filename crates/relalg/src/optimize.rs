//! Cardinality-guided plan rewriting.
//!
//! The compiler in `wave-fol` emits straightforward plans —
//! `Select{Product}` chains for conjunctive bodies, `SemiJoin`/`AntiJoin`
//! for guarded quantifiers — and the search re-executes them millions of
//! times. This pass rewrites a compiled plan against an
//! [`InstanceStats`] snapshot of the per-core base instance:
//!
//! 1. **Selection push-down**: conjuncts of a `Select` above a `Product`
//!    that mention only one side's columns move below the product, so
//!    filters run before the quadratic blow-up instead of after.
//! 2. **Hash lowering, cheapest-build-first**: a `Select{Product}` whose
//!    conjuncts include cross-side equalities becomes a
//!    [`Plan::HashJoin`] keyed on those columns, with the smaller
//!    (estimated) side as the hash build side; `SemiJoin`/`AntiJoin`
//!    lower to their hash forms when their (fixed) right build side is
//!    large enough. Lowering only fires when the relevant estimate
//!    clears [`HASH_BUILD_THRESHOLD`] rows — below that the nested loop
//!    wins on constant factors, which is exactly the "toy-sized
//!    database" regime the paper describes.
//!
//! Every rewrite is an algebraic identity over canonical relations, so
//! the optimized plan returns byte-identical results; `--naive-joins`
//! skips this pass entirely for the ablation benchmarks.

use crate::plan::{JoinKind, Plan, Pred, Scalar};
use crate::schema::Schema;
use crate::stats::InstanceStats;

/// Minimum estimated rows before a join is lowered to hash form. Small
/// enough that genuine database relations qualify, large enough that
/// the one-or-two-tuple input/state relations keep the cheaper nested
/// loop.
pub const HASH_BUILD_THRESHOLD: f64 = 8.0;

/// Rewrite `plan` using `stats`; the result computes the same relation
/// over every instance of `schema`.
pub fn optimize(plan: &Plan, schema: &Schema, stats: &InstanceStats) -> Plan {
    rewrite(plan.clone(), schema, stats)
}

/// Output width of an already-validated plan.
fn width(plan: &Plan, schema: &Schema) -> usize {
    match plan {
        Plan::Scan(r) => schema.arity(*r),
        Plan::Values { width, .. } => *width,
        Plan::Select { input, .. } => width(input, schema),
        Plan::Project { cols, .. } => cols.len(),
        Plan::Product(l, r) => width(l, schema) + width(r, schema),
        Plan::Union(l, _) | Plan::Difference(l, _) => width(l, schema),
        Plan::SemiJoin { left, .. } | Plan::AntiJoin { left, .. } => width(left, schema),
        Plan::HashJoin { left, right, kind, .. } => match kind {
            JoinKind::Inner => width(left, schema) + width(right, schema),
            JoinKind::Semi | JoinKind::Anti => width(left, schema),
        },
    }
}

fn rewrite(plan: Plan, schema: &Schema, stats: &InstanceStats) -> Plan {
    match plan {
        Plan::Scan(_) | Plan::Values { .. } => plan,
        Plan::Select { input, pred } => {
            let input = rewrite(*input, schema, stats);
            lower_select(input, pred, schema, stats)
        }
        Plan::Project { input, cols } => {
            Plan::Project { input: Box::new(rewrite(*input, schema, stats)), cols }
        }
        Plan::Product(l, r) => Plan::Product(
            Box::new(rewrite(*l, schema, stats)),
            Box::new(rewrite(*r, schema, stats)),
        ),
        Plan::Union(l, r) => {
            Plan::Union(Box::new(rewrite(*l, schema, stats)), Box::new(rewrite(*r, schema, stats)))
        }
        Plan::Difference(l, r) => Plan::Difference(
            Box::new(rewrite(*l, schema, stats)),
            Box::new(rewrite(*r, schema, stats)),
        ),
        Plan::SemiJoin { left, right, on } => {
            let left = rewrite(*left, schema, stats);
            let right = rewrite(*right, schema, stats);
            lower_filter_join(left, right, on, JoinKind::Semi, stats)
        }
        Plan::AntiJoin { left, right, on } => {
            let left = rewrite(*left, schema, stats);
            let right = rewrite(*right, schema, stats);
            lower_filter_join(left, right, on, JoinKind::Anti, stats)
        }
        Plan::HashJoin { left, right, on, kind } => Plan::HashJoin {
            left: Box::new(rewrite(*left, schema, stats)),
            right: Box::new(rewrite(*right, schema, stats)),
            on,
            kind,
        },
    }
}

/// Semi/anti joins already build on the right; switch to the hash form
/// when that build side is big enough. (Sides are fixed by semantics —
/// only inner joins get to pick the build side.)
fn lower_filter_join(
    left: Plan,
    right: Plan,
    on: Vec<(usize, usize)>,
    kind: JoinKind,
    stats: &InstanceStats,
) -> Plan {
    if !on.is_empty() && stats.estimate(&right) >= HASH_BUILD_THRESHOLD {
        Plan::HashJoin { left: Box::new(left), right: Box::new(right), on, kind }
    } else {
        match kind {
            JoinKind::Semi => Plan::SemiJoin { left: Box::new(left), right: Box::new(right), on },
            JoinKind::Anti => Plan::AntiJoin { left: Box::new(left), right: Box::new(right), on },
            JoinKind::Inner => unreachable!("inner joins lower via lower_select"),
        }
    }
}

/// Highest column index a predicate mentions, if any.
fn max_col(pred: &Pred) -> Option<usize> {
    let scal = |s: &Scalar| match *s {
        Scalar::Col(c) => Some(c),
        _ => None,
    };
    match pred {
        Pred::True | Pred::False | Pred::EmptyFlag(_) => None,
        Pred::Eq(a, b) | Pred::Ne(a, b) => scal(a).max(scal(b)),
        Pred::And(ps) | Pred::Or(ps) => ps.iter().filter_map(max_col).max(),
        Pred::Not(p) => max_col(p),
    }
}

/// Lowest column index a predicate mentions, if any.
fn min_col(pred: &Pred) -> Option<usize> {
    let scal = |s: &Scalar| match *s {
        Scalar::Col(c) => Some(c),
        _ => None,
    };
    match pred {
        Pred::True | Pred::False | Pred::EmptyFlag(_) => None,
        Pred::Eq(a, b) | Pred::Ne(a, b) => match (scal(a), scal(b)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        },
        Pred::And(ps) | Pred::Or(ps) => ps.iter().filter_map(min_col).min(),
        Pred::Not(p) => min_col(p),
    }
}

/// Shift every column reference down by `by` (for predicates pushed to
/// the right side of a product).
fn shift_cols(pred: Pred, by: usize) -> Pred {
    let scal = |s: Scalar| match s {
        Scalar::Col(c) => Scalar::Col(c - by),
        other => other,
    };
    match pred {
        Pred::True => Pred::True,
        Pred::False => Pred::False,
        Pred::EmptyFlag(i) => Pred::EmptyFlag(i),
        Pred::Eq(a, b) => Pred::Eq(scal(a), scal(b)),
        Pred::Ne(a, b) => Pred::Ne(scal(a), scal(b)),
        Pred::And(ps) => Pred::And(ps.into_iter().map(|p| shift_cols(p, by)).collect()),
        Pred::Or(ps) => Pred::Or(ps.into_iter().map(|p| shift_cols(p, by)).collect()),
        Pred::Not(p) => Pred::Not(Box::new(shift_cols(*p, by))),
    }
}

/// Flatten a predicate into its top-level conjuncts.
fn conjuncts(pred: Pred) -> Vec<Pred> {
    match pred {
        Pred::And(ps) => ps.into_iter().flat_map(conjuncts).collect(),
        Pred::True => vec![],
        other => vec![other],
    }
}

/// Rebuild a predicate from conjuncts.
fn conjoin(mut ps: Vec<Pred>) -> Pred {
    match ps.len() {
        0 => Pred::True,
        1 => ps.pop().unwrap(),
        _ => Pred::And(ps),
    }
}

/// Wrap `input` in a `Select` unless the predicate is trivially true.
fn select(input: Plan, pred: Pred) -> Plan {
    if pred == Pred::True {
        input
    } else {
        Plan::Select { input: Box::new(input), pred }
    }
}

/// Apply pushed-down conjuncts to a side, re-entering the lowering so a
/// pushed select can itself enable a nested rewrite.
fn apply_pushed(side: Plan, preds: Vec<Pred>, schema: &Schema, stats: &InstanceStats) -> Plan {
    if preds.is_empty() {
        side
    } else {
        lower_select(side, conjoin(preds), schema, stats)
    }
}

/// Push-down and hash-lowering for `Select { input, pred }` where
/// `input` is already rewritten.
fn lower_select(input: Plan, pred: Pred, schema: &Schema, stats: &InstanceStats) -> Plan {
    // Merge stacked selects so one pass sees all conjuncts.
    let (input, pred) = match input {
        Plan::Select { input: inner, pred: inner_pred } => {
            (*inner, Pred::And(vec![inner_pred, pred]))
        }
        other => (other, pred),
    };
    let Plan::Product(l, r) = input else {
        return select(input, pred);
    };
    let (l, r) = (*l, *r);
    let lw = width(&l, schema);

    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut on = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts(pred) {
        let lo = min_col(&c);
        let hi = max_col(&c);
        if hi.is_none() || hi.is_some_and(|m| m < lw) {
            // Left columns only (or no columns): run before the product.
            left_preds.push(c);
        } else if lo.is_some_and(|m| m >= lw) {
            // Right columns only: shift and run before the product.
            right_preds.push(shift_cols(c, lw));
        } else if let Pred::Eq(Scalar::Col(a), Scalar::Col(b)) = c {
            // A cross-side equality is a join key (lo < lw ≤ hi here).
            let (lc, rc) = if a < b { (a, b) } else { (b, a) };
            on.push((lc, rc - lw));
        } else {
            residual.push(c);
        }
    }

    let l = apply_pushed(l, left_preds, schema, stats);
    let r = apply_pushed(r, right_preds, schema, stats);

    let joined =
        if !on.is_empty() && stats.estimate(&l).max(stats.estimate(&r)) >= HASH_BUILD_THRESHOLD {
            // Build on the smaller side. Exec builds on the right, so when
            // the left is smaller the sides swap and a projection restores
            // the original column order.
            if stats.estimate(&l) < stats.estimate(&r) {
                let rw = width(&r, schema);
                let swapped_on = on.iter().map(|&(lc, rc)| (rc, lc)).collect();
                let join = Plan::HashJoin {
                    left: Box::new(r),
                    right: Box::new(l),
                    on: swapped_on,
                    kind: JoinKind::Inner,
                };
                let cols = (rw..rw + lw).chain(0..rw).map(Scalar::Col).collect();
                Plan::Project { input: Box::new(join), cols }
            } else {
                Plan::HashJoin { left: Box::new(l), right: Box::new(r), on, kind: JoinKind::Inner }
            }
        } else {
            // Too small for hash (or no key): keep any equalities as
            // residual conjuncts over the plain product.
            residual.splice(
                0..0,
                on.iter().map(|&(lc, rc)| Pred::Eq(Scalar::Col(lc), Scalar::Col(rc + lw))),
            );
            Plan::Product(Box::new(l), Box::new(r))
        };
    select(joined, conjoin(residual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, Params};
    use crate::instance::Instance;
    use crate::schema::RelKind;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use std::sync::Arc;

    fn setup(rows: u32) -> (Arc<Schema>, Instance) {
        let mut s = Schema::new();
        s.declare("edge", 2, RelKind::Database).unwrap();
        s.declare("node", 1, RelKind::Database).unwrap();
        let s = Arc::new(s);
        let mut inst = Instance::empty(Arc::clone(&s));
        let edge = s.lookup("edge").unwrap();
        let node = s.lookup("node").unwrap();
        for i in 0..rows {
            inst.insert(edge, Tuple::from([Value(i), Value(i % 7)]));
            inst.insert(node, Tuple::from([Value(i % 11)]));
        }
        (s, inst)
    }

    /// A `Select{Product}` with a cross equality, one left-only and one
    /// right-only conjunct — the shape `compile_query` emits for
    /// conjunctive rule bodies.
    fn join_shape(s: &Schema) -> Plan {
        let edge = s.lookup("edge").unwrap();
        let node = s.lookup("node").unwrap();
        Plan::Select {
            input: Box::new(Plan::Product(Box::new(Plan::Scan(edge)), Box::new(Plan::Scan(node)))),
            pred: Pred::And(vec![
                Pred::Eq(Scalar::Col(1), Scalar::Col(2)),
                Pred::Ne(Scalar::Col(0), Scalar::Const(Value(3))),
                Pred::Ne(Scalar::Col(2), Scalar::Const(Value(4))),
            ]),
        }
    }

    fn has_hash_join(plan: &Plan) -> bool {
        match plan {
            Plan::HashJoin { .. } => true,
            Plan::Scan(_) | Plan::Values { .. } => false,
            Plan::Select { input, .. } | Plan::Project { input, .. } => has_hash_join(input),
            Plan::Product(l, r) | Plan::Union(l, r) | Plan::Difference(l, r) => {
                has_hash_join(l) || has_hash_join(r)
            }
            Plan::SemiJoin { left, right, .. } | Plan::AntiJoin { left, right, .. } => {
                has_hash_join(left) || has_hash_join(right)
            }
        }
    }

    #[test]
    fn large_relations_lower_to_hash_and_agree() {
        let (s, inst) = setup(64);
        let plan = join_shape(&s);
        let stats = InstanceStats::collect(&inst);
        let opt = optimize(&plan, &s, &stats);
        assert!(has_hash_join(&opt), "expected a hash join:\n{}", opt.explain(&s));
        assert_eq!(plan.validate(&s), opt.validate(&s), "widths preserved");
        assert_eq!(
            execute(&plan, &inst, &Params::none()).unwrap(),
            execute(&opt, &inst, &Params::none()).unwrap(),
            "optimized plan changed the result"
        );
    }

    #[test]
    fn toy_relations_keep_the_nested_loop() {
        let (s, inst) = setup(2);
        let plan = join_shape(&s);
        let stats = InstanceStats::collect(&inst);
        let opt = optimize(&plan, &s, &stats);
        assert!(!has_hash_join(&opt), "toy build side must not hash:\n{}", opt.explain(&s));
        assert_eq!(
            execute(&plan, &inst, &Params::none()).unwrap(),
            execute(&opt, &inst, &Params::none()).unwrap()
        );
    }

    #[test]
    fn semi_and_anti_joins_lower_when_build_side_is_large() {
        let (s, inst) = setup(64);
        let edge = s.lookup("edge").unwrap();
        let node = s.lookup("node").unwrap();
        let stats = InstanceStats::collect(&inst);
        for (naive, kind) in [
            (
                Plan::SemiJoin {
                    left: Box::new(Plan::Scan(edge)),
                    right: Box::new(Plan::Scan(node)),
                    on: vec![(1, 0)],
                },
                JoinKind::Semi,
            ),
            (
                Plan::AntiJoin {
                    left: Box::new(Plan::Scan(edge)),
                    right: Box::new(Plan::Scan(node)),
                    on: vec![(1, 0)],
                },
                JoinKind::Anti,
            ),
        ] {
            let opt = optimize(&naive, &s, &stats);
            assert!(
                matches!(&opt, Plan::HashJoin { kind: k, .. } if *k == kind),
                "{kind:?} did not lower:\n{}",
                opt.explain(&s)
            );
            assert_eq!(
                execute(&naive, &inst, &Params::none()).unwrap(),
                execute(&opt, &inst, &Params::none()).unwrap()
            );
        }
    }

    #[test]
    fn pushdown_moves_single_side_conjuncts_below_the_product() {
        let (s, inst) = setup(2);
        let plan = join_shape(&s);
        let stats = InstanceStats::collect(&inst);
        let opt = optimize(&plan, &s, &stats);
        // The Ne filters must now sit below the Product.
        fn top_select_has_ne(plan: &Plan) -> bool {
            matches!(plan, Plan::Select { pred, .. }
                if conjuncts(pred.clone()).iter().any(|p| matches!(p, Pred::Ne(..))))
        }
        assert!(!top_select_has_ne(&opt), "Ne conjuncts must push down:\n{}", opt.explain(&s));
        assert_eq!(
            execute(&plan, &inst, &Params::none()).unwrap(),
            execute(&opt, &inst, &Params::none()).unwrap()
        );
    }

    #[test]
    fn cheapest_build_first_swaps_sides_and_restores_column_order() {
        // Left side much smaller than right: the optimizer must build on
        // the left, i.e. swap sides and re-project.
        let mut s = Schema::new();
        s.declare("small", 2, RelKind::Database).unwrap();
        s.declare("big", 2, RelKind::Database).unwrap();
        let s = Arc::new(s);
        let small = s.lookup("small").unwrap();
        let big = s.lookup("big").unwrap();
        let mut inst = Instance::empty(Arc::clone(&s));
        for i in 0..3u32 {
            inst.insert(small, Tuple::from([Value(i), Value(i + 100)]));
        }
        for i in 0..50u32 {
            inst.insert(big, Tuple::from([Value(i % 5), Value(i)]));
        }
        let plan = Plan::Select {
            input: Box::new(Plan::Product(Box::new(Plan::Scan(small)), Box::new(Plan::Scan(big)))),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Col(2)),
        };
        let stats = InstanceStats::collect(&inst);
        let opt = optimize(&plan, &s, &stats);
        assert!(
            matches!(&opt, Plan::Project { input, .. }
                if matches!(&**input, Plan::HashJoin { right, .. }
                    if matches!(&**right, Plan::Scan(r) if *r == small))),
            "expected swap-and-project with the small side as build:\n{}",
            opt.explain(&s)
        );
        assert_eq!(
            execute(&plan, &inst, &Params::none()).unwrap(),
            execute(&opt, &inst, &Params::none()).unwrap()
        );
    }
}
