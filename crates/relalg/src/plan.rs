//! Relational-algebra query plans with parameter slots.
//!
//! The paper translates the FO rule bodies to *parameterized* SQL prepared
//! statements: the plan is compiled once and re-executed with fresh
//! parameter bindings at every step of the search. Our equivalent is a small
//! algebra of plan nodes; scalar positions may reference a parameter slot
//! that is bound at execution time.

use crate::schema::{RelId, Schema};
use crate::value::Value;
use std::fmt;

/// A scalar expression usable in predicates and projections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scalar {
    /// Column of the input row (0-based).
    Col(usize),
    /// A literal value.
    Const(Value),
    /// A parameter slot, bound at execution time.
    Param(usize),
}

/// A boolean predicate over one row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pred {
    True,
    False,
    Eq(Scalar, Scalar),
    Ne(Scalar, Scalar),
    And(Vec<Pred>),
    Or(Vec<Pred>),
    Not(Box<Pred>),
    /// True iff the parameter slot is bound to "empty input" — the
    /// `emptyI` flag from the paper's Section 4 rewriting. Encoded as a
    /// dedicated predicate so plans stay purely relational otherwise.
    EmptyFlag(usize),
}

/// Which rows a [`Plan::HashJoin`] produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    /// Concatenated left++right rows for every match (equi-join).
    Inner,
    /// Left rows with at least one match (hash semi-join).
    Semi,
    /// Left rows with no match (hash anti-join).
    Anti,
}

/// A query plan node. Every plan produces a set of rows of a fixed width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Plan {
    /// All tuples of a stored relation.
    Scan(RelId),
    /// A literal relation: each row is a vector of scalars (columns are not
    /// allowed — only `Const`/`Param`).
    Values { width: usize, rows: Vec<Vec<Scalar>> },
    /// Rows of `input` satisfying `pred`.
    Select { input: Box<Plan>, pred: Pred },
    /// Reorder/duplicate/introduce columns.
    Project { input: Box<Plan>, cols: Vec<Scalar> },
    /// Cartesian product (widths add).
    Product(Box<Plan>, Box<Plan>),
    /// Union of two same-width plans.
    Union(Box<Plan>, Box<Plan>),
    /// Difference of two same-width plans (`left \ right`).
    Difference(Box<Plan>, Box<Plan>),
    /// Left rows that join with at least one right row on the given
    /// column pairs (semi-join, used for guarded existentials).
    SemiJoin { left: Box<Plan>, right: Box<Plan>, on: Vec<(usize, usize)> },
    /// Left rows that join with no right row (anti-join, used for guarded
    /// negation).
    AntiJoin { left: Box<Plan>, right: Box<Plan>, on: Vec<(usize, usize)> },
    /// Hash equi-join: a hash table is built on `right` keyed by its `on`
    /// columns, then probed with each left row. The optimizer lowers
    /// `Select{Product}`/`SemiJoin`/`AntiJoin` to this form when the
    /// build side is large enough to amortize the table; the result is
    /// canonicalized, so it is tuple-for-tuple identical to the
    /// nested-loop form.
    HashJoin { left: Box<Plan>, right: Box<Plan>, on: Vec<(usize, usize)>, kind: JoinKind },
}

/// Validation error for ill-formed plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A column index exceeds the input width.
    ColumnOutOfRange { col: usize, width: usize },
    /// Binary set operation over different widths.
    WidthMismatch { left: usize, right: usize },
    /// `Values` row has the wrong number of scalars.
    BadValuesRow { expected: usize, got: usize },
    /// `Values` rows may not reference columns.
    ColumnInValues,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ColumnOutOfRange { col, width } => {
                write!(f, "column {col} out of range for width {width}")
            }
            PlanError::WidthMismatch { left, right } => {
                write!(f, "set operation over widths {left} and {right}")
            }
            PlanError::BadValuesRow { expected, got } => {
                write!(f, "values row has {got} scalars, expected {expected}")
            }
            PlanError::ColumnInValues => write!(f, "column reference inside Values"),
        }
    }
}

impl std::error::Error for PlanError {}

impl Pred {
    fn validate(&self, width: usize) -> Result<(), PlanError> {
        let check = |s: &Scalar| match *s {
            Scalar::Col(c) if c >= width => Err(PlanError::ColumnOutOfRange { col: c, width }),
            _ => Ok(()),
        };
        match self {
            Pred::True | Pred::False | Pred::EmptyFlag(_) => Ok(()),
            Pred::Eq(a, b) | Pred::Ne(a, b) => {
                check(a)?;
                check(b)
            }
            Pred::And(ps) | Pred::Or(ps) => ps.iter().try_for_each(|p| p.validate(width)),
            Pred::Not(p) => p.validate(width),
        }
    }

    /// Highest parameter slot referenced, if any.
    pub fn max_param(&self) -> Option<usize> {
        let scalar = |s: &Scalar| match *s {
            Scalar::Param(i) => Some(i),
            _ => None,
        };
        match self {
            Pred::True | Pred::False => None,
            Pred::EmptyFlag(i) => Some(*i),
            Pred::Eq(a, b) | Pred::Ne(a, b) => scalar(a).max(scalar(b)),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().filter_map(Pred::max_param).max(),
            Pred::Not(p) => p.max_param(),
        }
    }
}

impl Plan {
    /// Validate the plan against a schema and return the output width.
    pub fn validate(&self, schema: &Schema) -> Result<usize, PlanError> {
        match self {
            Plan::Scan(r) => Ok(schema.arity(*r)),
            Plan::Values { width, rows } => {
                for row in rows {
                    if row.len() != *width {
                        return Err(PlanError::BadValuesRow { expected: *width, got: row.len() });
                    }
                    if row.iter().any(|s| matches!(s, Scalar::Col(_))) {
                        return Err(PlanError::ColumnInValues);
                    }
                }
                Ok(*width)
            }
            Plan::Select { input, pred } => {
                let w = input.validate(schema)?;
                pred.validate(w)?;
                Ok(w)
            }
            Plan::Project { input, cols } => {
                let w = input.validate(schema)?;
                for c in cols {
                    if let Scalar::Col(i) = c {
                        if *i >= w {
                            return Err(PlanError::ColumnOutOfRange { col: *i, width: w });
                        }
                    }
                }
                Ok(cols.len())
            }
            Plan::Product(l, r) => Ok(l.validate(schema)? + r.validate(schema)?),
            Plan::Union(l, r) | Plan::Difference(l, r) => {
                let lw = l.validate(schema)?;
                let rw = r.validate(schema)?;
                if lw != rw {
                    return Err(PlanError::WidthMismatch { left: lw, right: rw });
                }
                Ok(lw)
            }
            Plan::SemiJoin { left, right, on } | Plan::AntiJoin { left, right, on } => {
                let lw = left.validate(schema)?;
                let rw = right.validate(schema)?;
                for &(lc, rc) in on {
                    if lc >= lw {
                        return Err(PlanError::ColumnOutOfRange { col: lc, width: lw });
                    }
                    if rc >= rw {
                        return Err(PlanError::ColumnOutOfRange { col: rc, width: rw });
                    }
                }
                Ok(lw)
            }
            Plan::HashJoin { left, right, on, kind } => {
                let lw = left.validate(schema)?;
                let rw = right.validate(schema)?;
                for &(lc, rc) in on {
                    if lc >= lw {
                        return Err(PlanError::ColumnOutOfRange { col: lc, width: lw });
                    }
                    if rc >= rw {
                        return Err(PlanError::ColumnOutOfRange { col: rc, width: rw });
                    }
                }
                Ok(match kind {
                    JoinKind::Inner => lw + rw,
                    JoinKind::Semi | JoinKind::Anti => lw,
                })
            }
        }
    }

    /// Number of parameter slots the plan needs (1 + highest slot index).
    pub fn param_count(&self) -> usize {
        fn scal(s: &Scalar) -> Option<usize> {
            match *s {
                Scalar::Param(i) => Some(i),
                _ => None,
            }
        }
        fn walk(p: &Plan) -> Option<usize> {
            match p {
                Plan::Scan(_) => None,
                Plan::Values { rows, .. } => {
                    rows.iter().flat_map(|r| r.iter().filter_map(scal)).max()
                }
                Plan::Select { input, pred } => walk(input).max(pred.max_param()),
                Plan::Project { input, cols } => {
                    walk(input).max(cols.iter().filter_map(scal).max())
                }
                Plan::Product(l, r) | Plan::Union(l, r) | Plan::Difference(l, r) => {
                    walk(l).max(walk(r))
                }
                Plan::SemiJoin { left, right, .. }
                | Plan::AntiJoin { left, right, .. }
                | Plan::HashJoin { left, right, .. } => walk(left).max(walk(right)),
            }
        }
        walk(self).map_or(0, |m| m + 1)
    }

    /// Everything the plan's result can depend on besides the plan
    /// itself: the relations it scans and the parameter slots it
    /// consults. This is the read-set the delta-driven memo keys on.
    pub fn reads(&self) -> PlanReads {
        let mut reads = PlanReads::default();
        self.collect_reads(&mut reads);
        reads.rels.sort_unstable();
        reads.rels.dedup();
        reads.value_slots.sort_unstable();
        reads.value_slots.dedup();
        reads.empty_slots.sort_unstable();
        reads.empty_slots.dedup();
        reads
    }

    fn collect_reads(&self, out: &mut PlanReads) {
        let scal = |s: &Scalar, out: &mut PlanReads| {
            if let Scalar::Param(i) = *s {
                out.value_slots.push(i);
            }
        };
        match self {
            Plan::Scan(r) => out.rels.push(*r),
            Plan::Values { rows, .. } => {
                rows.iter().flatten().for_each(|s| scal(s, out));
            }
            Plan::Select { input, pred } => {
                input.collect_reads(out);
                pred.collect_reads(out);
            }
            Plan::Project { input, cols } => {
                input.collect_reads(out);
                cols.iter().for_each(|s| scal(s, out));
            }
            Plan::Product(l, r) | Plan::Union(l, r) | Plan::Difference(l, r) => {
                l.collect_reads(out);
                r.collect_reads(out);
            }
            Plan::SemiJoin { left, right, .. }
            | Plan::AntiJoin { left, right, .. }
            | Plan::HashJoin { left, right, .. } => {
                left.collect_reads(out);
                right.collect_reads(out);
            }
        }
    }
}

/// The read-set of a plan: scanned relations plus consulted parameter
/// slots, each sorted and deduplicated.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanReads {
    /// Relations scanned anywhere in the plan.
    pub rels: Vec<RelId>,
    /// Parameter slots read as values (`Scalar::Param`).
    pub value_slots: Vec<usize>,
    /// Parameter slots read as empty-input flags (`Pred::EmptyFlag`).
    pub empty_slots: Vec<usize>,
}

impl Pred {
    fn collect_reads(&self, out: &mut PlanReads) {
        let scal = |s: &Scalar, out: &mut PlanReads| {
            if let Scalar::Param(i) = *s {
                out.value_slots.push(i);
            }
        };
        match self {
            Pred::True | Pred::False => {}
            Pred::EmptyFlag(i) => out.empty_slots.push(*i),
            Pred::Eq(a, b) | Pred::Ne(a, b) => {
                scal(a, out);
                scal(b, out);
            }
            Pred::And(ps) | Pred::Or(ps) => ps.iter().for_each(|p| p.collect_reads(out)),
            Pred::Not(p) => p.collect_reads(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelKind;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.declare("r", 2, RelKind::Database).unwrap();
        s.declare("s", 1, RelKind::State).unwrap();
        s
    }

    #[test]
    fn scan_width_is_arity() {
        let s = schema();
        let r = s.lookup("r").unwrap();
        assert_eq!(Plan::Scan(r).validate(&s), Ok(2));
    }

    #[test]
    fn project_validates_columns() {
        let s = schema();
        let r = s.lookup("r").unwrap();
        let good = Plan::Project {
            input: Box::new(Plan::Scan(r)),
            cols: vec![Scalar::Col(1), Scalar::Col(0), Scalar::Const(Value(7))],
        };
        assert_eq!(good.validate(&s), Ok(3));
        let bad = Plan::Project { input: Box::new(Plan::Scan(r)), cols: vec![Scalar::Col(2)] };
        assert!(matches!(bad.validate(&s), Err(PlanError::ColumnOutOfRange { .. })));
    }

    #[test]
    fn union_checks_widths() {
        let s = schema();
        let r = s.lookup("r").unwrap();
        let st = s.lookup("s").unwrap();
        let bad = Plan::Union(Box::new(Plan::Scan(r)), Box::new(Plan::Scan(st)));
        assert!(matches!(bad.validate(&s), Err(PlanError::WidthMismatch { .. })));
    }

    #[test]
    fn param_count_sees_all_positions() {
        let s = schema();
        let r = s.lookup("r").unwrap();
        let p = Plan::Select {
            input: Box::new(Plan::Scan(r)),
            pred: Pred::And(vec![Pred::Eq(Scalar::Col(0), Scalar::Param(3)), Pred::EmptyFlag(5)]),
        };
        assert_eq!(p.param_count(), 6);
        assert_eq!(Plan::Scan(r).param_count(), 0);
    }

    #[test]
    fn values_rejects_columns() {
        let s = schema();
        let bad = Plan::Values { width: 1, rows: vec![vec![Scalar::Col(0)]] };
        assert_eq!(bad.validate(&s), Err(PlanError::ColumnInValues));
    }

    #[test]
    fn hash_join_width_depends_on_kind() {
        let s = schema();
        let r = s.lookup("r").unwrap();
        let st = s.lookup("s").unwrap();
        let join = |kind| Plan::HashJoin {
            left: Box::new(Plan::Scan(r)),
            right: Box::new(Plan::Scan(st)),
            on: vec![(0, 0)],
            kind,
        };
        assert_eq!(join(JoinKind::Inner).validate(&s), Ok(3));
        assert_eq!(join(JoinKind::Semi).validate(&s), Ok(2));
        assert_eq!(join(JoinKind::Anti).validate(&s), Ok(2));
        let bad = Plan::HashJoin {
            left: Box::new(Plan::Scan(r)),
            right: Box::new(Plan::Scan(st)),
            on: vec![(0, 1)],
            kind: JoinKind::Inner,
        };
        assert!(matches!(bad.validate(&s), Err(PlanError::ColumnOutOfRange { col: 1, width: 1 })));
    }

    #[test]
    fn reads_collects_rels_and_slots() {
        let s = schema();
        let r = s.lookup("r").unwrap();
        let st = s.lookup("s").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::SemiJoin {
                left: Box::new(Plan::Scan(r)),
                right: Box::new(Plan::Scan(st)),
                on: vec![(0, 0)],
            }),
            pred: Pred::And(vec![
                Pred::Eq(Scalar::Col(0), Scalar::Param(4)),
                Pred::EmptyFlag(2),
                Pred::Eq(Scalar::Col(1), Scalar::Param(4)),
            ]),
        };
        let reads = plan.reads();
        assert_eq!(reads.rels, vec![r, st]);
        assert_eq!(reads.value_slots, vec![4], "deduplicated");
        assert_eq!(reads.empty_slots, vec![2]);
    }
}

impl Plan {
    /// EXPLAIN-style rendering of the plan tree (the counterpart of a SQL
    /// EXPLAIN for the compiled rule bodies).
    pub fn explain(&self, schema: &Schema) -> String {
        let mut out = String::new();
        self.explain_into(schema, 0, &mut out);
        out
    }

    fn explain_into(&self, schema: &Schema, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan(r) => {
                let _ = writeln!(out, "{pad}Scan {}", schema.name(*r));
            }
            Plan::Values { width, rows } => {
                let _ = writeln!(out, "{pad}Values width={width} rows={}", rows.len());
            }
            Plan::Select { input, pred } => {
                let _ = writeln!(out, "{pad}Select {pred:?}");
                input.explain_into(schema, depth + 1, out);
            }
            Plan::Project { input, cols } => {
                let _ = writeln!(out, "{pad}Project {cols:?}");
                input.explain_into(schema, depth + 1, out);
            }
            Plan::Product(l, r) => {
                let _ = writeln!(out, "{pad}Product");
                l.explain_into(schema, depth + 1, out);
                r.explain_into(schema, depth + 1, out);
            }
            Plan::Union(l, r) => {
                let _ = writeln!(out, "{pad}Union");
                l.explain_into(schema, depth + 1, out);
                r.explain_into(schema, depth + 1, out);
            }
            Plan::Difference(l, r) => {
                let _ = writeln!(out, "{pad}Difference");
                l.explain_into(schema, depth + 1, out);
                r.explain_into(schema, depth + 1, out);
            }
            Plan::SemiJoin { left, right, on } => {
                let _ = writeln!(out, "{pad}SemiJoin on {on:?}");
                left.explain_into(schema, depth + 1, out);
                right.explain_into(schema, depth + 1, out);
            }
            Plan::AntiJoin { left, right, on } => {
                let _ = writeln!(out, "{pad}AntiJoin on {on:?}");
                left.explain_into(schema, depth + 1, out);
                right.explain_into(schema, depth + 1, out);
            }
            Plan::HashJoin { left, right, on, kind } => {
                let _ = writeln!(out, "{pad}HashJoin({kind:?}) on {on:?} build=right");
                left.explain_into(schema, depth + 1, out);
                right.explain_into(schema, depth + 1, out);
            }
        }
    }

    /// One-line operator-tree skeleton (no predicates or column lists),
    /// e.g. `Sel(HJ-inner(Scan,Scan))` — the "plan shape" column of the
    /// profiler's attribution table, where [`Plan::explain`] would be
    /// too wide.
    pub fn shape(&self) -> String {
        match self {
            Plan::Scan(_) => "Scan".to_string(),
            Plan::Values { rows, .. } => format!("Vals[{}]", rows.len()),
            Plan::Select { input, .. } => format!("Sel({})", input.shape()),
            Plan::Project { input, .. } => format!("Proj({})", input.shape()),
            Plan::Product(l, r) => format!("Prod({},{})", l.shape(), r.shape()),
            Plan::Union(l, r) => format!("Union({},{})", l.shape(), r.shape()),
            Plan::Difference(l, r) => format!("Diff({},{})", l.shape(), r.shape()),
            Plan::SemiJoin { left, right, .. } => {
                format!("Semi({},{})", left.shape(), right.shape())
            }
            Plan::AntiJoin { left, right, .. } => {
                format!("Anti({},{})", left.shape(), right.shape())
            }
            Plan::HashJoin { left, right, kind, .. } => {
                let k = match kind {
                    JoinKind::Inner => "inner",
                    JoinKind::Semi => "semi",
                    JoinKind::Anti => "anti",
                };
                format!("HJ-{k}({},{})", left.shape(), right.shape())
            }
        }
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use crate::schema::RelKind;

    #[test]
    fn explain_renders_the_tree() {
        let mut s = Schema::new();
        s.declare("r", 2, RelKind::Database).unwrap();
        let r = s.lookup("r").unwrap();
        let plan = Plan::Project {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::Scan(r)),
                pred: Pred::Eq(Scalar::Col(0), Scalar::Param(0)),
            }),
            cols: vec![Scalar::Col(1)],
        };
        let text = plan.explain(&s);
        assert!(text.contains("Project"), "{text}");
        assert!(text.contains("Select"), "{text}");
        assert!(text.contains("Scan r"), "{text}");
        // indentation shows nesting
        assert!(text.contains("  Select"), "{text}");
        assert!(text.contains("    Scan r"), "{text}");
    }
}
