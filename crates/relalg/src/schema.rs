//! Relation and database schemas.
//!
//! The verifier manipulates five kinds of relations with different
//! lifecycles: database relations (fixed during a run), state relations
//! (updated each step), input relations (≤1 tuple chosen per step by the
//! user), action relations (recomputed each step), and previous-input
//! relations (the previous step's inputs, still visible to rules). The
//! schema records the kind so rule validation and the dataflow analysis can
//! treat each correctly.

use std::collections::HashMap;
use std::fmt;

/// The lifecycle kind of a relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelKind {
    /// Underlying database relation: fixed during a run.
    Database,
    /// State relation: persists across steps, updated by insert/delete rules.
    State,
    /// Input relation: holds at most one tuple, the user's current choice.
    Input,
    /// Input constant: a nullary-keyed single value provided as text input.
    /// Modeled as an arity-1 input relation holding at most one tuple.
    InputConstant,
    /// Action relation: recomputed from scratch each step.
    Action,
}

impl RelKind {
    /// True for the two input flavors.
    pub fn is_input(self) -> bool {
        matches!(self, RelKind::Input | RelKind::InputConstant)
    }
}

/// Identifier of a relation inside a [`Schema`]. Indexes are dense, so
/// instances can store relations in a flat vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// Raw index into schema-ordered storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Declaration of one relation: name, arity, kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelDecl {
    pub name: String,
    pub arity: usize,
    pub kind: RelKind,
}

/// A database schema: an ordered list of relation declarations with
/// name-based lookup. Relation order is the declaration order, which the
/// bitmap codecs rely on for determinism.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    decls: Vec<RelDecl>,
    by_name: HashMap<String, RelId>,
}

/// Error produced when declaring a relation whose name is already taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateRelation(pub String);

impl fmt::Display for DuplicateRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "relation {:?} declared twice", self.0)
    }
}

impl std::error::Error for DuplicateRelation {}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation. Names are unique across all kinds.
    pub fn declare(
        &mut self,
        name: &str,
        arity: usize,
        kind: RelKind,
    ) -> Result<RelId, DuplicateRelation> {
        if self.by_name.contains_key(name) {
            return Err(DuplicateRelation(name.to_owned()));
        }
        let id = RelId(self.decls.len() as u32);
        self.decls.push(RelDecl { name: name.to_owned(), arity, kind });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Find a relation by name.
    pub fn lookup(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Declaration of a relation.
    pub fn decl(&self, id: RelId) -> &RelDecl {
        &self.decls[id.index()]
    }

    /// Relation name.
    pub fn name(&self, id: RelId) -> &str {
        &self.decls[id.index()].name
    }

    /// Relation arity.
    pub fn arity(&self, id: RelId) -> usize {
        self.decls[id.index()].arity
    }

    /// Relation kind.
    pub fn kind(&self, id: RelId) -> RelKind {
        self.decls[id.index()].kind
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True when nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// All relation ids in declaration order.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.decls.len() as u32).map(RelId)
    }

    /// All relations of a given kind, in declaration order.
    pub fn rels_of_kind(&self, kind: RelKind) -> impl Iterator<Item = RelId> + '_ {
        self.rels().filter(move |&r| self.kind(r) == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut s = Schema::new();
        let user = s.declare("user", 2, RelKind::Database).unwrap();
        let cart = s.declare("cart", 2, RelKind::State).unwrap();
        assert_eq!(s.lookup("user"), Some(user));
        assert_eq!(s.lookup("cart"), Some(cart));
        assert_eq!(s.lookup("ghost"), None);
        assert_eq!(s.arity(user), 2);
        assert_eq!(s.kind(cart), RelKind::State);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.declare("r", 1, RelKind::Database).unwrap();
        let err = s.declare("r", 2, RelKind::State).unwrap_err();
        assert_eq!(err, DuplicateRelation("r".into()));
    }

    #[test]
    fn kind_filtering() {
        let mut s = Schema::new();
        s.declare("db1", 1, RelKind::Database).unwrap();
        s.declare("in1", 1, RelKind::Input).unwrap();
        s.declare("db2", 1, RelKind::Database).unwrap();
        s.declare("name", 1, RelKind::InputConstant).unwrap();
        let dbs: Vec<_> = s.rels_of_kind(RelKind::Database).collect();
        assert_eq!(dbs.len(), 2);
        assert!(s.kind(s.lookup("in1").unwrap()).is_input());
        assert!(s.kind(s.lookup("name").unwrap()).is_input());
        assert!(!s.kind(s.lookup("db1").unwrap()).is_input());
    }
}
