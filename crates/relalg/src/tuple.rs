//! Tuples and relations (finite sets of same-arity tuples).
//!
//! Relations are stored as sorted, deduplicated vectors of tuples. In the
//! verifier workload every relation instance is tiny (a handful of tuples),
//! so a sorted vector beats hash sets on both memory and iteration cost and
//! gives a canonical representation for free — important because relation
//! contents participate in the visited-configuration encoding.
//!
//! Tuples are immutable and `Arc`-backed: cloning a tuple bumps a
//! reference count instead of copying its values, so the search layers
//! above (pseudoconfiguration stores, successor caches, counterexample
//! traces) share tuple storage instead of deep-cloning it. The
//! [`TupleInterner`] takes this one step further and hash-conses equal
//! tuples to a single allocation.

use crate::value::Value;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// An immutable tuple of interned values. Clones share the allocation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at column `i` (panics when out of range — arity errors are
    /// programming bugs caught by schema validation upstream).
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(v: [Value; N]) -> Self {
        Tuple(Arc::new(v))
    }
}

/// A hash-consing store for tuples: equal tuples intern to one shared
/// allocation, so equality checks above the interner are cheap (the
/// `Arc` pointer comparison short-circuits) and duplicated tuples across
/// facts, relations, and configurations cost one copy of their values.
#[derive(Debug, Default)]
pub struct TupleInterner {
    set: HashSet<Tuple>,
}

impl TupleInterner {
    pub fn new() -> TupleInterner {
        TupleInterner::default()
    }

    /// The canonical copy of `t` (inserting it if new).
    pub fn intern(&mut self, t: Tuple) -> Tuple {
        match self.set.get(&t) {
            Some(canonical) => canonical.clone(),
            None => {
                self.set.insert(t.clone());
                t
            }
        }
    }

    /// Number of distinct tuples interned.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// A relation instance: a canonical (sorted, deduplicated) set of tuples,
/// all of the same arity.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation { arity, tuples: Vec::new() }
    }

    /// Build from an iterator of tuples; deduplicates and sorts.
    ///
    /// Panics if tuples disagree on arity (schema violations are bugs).
    pub fn from_tuples(arity: usize, iter: impl IntoIterator<Item = Tuple>) -> Self {
        let mut tuples: Vec<Tuple> = iter.into_iter().collect();
        for t in &tuples {
            assert_eq!(t.arity(), arity, "tuple arity mismatch");
        }
        tuples.sort_unstable();
        tuples.dedup();
        Relation { arity, tuples }
    }

    /// Relation arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test (binary search over the canonical order).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// Insert a tuple, keeping canonical order. Returns true if inserted.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.arity, "tuple arity mismatch");
        match self.tuples.binary_search(&t) {
            Ok(_) => false,
            Err(pos) => {
                self.tuples.insert(pos, t);
                true
            }
        }
    }

    /// Remove a tuple. Returns true if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        match self.tuples.binary_search(t) {
            Ok(pos) => {
                self.tuples.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// The single tuple of a singleton relation, if any.
    pub fn only(&self) -> Option<&Tuple> {
        if self.tuples.len() == 1 {
            self.tuples.first()
        } else {
            None
        }
    }

    /// Set union with another relation of the same arity.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity);
        Relation::from_tuples(self.arity, self.iter().chain(other.iter()).cloned())
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity);
        Relation::from_tuples(self.arity, self.iter().filter(|t| !other.contains(t)).cloned())
    }

    /// Every distinct value appearing anywhere in the relation.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut vals: Vec<Value> =
            self.tuples.iter().flat_map(|t| t.values().iter().copied()).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.tuples.iter()).finish()
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation; arity is taken from the first tuple
    /// (empty iterators produce an arity-0 relation).
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let tuples: Vec<Tuple> = iter.into_iter().collect();
        let arity = tuples.first().map_or(0, Tuple::arity);
        Relation::from_tuples(arity, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[u32]) -> Tuple {
        Tuple::from(vals.iter().map(|&v| Value(v)).collect::<Vec<_>>())
    }

    #[test]
    fn from_tuples_dedups_and_sorts() {
        let r = Relation::from_tuples(2, vec![t(&[2, 1]), t(&[1, 2]), t(&[2, 1])]);
        assert_eq!(r.len(), 2);
        let collected: Vec<_> = r.iter().cloned().collect();
        assert_eq!(collected, vec![t(&[1, 2]), t(&[2, 1])]);
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::empty(1);
        assert!(r.insert(t(&[5])));
        assert!(!r.insert(t(&[5])), "duplicate insert is a no-op");
        assert!(r.contains(&t(&[5])));
        assert!(r.remove(&t(&[5])));
        assert!(!r.remove(&t(&[5])));
        assert!(r.is_empty());
    }

    #[test]
    fn union_and_difference() {
        let a = Relation::from_tuples(1, vec![t(&[1]), t(&[2])]);
        let b = Relation::from_tuples(1, vec![t(&[2]), t(&[3])]);
        assert_eq!(a.union(&b).len(), 3);
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&t(&[1])));
    }

    #[test]
    fn only_identifies_singletons() {
        let mut r = Relation::empty(2);
        assert!(r.only().is_none());
        r.insert(t(&[1, 2]));
        assert_eq!(r.only(), Some(&t(&[1, 2])));
        r.insert(t(&[3, 4]));
        assert!(r.only().is_none());
    }

    #[test]
    fn active_domain_is_sorted_and_deduped() {
        let r = Relation::from_tuples(2, vec![t(&[3, 1]), t(&[1, 2])]);
        let dom = r.active_domain();
        assert_eq!(dom, vec![Value(1), Value(2), Value(3)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::empty(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn interner_hash_conses() {
        let mut interner = TupleInterner::new();
        let a = interner.intern(t(&[1, 2]));
        let b = interner.intern(t(&[1, 2]));
        let c = interner.intern(t(&[3]));
        assert!(Arc::ptr_eq(&a.0, &b.0), "equal tuples share one allocation");
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn canonical_equality() {
        let a = Relation::from_tuples(1, vec![t(&[1]), t(&[2])]);
        let b = Relation::from_tuples(1, vec![t(&[2]), t(&[1])]);
        assert_eq!(a, b, "insertion order must not affect equality");
    }
}
