//! Interned values and the symbol table shared by a verification session.
//!
//! Every data value that can appear in a tuple — a constant from the
//! specification or property, a per-page fresh witness value, or a parameter
//! standing for an existentially quantified property variable — is interned
//! into a [`SymbolTable`] and handled as a compact [`Value`] id afterwards.
//! Tuples, relations and bitmap codecs all work over these ids, so equality
//! is an integer compare and hashing is cheap.

use std::collections::HashMap;
use std::fmt;

/// An interned data value. The id is an index into the owning
/// [`SymbolTable`]; two `Value`s from the same table are equal iff they
/// denote the same value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub u32);

impl Value {
    /// Raw index, usable for bitmap ranks and vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// How a value came to exist. Names are kept for display and debugging;
/// the verifier's algorithms only care about the distinction between
/// specification constants, fresh per-page witnesses, and property
/// parameters when enumerating domains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueKind {
    /// A named constant appearing in the specification or property text.
    Constant(String),
    /// A fresh witness value from some page's input pool `C_V`.
    /// Fields: page name, ordinal within the pool.
    Fresh(String, u32),
    /// A parameter standing for an outer universally quantified property
    /// variable (an element of `C_∃` when chosen fresh).
    Param(String),
}

impl ValueKind {
    /// Display name for error messages and counterexample printing.
    pub fn display(&self) -> String {
        match self {
            ValueKind::Constant(s) => format!("{s:?}"),
            ValueKind::Fresh(page, i) => format!("~{page}.{i}"),
            ValueKind::Param(x) => format!("?{x}"),
        }
    }
}

/// Interner mapping named constants (and generated values) to [`Value`] ids.
///
/// A `SymbolTable` is created per verification session: the specification's
/// constants are interned first (so their ids form a dense prefix), then the
/// property's constants, then fresh pools and parameters as needed.
#[derive(Default, Debug, Clone)]
pub struct SymbolTable {
    kinds: Vec<ValueKind>,
    constants: HashMap<String, Value>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a named constant, returning its id. Idempotent: interning the
    /// same name twice yields the same [`Value`].
    pub fn constant(&mut self, name: &str) -> Value {
        if let Some(&v) = self.constants.get(name) {
            return v;
        }
        let v = Value(self.kinds.len() as u32);
        self.kinds.push(ValueKind::Constant(name.to_owned()));
        self.constants.insert(name.to_owned(), v);
        v
    }

    /// Look up a named constant without interning it.
    pub fn lookup_constant(&self, name: &str) -> Option<Value> {
        self.constants.get(name).copied()
    }

    /// Mint a fresh witness value belonging to `page`'s input pool.
    /// Fresh values are never equal to any other value.
    pub fn fresh(&mut self, page: &str, ordinal: u32) -> Value {
        let v = Value(self.kinds.len() as u32);
        self.kinds.push(ValueKind::Fresh(page.to_owned(), ordinal));
        v
    }

    /// Mint a parameter value for property variable `var`.
    pub fn param(&mut self, var: &str) -> Value {
        let v = Value(self.kinds.len() as u32);
        self.kinds.push(ValueKind::Param(var.to_owned()));
        v
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind (and name) of a value.
    pub fn kind(&self, v: Value) -> &ValueKind {
        &self.kinds[v.index()]
    }

    /// Human-readable rendering of a value.
    pub fn display(&self, v: Value) -> String {
        self.kinds[v.index()].display()
    }

    /// All values currently interned, in id order.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.kinds.len() as u32).map(Value)
    }

    /// All named constants, in interning order.
    pub fn constants(&self) -> impl Iterator<Item = (Value, &str)> + '_ {
        self.kinds.iter().enumerate().filter_map(|(i, k)| match k {
            ValueKind::Constant(s) => Some((Value(i as u32), s.as_str())),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.constant("laptop");
        let b = t.constant("laptop");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_values() {
        let mut t = SymbolTable::new();
        let a = t.constant("ram");
        let b = t.constant("hdd");
        assert_ne!(a, b);
        assert_eq!(t.lookup_constant("ram"), Some(a));
        assert_eq!(t.lookup_constant("display"), None);
    }

    #[test]
    fn fresh_values_are_never_shared() {
        let mut t = SymbolTable::new();
        let a = t.fresh("LSP", 0);
        let b = t.fresh("LSP", 0);
        assert_ne!(a, b, "fresh values must be unique even with equal labels");
    }

    #[test]
    fn display_disambiguates_kinds() {
        let mut t = SymbolTable::new();
        let c = t.constant("search");
        let f = t.fresh("LSP", 2);
        let p = t.param("pid");
        assert_eq!(t.display(c), "\"search\"");
        assert_eq!(t.display(f), "~LSP.2");
        assert_eq!(t.display(p), "?pid");
    }

    #[test]
    fn values_iterates_in_id_order() {
        let mut t = SymbolTable::new();
        t.constant("a");
        t.constant("b");
        let ids: Vec<u32> = t.values().map(|v| v.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
