//! Database instances: an assignment of a [`Relation`] to every relation of
//! a [`Schema`].
//!
//! Instances here play the role that HSQLDB tables play in the paper's
//! implementation: the per-step working database that the rule queries run
//! over. They are cheap to clone (the verifier snapshots and restores them
//! constantly during the nested depth-first search) and have canonical
//! equality.

use crate::schema::{RelId, Schema};
use crate::tuple::{Relation, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// An instance over some schema. Relations are indexed by [`RelId`] in
/// declaration order; a shared reference to the schema travels with the
/// instance so arity checks stay possible everywhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    schema: Arc<Schema>,
    rels: Vec<Relation>,
}

impl Instance {
    /// All-empty instance over `schema`.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let rels = schema.rels().map(|r| Relation::empty(schema.arity(r))).collect();
        Instance { schema, rels }
    }

    /// The schema this instance conforms to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Relation contents.
    pub fn rel(&self, id: RelId) -> &Relation {
        &self.rels[id.index()]
    }

    /// Replace a relation wholesale (arity-checked).
    pub fn set_rel(&mut self, id: RelId, rel: Relation) {
        assert_eq!(
            rel.arity(),
            self.schema.arity(id),
            "relation {} arity mismatch",
            self.schema.name(id)
        );
        self.rels[id.index()] = rel;
    }

    /// Insert one tuple.
    pub fn insert(&mut self, id: RelId, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.schema.arity(id));
        self.rels[id.index()].insert(t)
    }

    /// Remove one tuple.
    pub fn remove(&mut self, id: RelId, t: &Tuple) -> bool {
        self.rels[id.index()].remove(t)
    }

    /// Empty out a relation.
    pub fn clear(&mut self, id: RelId) {
        let arity = self.schema.arity(id);
        self.rels[id.index()] = Relation::empty(arity);
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.iter().map(Relation::len).sum()
    }

    /// The active domain: every value occurring in any tuple.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .rels
            .iter()
            .flat_map(|r| r.iter().flat_map(|t| t.values().iter().copied()))
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Merge another instance into this one (set union per relation).
    /// Both must share the same schema object.
    pub fn union_in_place(&mut self, other: &Instance) {
        assert!(Arc::ptr_eq(&self.schema, &other.schema), "schema mismatch");
        for id in self.schema.rels() {
            if !other.rel(id).is_empty() {
                let merged = self.rels[id.index()].union(other.rel(id));
                self.rels[id.index()] = merged;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelKind;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.declare("user", 2, RelKind::Database).unwrap();
        s.declare("cart", 1, RelKind::State).unwrap();
        Arc::new(s)
    }

    fn tup(vals: &[u32]) -> Tuple {
        Tuple::from(vals.iter().map(|&v| Value(v)).collect::<Vec<_>>())
    }

    #[test]
    fn empty_instance_has_no_tuples() {
        let inst = Instance::empty(schema());
        assert_eq!(inst.total_tuples(), 0);
        assert!(inst.active_domain().is_empty());
    }

    #[test]
    fn insert_and_query() {
        let s = schema();
        let user = s.lookup("user").unwrap();
        let mut inst = Instance::empty(s);
        assert!(inst.insert(user, tup(&[1, 2])));
        assert!(!inst.insert(user, tup(&[1, 2])));
        assert!(inst.rel(user).contains(&tup(&[1, 2])));
        assert_eq!(inst.total_tuples(), 1);
        assert_eq!(inst.active_domain(), vec![Value(1), Value(2)]);
    }

    #[test]
    fn union_in_place_merges() {
        let s = schema();
        let user = s.lookup("user").unwrap();
        let cart = s.lookup("cart").unwrap();
        let mut a = Instance::empty(Arc::clone(&s));
        a.insert(user, tup(&[1, 2]));
        let mut b = Instance::empty(Arc::clone(&s));
        b.insert(user, tup(&[3, 4]));
        b.insert(cart, tup(&[9]));
        a.union_in_place(&b);
        assert_eq!(a.rel(user).len(), 2);
        assert_eq!(a.rel(cart).len(), 1);
    }

    #[test]
    fn clear_resets_relation() {
        let s = schema();
        let cart = s.lookup("cart").unwrap();
        let mut inst = Instance::empty(s);
        inst.insert(cart, tup(&[7]));
        inst.clear(cart);
        assert!(inst.rel(cart).is_empty());
    }

    #[test]
    fn instances_with_same_content_are_equal() {
        let s = schema();
        let user = s.lookup("user").unwrap();
        let mut a = Instance::empty(Arc::clone(&s));
        let mut b = Instance::empty(Arc::clone(&s));
        a.insert(user, tup(&[1, 2]));
        b.insert(user, tup(&[1, 2]));
        assert_eq!(a, b);
    }
}
