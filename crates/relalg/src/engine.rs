//! Storage engines.
//!
//! The paper picked HSQLDB (a main-memory Java DBMS) over Oracle after a
//! microbenchmark: inserting/deleting a database core took ~500 µs in-memory
//! versus ~50 ms with disk-based persistence — two orders of magnitude.
//! We reproduce that design space with two engines behind one trait:
//!
//! * [`MemoryEngine`] — pure in-memory storage (the HSQLDB stand-in, and the
//!   engine the verifier actually uses),
//! * [`DiskEngine`] — same API, but every mutation is appended to a log file
//!   and flushed, simulating the synchronous persistence cost of a
//!   disk-based DBMS (the Oracle stand-in for the microbenchmark).
//!
//! The benchmark `engine_insert_delete` regenerates the paper's comparison.

use crate::instance::Instance;
use crate::schema::{RelId, Schema};
use crate::tuple::{Relation, Tuple};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

/// A mutable store holding one instance, with load/store of whole cores.
pub trait StorageEngine {
    /// The schema the engine stores.
    fn schema(&self) -> &Arc<Schema>;

    /// Read access to the current instance.
    fn instance(&self) -> &Instance;

    /// Insert a tuple into a relation. Returns true if newly inserted.
    fn insert(&mut self, rel: RelId, t: Tuple) -> bool;

    /// Delete a tuple from a relation. Returns true if it was present.
    fn delete(&mut self, rel: RelId, t: &Tuple) -> bool;

    /// Replace one relation's contents.
    fn set_rel(&mut self, rel: RelId, contents: Relation);

    /// Reset every relation to empty.
    fn clear_all(&mut self);

    /// Bulk-load a full instance (the paper's "insert a core"), replacing
    /// current contents.
    fn load(&mut self, inst: &Instance) {
        self.clear_all();
        for rel in inst.schema().rels().collect::<Vec<_>>() {
            self.set_rel(rel, inst.rel(rel).clone());
        }
    }
}

/// Pure in-memory engine. All operations are O(log n) vector updates.
#[derive(Clone, Debug)]
pub struct MemoryEngine {
    inst: Instance,
}

impl MemoryEngine {
    /// Create an empty in-memory store over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        MemoryEngine { inst: Instance::empty(schema) }
    }
}

impl StorageEngine for MemoryEngine {
    fn schema(&self) -> &Arc<Schema> {
        self.inst.schema()
    }

    fn instance(&self) -> &Instance {
        &self.inst
    }

    fn insert(&mut self, rel: RelId, t: Tuple) -> bool {
        self.inst.insert(rel, t)
    }

    fn delete(&mut self, rel: RelId, t: &Tuple) -> bool {
        self.inst.remove(rel, t)
    }

    fn set_rel(&mut self, rel: RelId, contents: Relation) {
        self.inst.set_rel(rel, contents);
    }

    fn clear_all(&mut self) {
        let schema = Arc::clone(self.inst.schema());
        self.inst = Instance::empty(schema);
    }
}

/// Disk-backed engine: keeps the instance in memory for queries but writes
/// a redo-log record for every mutation and flushes it before returning,
/// the way a durable DBMS must. This is deliberately slow — it exists to
/// reproduce the paper's DBMS-selection microbenchmark.
pub struct DiskEngine {
    inst: Instance,
    log: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
}

impl DiskEngine {
    /// Create a disk-backed store logging to a fresh temp file.
    pub fn new(schema: Arc<Schema>) -> std::io::Result<Self> {
        // Distinguish engines within one process. A monotone counter,
        // not an allocation address: a freed address can be handed to
        // the next engine, colliding two engines on one log path.
        static NEXT_ENGINE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let serial = NEXT_ENGINE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("wave-diskengine-{}-{serial}.log", std::process::id()));
        let file = std::fs::File::create(&path)?;
        Ok(DiskEngine { inst: Instance::empty(schema), log: std::io::BufWriter::new(file), path })
    }

    fn log_record(&mut self, op: u8, rel: RelId, t: &Tuple) {
        // Fixed-width binary record; the content is irrelevant, the
        // synchronous flush is what models durability cost.
        let mut buf = Vec::with_capacity(8 + t.arity() * 4);
        buf.push(op);
        buf.extend_from_slice(&rel.0.to_le_bytes());
        for v in t.values() {
            buf.extend_from_slice(&v.0.to_le_bytes());
        }
        // Ignore I/O errors in the stand-in: a failed log write only affects
        // the benchmark, never verification (which uses MemoryEngine).
        let _ = self.log.write_all(&buf);
        let _ = self.log.flush();
        let _ = self.log.get_ref().sync_data();
    }
}

impl Drop for DiskEngine {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl StorageEngine for DiskEngine {
    fn schema(&self) -> &Arc<Schema> {
        self.inst.schema()
    }

    fn instance(&self) -> &Instance {
        &self.inst
    }

    fn insert(&mut self, rel: RelId, t: Tuple) -> bool {
        self.log_record(b'I', rel, &t);
        self.inst.insert(rel, t)
    }

    fn delete(&mut self, rel: RelId, t: &Tuple) -> bool {
        self.log_record(b'D', rel, t);
        self.inst.remove(rel, t)
    }

    fn set_rel(&mut self, rel: RelId, contents: Relation) {
        for t in contents.iter() {
            self.log_record(b'I', rel, t);
        }
        self.inst.set_rel(rel, contents);
    }

    fn clear_all(&mut self) {
        let schema = Arc::clone(self.inst.schema());
        // One record per dropped relation models a DELETE-all statement.
        for rel in schema.rels() {
            self.log_record(b'C', rel, &Tuple::new(vec![]));
        }
        self.inst = Instance::empty(schema);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelKind;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.declare("r", 2, RelKind::Database).unwrap();
        Arc::new(s)
    }

    fn tup(a: u32, b: u32) -> Tuple {
        Tuple::from([Value(a), Value(b)])
    }

    fn exercise(engine: &mut dyn StorageEngine) {
        let r = engine.schema().lookup("r").unwrap();
        assert!(engine.insert(r, tup(1, 2)));
        assert!(!engine.insert(r, tup(1, 2)));
        assert!(engine.instance().rel(r).contains(&tup(1, 2)));
        assert!(engine.delete(r, &tup(1, 2)));
        assert!(engine.instance().rel(r).is_empty());
        engine.set_rel(r, Relation::from_tuples(2, vec![tup(3, 4), tup(5, 6)]));
        assert_eq!(engine.instance().rel(r).len(), 2);
        engine.clear_all();
        assert_eq!(engine.instance().total_tuples(), 0);
    }

    #[test]
    fn memory_engine_semantics() {
        let mut e = MemoryEngine::new(schema());
        exercise(&mut e);
    }

    #[test]
    fn disk_engine_semantics_match_memory() {
        let mut e = DiskEngine::new(schema()).expect("temp file");
        exercise(&mut e);
    }

    #[test]
    fn load_replaces_contents() {
        let s = schema();
        let r = s.lookup("r").unwrap();
        let mut inst = Instance::empty(Arc::clone(&s));
        inst.insert(r, tup(9, 9));
        let mut e = MemoryEngine::new(Arc::clone(&s));
        e.insert(r, tup(1, 1));
        e.load(&inst);
        assert_eq!(e.instance(), &inst);
    }
}
